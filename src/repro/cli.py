"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``    — one simulation (workload x balancer) with a summary report;
  ``--record DIR`` turns on the flight recorder and writes the run's
  artifacts (time series, trace, metrics, Perfetto spans) to DIR,
- ``report`` — render a recorded run directory into a Markdown/HTML report,
- ``sweep``  — a workload x balancer grid on the parallel experiment
  engine; ``--record DIR`` aggregates observability across the pool,
- ``trace``  — run with decision tracing and export/summarize the JSONL
  (sliceable with ``--etype`` / ``--epoch-range`` / ``--decision``),
- ``explain`` — walk a recorded trace's decision-provenance DAG: why each
  migration happened (IF inputs → role → subtree → commit/abort) and why
  quiet epochs stayed quiet,
- ``diff``   — align two recorded traces and report their first semantic
  divergence with both causal chains and the input deltas,
- ``chaos``  — run a declarative fault scenario (bundled or a TOML/JSON
  file) against a balancer and print/score its robustness report,
- ``serve``  — run the simulation as a long-running service with a live
  HTTP telemetry plane (``/metrics``, ``/status``, ``/events`` stream)
  and epoch-boundary config mutation via ``POST /config``,
- ``top``    — terminal dashboard polling a running ``repro serve``,
- ``figure`` — regenerate one of the paper's tables/figures (or ``all``),
- ``lint``   — run the repo's AST invariant linter (determinism, layering,
  trace schema, float equality; see ``docs/STATIC_ANALYSIS.md``),
- ``list``   — available workloads, balancers and figure ids.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.experiments import figures as F
from repro.experiments.config import BENCH_SIM_CONFIG, ExperimentConfig
from repro.experiments.report import render_kv, render_trace_summary
from repro.experiments.runner import run_experiment, run_traced
from repro.obs.events import EVENT_TYPES

__all__ = ["main", "build_parser"]

WORKLOAD_NAMES = ("cnn", "nlp", "web", "zipf", "mdtest", "mixed")
BALANCER_NAMES = ("vanilla", "greedyspill", "dirhash", "nop", "mantle",
                  "lunule", "lunule-light")

FIGURES = {
    "table1": lambda scale, seed: F.table1_workloads(scale, seed),
    "fig2": lambda scale, seed: F.fig2_request_distribution(scale, seed),
    "fig3": lambda scale, seed: F.fig3_per_mds_throughput(scale, seed),
    "fig4": lambda scale, seed: F.fig4_migrated_inodes(scale, seed),
    "fig6": lambda scale, seed: F.fig6_imbalance_factor(scale, seed),
    "fig7": lambda scale, seed: F.fig7_throughput(scale, seed),
    "fig8": lambda scale, seed: F.fig8_end_to_end(scale, seed),
    "fig9": lambda scale, seed: F.fig9_mixed_if(scale, seed),
    "fig10": lambda scale, seed: F.fig10_mixed_throughput(scale, seed),
    "fig11": lambda scale, seed: F.fig11_jct_cdf(scale, seed),
    "fig12a": lambda scale, seed: F.fig12a_cluster_expansion(scale, seed),
    "fig12b": lambda scale, seed: F.fig12b_client_growth(scale, seed),
    "fig13a": lambda scale, seed: F.fig13a_scalability(scale, seed),
    "fig13b": lambda scale, seed: F.fig13b_dirhash_throughput(scale, seed),
    "fig14": lambda scale, seed: F.fig14_dirhash_distribution(scale, seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Lunule (SC '21) on a simulated CephFS "
                    "MDS cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one workload under one balancer")
    run_p.add_argument("--workload", "-w", choices=WORKLOAD_NAMES, default="zipf")
    run_p.add_argument("--balancer", "-b", choices=BALANCER_NAMES, default="lunule")
    run_p.add_argument("--clients", "-c", type=int, default=20)
    run_p.add_argument("--mds", "-m", type=int, default=5)
    run_p.add_argument("--capacity", type=float, default=100.0,
                       help="metadata ops per tick per MDS")
    run_p.add_argument("--seed", type=int, default=7)
    run_p.add_argument("--scale", type=float, default=1.0,
                       help="dataset/op-count multiplier")
    run_p.add_argument("--engine", choices=("scalar", "columnar"),
                       default=None,
                       help="serve-path engine (default: the config default, "
                            "columnar; scalar is the reference path)")
    run_p.add_argument("--data-path", action="store_true",
                       help="enable the OSD data path (end-to-end runs)")
    run_p.add_argument("--record", metavar="DIR",
                       help="enable the flight recorder and write the run's "
                            "artifacts (time series, trace, metrics, Perfetto "
                            "spans) to DIR")
    run_p.add_argument("--clock", choices=("logical", "wall"), default="logical",
                       help="span clock for --record (logical = byte-stable)")
    run_p.add_argument("--profile", action="store_true",
                       help="with --record: characterize the workload each "
                            "epoch (heat/load skew, hotspot share, churn, "
                            "op mix) as wl.* time-series columns and "
                            "workload.* gauges")

    rep_p = sub.add_parser(
        "report",
        help="render a recorded run directory (repro run --record DIR) into "
             "a Markdown report")
    rep_p.add_argument("dir", metavar="DIR",
                       help="artifact directory written by repro run --record")
    rep_p.add_argument("--html", action="store_true",
                       help="also write a self-contained report.html")

    sw_p = sub.add_parser(
        "sweep",
        help="run a workload x balancer grid on the parallel experiment engine")
    sw_p.add_argument("--workloads", "-w", nargs="+", choices=WORKLOAD_NAMES,
                      default=["cnn", "nlp", "web", "zipf", "mdtest"])
    sw_p.add_argument("--balancers", "-b", nargs="+", choices=BALANCER_NAMES,
                      default=["vanilla", "lunule"])
    sw_p.add_argument("--clients", "-c", type=int, default=20)
    sw_p.add_argument("--seed", type=int, default=7)
    sw_p.add_argument("--scale", type=float, default=1.0,
                      help="dataset/op-count multiplier")
    sw_p.add_argument("--workers", "-j", type=int, default=None,
                      help="worker processes (default: CPU count)")
    sw_p.add_argument("--record", metavar="DIR",
                      help="record every run and write the deterministically "
                           "aggregated observability (merged metrics, "
                           "per-run time series, combined Perfetto trace) "
                           "to DIR")

    tr_p = sub.add_parser(
        "trace",
        help="run one simulation with decision tracing; dump/summarize JSONL")
    tr_p.add_argument("--workload", "-w", choices=WORKLOAD_NAMES, default="zipf")
    tr_p.add_argument("--balancer", "-b", choices=BALANCER_NAMES, default="lunule")
    tr_p.add_argument("--clients", "-c", type=int, default=20)
    tr_p.add_argument("--mds", "-m", type=int, default=5)
    tr_p.add_argument("--capacity", type=float, default=100.0,
                      help="metadata ops per tick per MDS")
    tr_p.add_argument("--seed", type=int, default=7)
    tr_p.add_argument("--scale", type=float, default=1.0,
                      help="dataset/op-count multiplier")
    tr_p.add_argument("--engine", choices=("scalar", "columnar"),
                      default=None,
                      help="serve-path engine; traces must match between "
                           "the two (see repro diff)")
    tr_p.add_argument("--out", "-o", metavar="FILE",
                      help="write the decision trace as JSONL to FILE")
    tr_p.add_argument("--ring", type=int, metavar="N",
                      help="keep only the most recent N events (O(1) memory)")
    tr_p.add_argument("--from", dest="from_file", metavar="FILE",
                      help="summarize an existing JSONL trace instead of running")
    tr_p.add_argument("--etype", action="append", choices=sorted(EVENT_TYPES),
                      metavar="TYPE",
                      help="keep only events of this type (repeatable; one of: "
                           + ", ".join(sorted(EVENT_TYPES)) + ")")
    tr_p.add_argument("--epoch-range", metavar="LO:HI",
                      help="keep only events in this inclusive epoch range "
                           "(e.g. 2:5; open ends allowed: ':5', '2:', '3')")
    tr_p.add_argument("--decision", type=int, metavar="ID",
                      help="keep only this decision's causal chain (its "
                           "ancestors and descendants in the provenance DAG)")

    ex_p = sub.add_parser(
        "explain",
        help="why (and why not) a recorded run migrated: per-epoch causal "
             "chains from the decision-provenance DAG")
    ex_p.add_argument("run", metavar="RUN",
                      help="a run directory written by `repro run --record` "
                           "or a decision-trace .jsonl file")
    ex_p.add_argument("--epoch", type=int, metavar="E",
                      help="narrow the report to one epoch")
    sel = ex_p.add_mutually_exclusive_group()
    sel.add_argument("--rank", type=int, metavar="R",
                     help="only migrations touching this MDS rank")
    sel.add_argument("--subtree", metavar="S",
                     help="only migrations of this unit (a dir id like '7' "
                          "or a dirfrag like 'frag:3:1:0')")
    ex_p.add_argument("--outcomes", action="store_true",
                      help="judge each committed migration with the "
                           "cost/benefit ledger (paid_off / neutral / "
                           "wasted / ping_pong) and summarize the verdicts")
    ex_p.add_argument("--format", choices=("text", "json"), default="text")

    df_p = sub.add_parser(
        "diff",
        help="first semantic divergence between two recorded runs "
             "(exit 0: identical decisions, 1: divergent)")
    df_p.add_argument("run_a", metavar="RUN_A",
                      help="run directory or trace .jsonl (baseline)")
    df_p.add_argument("run_b", metavar="RUN_B",
                      help="run directory or trace .jsonl (comparison)")
    df_p.add_argument("--format", choices=("text", "json"), default="text")

    ch_p = sub.add_parser(
        "chaos",
        help="run a fault scenario (bundled name or TOML/JSON file) and "
             "score the balancer's recovery")
    ch_p.add_argument("scenario", metavar="SCENARIO", nargs="?",
                      help="scenario file path, or a bundled scenario name "
                           "(see --list)")
    ch_p.add_argument("--list", action="store_true", dest="list_scenarios",
                      help="list bundled scenarios and exit")
    ch_p.add_argument("--seed", type=int, default=0,
                      help="seeds the run and the schedule's stochastic "
                           "events (one integer pins everything)")
    ch_p.add_argument("--balancer", "-b", choices=BALANCER_NAMES,
                      default="lunule")
    ch_p.add_argument("--workload", "-w", choices=WORKLOAD_NAMES,
                      default="mdtest")
    ch_p.add_argument("--clients", "-c", type=int, default=8)
    ch_p.add_argument("--mds", "-m", type=int, default=None,
                      help="cluster size (default: the chaos bench config's)")
    ch_p.add_argument("--engine", choices=("scalar", "columnar"),
                      default=None,
                      help="serve-path engine for the disturbed run")
    ch_p.add_argument("--scale", type=float, default=0.15,
                      help="dataset/op-count multiplier")
    ch_p.add_argument("--out", "-o", metavar="FILE",
                      help="write the JSON robustness report to FILE")
    ch_p.add_argument("--trace", metavar="FILE",
                      help="write the decision trace as JSONL to FILE")
    ch_p.add_argument("--record", metavar="DIR",
                      help="write the full artifact directory (plus "
                           "chaos.json) to DIR")
    ch_p.add_argument("--format", choices=("text", "json"), default="text")

    srv_p = sub.add_parser(
        "serve",
        help="run the simulation as a service with a live HTTP telemetry "
             "plane (metrics scrape, status, event stream, live config)")
    srv_p.add_argument("--workload", "-w", choices=WORKLOAD_NAMES, default="zipf")
    srv_p.add_argument("--balancer", "-b", choices=BALANCER_NAMES, default="lunule")
    srv_p.add_argument("--clients", "-c", type=int, default=20)
    srv_p.add_argument("--mds", "-m", type=int, default=5)
    srv_p.add_argument("--capacity", type=float, default=100.0,
                       help="metadata ops per tick per MDS")
    srv_p.add_argument("--seed", type=int, default=7)
    srv_p.add_argument("--scale", type=float, default=1.0,
                       help="dataset/op-count multiplier")
    srv_p.add_argument("--engine", choices=("scalar", "columnar"), default=None)
    srv_p.add_argument("--data-path", action="store_true",
                       help="enable the OSD data path")
    srv_p.add_argument("--chaos", metavar="SCENARIO",
                       help="bind a chaos scenario (bundled name or file) "
                            "into the live service")
    srv_p.add_argument("--host", default="127.0.0.1")
    srv_p.add_argument("--port", type=int, default=0,
                       help="control-plane port (0 = ephemeral)")
    srv_p.add_argument("--port-file", metavar="FILE",
                       help="write the bound port to FILE once listening "
                            "(CI handshake for --port 0)")
    srv_p.add_argument("--rate", type=float, default=None,
                       help="throttle to at most this many ticks/second "
                            "(default: unthrottled)")
    srv_p.add_argument("--tick-slice", type=int, default=64,
                       help="ticks simulated per scheduler slice")
    srv_p.add_argument("--paused", action="store_true",
                       help="start paused (resume via POST /resume)")
    srv_p.add_argument("--record", metavar="DIR",
                       help="flush the run's artifact directory to DIR on "
                            "shutdown")
    srv_p.add_argument("--clock", choices=("logical", "wall"),
                       default="logical",
                       help="span clock for the flight recorder")

    top_p = sub.add_parser(
        "top",
        help="terminal dashboard over a running repro serve (polls /status)")
    top_p.add_argument("url", metavar="URL",
                       help="service base URL (http://HOST:PORT, HOST:PORT "
                            "or a bare port on localhost)")
    top_p.add_argument("--interval", type=float, default=1.0,
                       help="seconds between repaints")
    top_p.add_argument("--once", action="store_true",
                       help="print a single frame and exit (no screen clear)")

    fig_p = sub.add_parser("figure", help="regenerate a paper table/figure")
    fig_p.add_argument("id", choices=sorted(FIGURES) + ["all"])
    fig_p.add_argument("--scale", type=float, default=1.0)
    fig_p.add_argument("--seed", type=int, default=7)

    lint_p = sub.add_parser(
        "lint",
        help="run the AST invariant linter over the tree (exit 1 on findings)")
    lint_p.add_argument("paths", nargs="*", default=["src"], metavar="PATH",
                        help="files or directories to lint (default: src)")
    lint_p.add_argument("--format", choices=("text", "json", "github"),
                        default="text",
                        help="report format (json is the CI artifact form; "
                             "github emits Actions annotation commands)")
    lint_p.add_argument("--rule", action="append", metavar="RULE_ID",
                        help="run only this rule id (repeatable; unknown ids "
                             "are an error — see --list-rules)")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="list registered rule ids and exit")
    lint_p.add_argument("--baseline", choices=("write", "check"),
                        help="write: accept current findings into the "
                             "baseline file; check: fail only on findings "
                             "beyond the committed baseline (the ratchet)")
    lint_p.add_argument("--baseline-file", default="lint-baseline.json",
                        metavar="PATH",
                        help="baseline location (default: "
                             "lint-baseline.json)")
    lint_p.add_argument("--fix-suppressions", action="store_true",
                        help="delete inline '# repro-lint: disable=' "
                             "comments that match no finding, then re-lint")

    ovh_p = sub.add_parser("overhead",
                           help="control-plane overhead accounting (paper §3.4)")
    ovh_p.add_argument("--mds", "-m", type=int, default=5)
    ovh_p.add_argument("--seed", type=int, default=7)

    sub.add_parser("list", help="list workloads, balancers and figure ids")
    return parser


def _cmd_run(args, out) -> int:
    sim_cfg = BENCH_SIM_CONFIG.with_(n_mds=args.mds, mds_capacity=args.capacity)
    if args.engine:
        sim_cfg = sim_cfg.with_(engine=args.engine)
    if args.record:
        sim_cfg = sim_cfg.with_(record=True, record_clock=args.clock,
                                workload_profile=args.profile)
    cfg = ExperimentConfig(workload=args.workload, balancer=args.balancer,
                           n_clients=args.clients, seed=args.seed,
                           scale=args.scale, data_path=args.data_path,
                           sim=sim_cfg)
    if args.record:
        from repro.experiments.recording import write_run_artifacts

        res, sim = run_traced(cfg)
        paths = write_run_artifacts(
            args.record, sim, res,
            extra_meta={"seed": args.seed, "n_clients": args.clients,
                        "scale": args.scale})
    else:
        res = run_experiment(cfg)
    jct = res.job_completion_times()
    pairs = [
        ("workload", res.workload),
        ("balancer", res.balancer),
        ("MDSs", args.mds),
        ("clients", args.clients),
        ("finished at (ticks)", res.finished_tick),
        ("mean imbalance factor", res.mean_if(skip=2)),
        ("peak aggregate IOPS", res.peak_iops()),
        ("mean op latency (ticks)", res.mean_latency(skip=2)),
        ("migrated inodes", res.migrated_series[-1] if res.migrated_series else 0),
        ("committed / aborted exports", f"{res.committed_tasks} / {res.aborted_tasks}"),
        ("forward hops", res.total_forwards),
        ("mean JCT (ticks)", float(jct.mean()) if jct.size else float("nan")),
        ("metadata-op ratio", res.meta_ratio()),
    ]
    print(render_kv("Simulation summary", pairs), file=out)
    if args.record:
        print(f"  recorded {len(paths)} artifacts in {args.record} "
              f"(render with: repro report {args.record})", file=out)
    return 0


def _cmd_report(args, out) -> int:
    import pathlib

    from repro.experiments.recording import load_run_artifacts
    from repro.obs.report import render_html, render_run_report

    try:
        loaded = load_run_artifacts(args.dir)
    except (FileNotFoundError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    markdown = render_run_report(
        loaded["meta"], timeseries=loaded["timeseries"],
        events=loaded["events"], metrics=loaded["metrics"],
        span_events=loaded["span_events"], chaos=loaded.get("chaos"))
    run_dir = pathlib.Path(args.dir)
    md_path = run_dir / "report.md"
    md_path.write_text(markdown, encoding="utf-8", newline="\n")
    written = [str(md_path)]
    if args.html:
        meta = loaded["meta"]
        title = (f"repro run report — {meta.get('workload', '?')} x "
                 f"{meta.get('balancer', '?')}")
        html_path = run_dir / "report.html"
        html_path.write_text(render_html(markdown, title=title),
                             encoding="utf-8", newline="\n")
        written.append(str(html_path))
    print(markdown, file=out)
    print(f"  wrote {', '.join(written)}", file=out)
    return 0


def _cmd_sweep(args, out) -> int:
    import os
    import time

    from repro.experiments.engine import ExperimentEngine
    from repro.experiments.report import render_table
    from repro.experiments.runner import run_matrix

    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    if workers < 1:
        print(f"error: --workers must be >= 1, got {workers}", file=sys.stderr)
        return 2
    base = ExperimentConfig(n_clients=args.clients, seed=args.seed,
                            scale=args.scale)
    engine = ExperimentEngine(workers=workers)
    start = time.perf_counter()
    if args.record:
        matrix, agg_paths = _sweep_recorded(args, base, engine)
    else:
        matrix = run_matrix(list(args.workloads), list(args.balancers), base,
                            engine=engine)
    elapsed = time.perf_counter() - start
    rows = []
    for (w, b), res in matrix.items():
        sustained = sum(res.served_per_mds) / max(1, res.finished_tick)
        rows.append([w, b, res.mean_if(skip=2), sustained,
                     float(res.finished_tick),
                     res.migrated_series[-1] if res.migrated_series else 0])
    print(render_table(
        ["workload", "balancer", "mean IF", "sustained IOPS", "runtime",
         "migrated"],
        rows,
        title=f"Sweep — {len(rows)} runs, {workers} worker(s), seed {args.seed}"),
        file=out)
    print(f"  wall-clock {elapsed:.2f}s; engine cache: {engine.misses} run, "
          f"{engine.hits} reused", file=out)
    if args.record:
        print(f"  recorded aggregate observability in {args.record} "
              f"({', '.join(sorted(agg_paths))})", file=out)
    return 0


def _sweep_recorded(args, base, engine):
    """Run the sweep grid with the flight recorder on and write the
    deterministic cross-run aggregate into ``args.record``."""
    import json
    import pathlib
    from dataclasses import replace

    from repro.obs.prom import write_textfile

    cells = [(w, b) for w in args.workloads for b in args.balancers]
    cfgs = [replace(base, workload=w, balancer=b) for w, b in cells]
    labels = [f"{w}x{b}" for w, b in cells]
    results, aggregate = engine.run_with_obs(cfgs, labels=labels)
    matrix = dict(zip(cells, results))

    out_dir = pathlib.Path(args.record)
    out_dir.mkdir(parents=True, exist_ok=True)
    agg_path = out_dir / "aggregate.json"
    with open(agg_path, "w", encoding="utf-8", newline="\n") as fh:
        json.dump(aggregate, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    spans_path = out_dir / "sweep.perfetto.json"
    with open(spans_path, "w", encoding="utf-8", newline="\n") as fh:
        json.dump({"traceEvents": aggregate["spans"],
                   "displayTimeUnit": "ms"},
                  fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    prom_path = out_dir / "metrics.prom"
    write_textfile(aggregate["metrics"], prom_path)
    return matrix, [p.name for p in (agg_path, spans_path, prom_path)]


def _parse_epoch_range(spec: str) -> tuple[int, int]:
    """``'2:5'`` -> (2, 5); open ends: ``':5'``, ``'2:'``; bare ``'3'``."""
    text = spec.strip()
    try:
        if ":" not in text:
            lo = hi = int(text)
        else:
            lo_s, _, hi_s = text.partition(":")
            lo = int(lo_s) if lo_s.strip() else 0
            hi = int(hi_s) if hi_s.strip() else sys.maxsize
    except ValueError:
        raise ValueError(
            f"bad --epoch-range {spec!r}: expected LO:HI, ':HI', 'LO:' or "
            f"a single epoch number") from None
    if lo > hi:
        raise ValueError(f"bad --epoch-range {spec!r}: {lo} > {hi}")
    return lo, hi


def _apply_trace_filters(events, args, epoch_range):
    """The ``repro trace`` slicing pipeline (type / epoch / decision chain).

    Raises ``ValueError`` when ``--decision`` names an id the trace never
    recorded.
    """
    from repro.obs.provenance import ProvenanceGraph
    from repro.obs.tracelog import filter_events

    decision_ids = None
    if args.decision is not None:
        graph = ProvenanceGraph(events)
        if args.decision not in graph:
            raise ValueError(
                f"decision {args.decision} is not in this trace "
                f"({len(graph)} decisions recorded)")
        decision_ids = graph.chain_ids(args.decision)
    return filter_events(events, etypes=args.etype, epoch_range=epoch_range,
                         decision_ids=decision_ids)


def _cmd_trace(args, out) -> int:
    from repro.obs.tracelog import read_jsonl, write_jsonl

    if args.ring is not None and args.ring < 1:
        print(f"error: --ring must be a positive event count, got {args.ring}",
              file=sys.stderr)
        return 2
    epoch_range = None
    if args.epoch_range is not None:
        try:
            epoch_range = _parse_epoch_range(args.epoch_range)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    filtering = (args.etype is not None or epoch_range is not None
                 or args.decision is not None)

    if args.from_file:
        try:
            events = list(read_jsonl(args.from_file))
        except OSError as exc:
            print(f"error: cannot read trace {args.from_file}: {exc}",
                  file=sys.stderr)
            return 2
        total = len(events)
        if filtering:
            try:
                events = _apply_trace_filters(events, args, epoch_range)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        print(render_trace_summary(events,
                                   title=f"Decision trace ({args.from_file})"),
              file=out)
        if filtering:
            print(f"  (filters kept {len(events)} of {total} events)", file=out)
        if args.out:
            write_jsonl(args.out, events)
            print(f"  wrote {len(events)} events to {args.out}", file=out)
        return 0

    sim_cfg = BENCH_SIM_CONFIG.with_(n_mds=args.mds, mds_capacity=args.capacity,
                                     trace_capacity=args.ring)
    if args.engine:
        sim_cfg = sim_cfg.with_(engine=args.engine)
    cfg = ExperimentConfig(workload=args.workload, balancer=args.balancer,
                           n_clients=args.clients, seed=args.seed,
                           scale=args.scale, sim=sim_cfg)
    res, sim = run_traced(cfg)
    events = list(sim.trace)
    if filtering:
        try:
            events = _apply_trace_filters(events, args, epoch_range)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    title = f"Decision trace ({res.workload} x {res.balancer}, seed {args.seed})"
    print(render_trace_summary(events, title=title), file=out)
    if sim.trace.dropped:
        print(f"  (ring buffer kept {len(sim.trace)} of "
              f"{sim.trace.emitted} events)", file=out)
    if filtering:
        print(f"  (filters kept {len(events)} of {len(sim.trace)} events)",
              file=out)
    if args.out:
        write_jsonl(args.out, events)
        print(f"  wrote {len(events)} events to {args.out}", file=out)
    return 0


def _load_trace_events(path: str) -> list:
    """Events from a run directory (``RUN/trace.jsonl``) or a .jsonl file."""
    import pathlib

    from repro.obs.tracelog import read_jsonl

    p = pathlib.Path(path)
    if p.is_dir():
        p = p / "trace.jsonl"
    if not p.is_file():
        raise FileNotFoundError(
            f"no decision trace at {p} (expected a run directory written by "
            f"`repro run --record` or a trace .jsonl file)")
    return list(read_jsonl(p))


def _cmd_explain(args, out) -> int:
    import json

    from repro.obs.provenance import explain, render_explain

    try:
        events = _load_trace_events(args.run)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = explain(events, epoch=args.epoch, rank=args.rank,
                     subtree=args.subtree, outcomes=args.outcomes)
    if args.format == "json":
        print(json.dumps(report, sort_keys=True), file=out)
    else:
        print(render_explain(report), file=out)
    return 0


def _cmd_diff(args, out) -> int:
    import json

    from repro.obs.diff import diff_traces, render_diff

    try:
        events_a = _load_trace_events(args.run_a)
        events_b = _load_trace_events(args.run_b)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = diff_traces(events_a, events_b)
    if args.format == "json":
        print(json.dumps(report, sort_keys=True), file=out)
    else:
        print(render_diff(report), file=out)
    # diff(1) semantics: 0 = same decisions, 1 = divergent, 2 = trouble
    return 1 if report["divergent"] else 0


def _cmd_chaos(args, out) -> int:
    import json

    from repro.chaos.schedule import ChaosError, bundled_scenarios
    from repro.experiments.chaos import run_chaos

    if args.list_scenarios:
        from repro.chaos.schedule import load_schedule

        for name, path in sorted(bundled_scenarios().items()):
            desc = load_schedule(path).description
            print(f"{name:12} {desc}", file=out)
        return 0
    if not args.scenario:
        print("error: SCENARIO is required (or use --list)", file=sys.stderr)
        return 2
    try:
        report, result, sim = run_chaos(
            args.scenario, seed=args.seed, balancer=args.balancer,
            workload=args.workload, n_clients=args.clients, n_mds=args.mds,
            scale=args.scale, engine=args.engine, record_dir=args.record)
    except (ChaosError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        sim.trace.dump_jsonl(args.trace)
    if args.out:
        with open(args.out, "w", encoding="utf-8", newline="\n") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(report, sort_keys=True), file=out)
    else:
        print(_render_chaos_report(report), file=out)
        extras = []
        if args.trace:
            extras.append(f"trace: {args.trace}")
        if args.out:
            extras.append(f"report: {args.out}")
        if args.record:
            extras.append(f"artifacts: {args.record}")
        if extras:
            print("  wrote " + ", ".join(extras), file=out)
    return 0


def _render_chaos_report(report: dict) -> str:
    from repro.experiments.report import render_kv

    scn, run, score = report["scenario"], report["run"], report["score"]
    mean_rec = score["mean_recovery_epochs"]
    pairs = [
        ("scenario", f"{scn['name']} (seed {scn['seed']})"),
        ("description", scn["description"]),
        ("workload x balancer", f"{run['workload']} x {run['balancer']}"),
        ("MDSs / clients", f"{run['n_mds']} / {run['n_clients']}"),
        ("epochs / finished tick", f"{run['epochs']} / {run['finished_tick']}"),
        ("faults injected / cleared",
         f"{report['faults_injected']} / {report['faults_cleared']}"),
        ("mean recovery (epochs)",
         "never" if mean_rec is None else f"{mean_rec:.2f}"),
        ("unrecovered faults", score["unrecovered_faults"]),
        ("aborted tasks (mds_failed)", score["aborted_tasks"]),
        ("aborted inodes (waste)", score["aborted_inodes"]),
        ("IF overshoot area", f"{score['if_overshoot_area']:.3f}"),
        ("mean IF", run["mean_if"]),
    ]
    lines = [render_kv("Chaos robustness", pairs)]
    if report["windows"]:
        lines.append("  fault windows:")
        for w in report["windows"]:
            extra = f" x{w['factor']}" if w["kind"] == "slow" else ""
            lines.append(f"    rank {w['rank']}: {w['kind']}{extra} "
                         f"epochs {w['start_epoch']}-{w['end_epoch']} "
                         f"({w['source']})")
    return "\n".join(lines)


def _cmd_serve(args, out) -> int:
    import asyncio
    import signal

    from repro.serve import ControlPlane, SimulatorService

    sim_cfg = BENCH_SIM_CONFIG.with_(
        n_mds=args.mds, mds_capacity=args.capacity,
        # the recorder feeds /timeseries, the perf gauges feed /status,
        # the workload profiler feeds the live skew/churn readouts —
        # none touches the decision trace, which stays byte-identical
        # to an unserved `repro run` of the same seed (golden-gated)
        record=True, record_clock=args.clock, perf_gauges=True,
        workload_profile=True)
    if args.engine:
        sim_cfg = sim_cfg.with_(engine=args.engine)
    chaos = None
    if args.chaos:
        from repro.chaos import ChaosController, load_schedule
        from repro.chaos.schedule import ChaosError
        from repro.experiments.chaos import resolve_scenario

        try:
            chaos = ChaosController(load_schedule(resolve_scenario(args.chaos)),
                                    seed=args.seed)
        except (ChaosError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    cfg = ExperimentConfig(workload=args.workload, balancer=args.balancer,
                           n_clients=args.clients, seed=args.seed,
                           scale=args.scale, data_path=args.data_path,
                           sim=sim_cfg)
    try:
        service = SimulatorService(cfg, chaos=chaos, rate=args.rate,
                                   tick_slice=args.tick_slice)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    plane = ControlPlane(service, host=args.host, port=args.port)
    plane.start()
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(f"{plane.port}\n")
    print(f"serving {args.workload} x {args.balancer} (seed {args.seed}) "
          f"on {plane.url}", file=out)
    print("  endpoints: GET /metrics /status /timeseries /events; "
          "POST /config /pause /resume /step /shutdown", file=out)
    if args.paused:
        service.start()
        service.pause()
    # SIGTERM winds down like POST /shutdown; SIGINT (KeyboardInterrupt)
    # takes the same graceful path through the except below
    try:
        signal.signal(signal.SIGTERM, lambda *_: service.request_stop())
    except ValueError:
        pass  # not the main thread (embedded use); POST /shutdown still works
    try:
        asyncio.run(service.drive())
    except KeyboardInterrupt:
        service.request_stop()
    finally:
        plane.stop()
    res = service.result
    print(f"  {service.state} at tick {service.sim.tick} "
          f"({len(res.if_series) if res is not None else 0} epochs, "
          f"{service.mutations_applied} config change(s) applied)", file=out)
    if args.record and res is not None:
        from repro.experiments.recording import write_run_artifacts

        paths = write_run_artifacts(
            args.record, service.sim, res,
            extra_meta={"seed": args.seed, "n_clients": args.clients,
                        "scale": args.scale, "mode": "serve",
                        "mutations_applied": service.mutations_applied})
        print(f"  recorded {len(paths)} artifacts in {args.record} "
              f"(render with: repro report {args.record})", file=out)
    return 0


def _cmd_top(args, out) -> int:
    from repro.serve import top

    url = args.url
    if url.isdigit():
        url = f"127.0.0.1:{url}"
    if "://" not in url:
        url = f"http://{url}"
    return top(url.rstrip("/"), interval=args.interval,
               iterations=1 if args.once else None, out=out)


def _cmd_figure(args, out) -> int:
    ids = sorted(FIGURES) if args.id == "all" else [args.id]
    for fid in ids:
        result = FIGURES[fid](args.scale, args.seed)
        print(result.text, file=out)
        print(file=out)
    return 0


def _cmd_list(out) -> int:
    print("workloads :", ", ".join(WORKLOAD_NAMES), file=out)
    print("balancers :", ", ".join(BALANCER_NAMES), file=out)
    print("figures   :", ", ".join(sorted(FIGURES)), file=out)
    from repro.chaos.schedule import bundled_scenarios

    print("scenarios :", ", ".join(sorted(bundled_scenarios())), file=out)
    print("extras    : overhead (paper §3.4 accounting), "
          "trace (decision-trace JSONL export), "
          "explain (decision-provenance chains), "
          "diff (first divergence between two runs), "
          "chaos (fault scenarios + robustness scoring), "
          "sweep (parallel workload x balancer grids), "
          "serve (live HTTP telemetry plane), "
          "top (terminal dashboard over a running serve), "
          "lint (AST invariant linter)", file=out)
    return 0


def _cmd_lint(args, out) -> int:
    from repro.lint import (
        all_rules,
        check_baseline,
        fix_suppressions,
        lint_paths,
        render_github,
        render_json,
        render_text,
        write_baseline,
    )
    from repro.lint.engine import LintResult

    if args.list_rules:
        for rid, rule in sorted(all_rules().items()):
            print(f"{rid:16} {rule.description}", file=out)
        return 0
    try:
        result = lint_paths(args.paths, rules=args.rule)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.fix_suppressions and result.unused_suppressions:
        n = fix_suppressions(result.unused_suppressions)
        print(f"removed {n} stale suppression(s); re-linting", file=out)
        result = lint_paths(args.paths, rules=args.rule)
    if args.baseline == "write":
        n = write_baseline(result, args.baseline_file)
        print(f"wrote {n} baseline entr{'y' if n == 1 else 'ies'} "
              f"({len(result.findings)} finding(s)) to "
              f"{args.baseline_file}", file=out)
        return 0
    if args.baseline == "check":
        try:
            new, stale = check_baseline(result, args.baseline_file)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = LintResult(findings=new, checked=result.checked,
                            unused_suppressions=result.unused_suppressions)
        for key in stale:
            print(f"note: baseline entry no longer produced: "
                  f"{key[0]} [{key[1]}] — refresh with --baseline write",
                  file=out)
    render = {"json": render_json, "github": render_github}.get(
        args.format, render_text)
    print(render(result), end="", file=out)
    return result.exit_code


def _cmd_overhead(args, out) -> int:
    from repro.experiments.overhead import measure_overhead

    report = measure_overhead(args.mds, seed=args.seed)
    print(report.table(), file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "explain":
        return _cmd_explain(args, out)
    if args.command == "diff":
        return _cmd_diff(args, out)
    if args.command == "chaos":
        return _cmd_chaos(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "top":
        return _cmd_top(args, out)
    if args.command == "figure":
        return _cmd_figure(args, out)
    if args.command == "lint":
        return _cmd_lint(args, out)
    if args.command == "overhead":
        return _cmd_overhead(args, out)
    if args.command == "list":
        return _cmd_list(out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
