"""A model of the CephFS built-in metadata load balancer ("Vanilla").

Faithful to the decision logic the paper's §2.2 dissects, including its
three inefficiencies:

1. **inaccurate, benign-imbalance-oblivious view** — decisions compare each
   MDS's *smoothed* (slow EWMA) load against the cluster average with a
   relative offset gate; there is no dispersion (CoV) measure and no
   urgency gate, so it misses heavy/light gaps when the max is near the
   mean, and happily migrates when the cluster is nearly idle;
2. **aggressive amounts** — an exporter plans its whole excess over the
   average every epoch, with no per-epoch cap and no awareness of
   migrations already queued or in flight, so the plan is re-submitted
   on top of itself while transfers lag (the ping-pong mechanism);
3. **one-size-fits-all selection** — candidates are ranked by decayed
   popularity (*heat*), i.e. by the past; for scan workloads the exported
   subtrees are exactly the ones that will never be visited again.
"""

from __future__ import annotations

import numpy as np

from repro.balancers.base import Balancer
from repro.balancers.candidates import Candidate, candidates_for, scale_to_load
from repro.core.plan import EpochPlan
from repro.core.view import ClusterView
from repro.obs.events import RoleAssigned

__all__ = ["VanillaBalancer", "greedy_heat_selection"]


def greedy_heat_selection(ns, candidates: list[Candidate], amount: float,
                          *, overshoot: float = 1.2,
                          ) -> list[tuple[Candidate, float]]:
    """Hottest-first selection, CephFS style.

    ``ns`` is the namespace the selection plans against — normally an
    :class:`~repro.core.plan.PlanningNamespace`, so the dirfrag splits this
    makes stay speculative until the plan is applied.

    Unlike Lunule's selector this tolerates overshoot up to ``overshoot``
    times the remaining demand — the hottest subtree gets shipped even when
    it is bigger than needed (the paper's 98%-of-inodes export). A subtree
    whose heat sits in *descendants* and exceeds the bound is skipped — its
    children appear later in the ranked list; one whose heat sits in its own
    flat files is split in half, mirroring CephFS's dirfrag splitting of
    overly hot directories.
    """
    chosen: list[tuple[Candidate, float]] = []
    selected_dirs: set[int] = set()
    blocked: set[int] = set()
    remaining = amount
    tree = ns.tree
    for c in candidates:
        if remaining <= 0:
            break
        if c.load <= 0:
            continue
        if not c.is_frag and c.dir_id in blocked:
            continue
        if any(a in selected_dirs for a in tree.ancestors(c.dir_id)):
            continue
        if c.load > overshoot * remaining:
            if (not c.is_frag and c.self_files >= 2
                    and c.self_load >= 0.5 * c.load
                    and ns.frag_state(c.dir_id) is None):
                # Too hot to ship whole and flat: split and take one side.
                frags = ns.split_dir(c.dir_id, 1)
                half = c.self_load / 2.0
                chosen.append((Candidate(frags[0], c.dir_id, half, c.inodes // 2,
                                         half, c.self_files // 2), half))
                blocked.add(c.dir_id)
                remaining -= half
            continue
        chosen.append((c, c.load))
        remaining -= c.load
        if c.is_frag:
            blocked.add(c.dir_id)
        else:
            selected_dirs.add(c.dir_id)
    return chosen


class VanillaBalancer(Balancer):
    name = "vanilla"

    def __init__(self, *, decay: float = 0.7, min_offload: float = 0.1,
                 max_queue: int = 16) -> None:
        super().__init__()
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        self.decay = decay
        self.min_offload = min_offload
        self.max_queue = max_queue
        self._vload: np.ndarray | None = None
        # Selection ranks candidates by the heat snapshot gossiped in the
        # previous heartbeat round — one epoch staler than the local view.
        self._gossiped_heat: np.ndarray | None = None

    def smoothed_loads(self) -> np.ndarray:
        if self._vload is None:
            return np.zeros(0)
        return self._vload.copy()

    def on_epoch(self, view: ClusterView) -> EpochPlan | None:
        epoch = view.epoch
        # CephFS's load view is owned-subtree popularity, not served IOPS.
        loads = np.array(view.heat_loads())
        n = loads.size
        if self._vload is None:
            self._vload = loads.astype(float)
        else:
            if self._vload.size < n:  # cluster grew
                self._vload = np.concatenate([self._vload, np.zeros(n - self._vload.size)])
            self._vload = self.decay * self._vload + (1.0 - self.decay) * loads
        vload = self._vload
        avg = float(vload.mean())
        if avg <= 0.0:
            return None

        plan = view.new_plan()
        down = view.failed_ranks()
        # Importer gaps: underloaded peers, roomiest first. A failed rank
        # reads as idle but cannot receive an import.
        gaps = {j: avg - float(vload[j]) for j in range(n)
                if vload[j] < avg and j not in down}
        for j in sorted(gaps):
            plan.emit(RoleAssigned(epoch=epoch, rank=j, role="importer",
                                   amount=gaps[j],
                                   did=plan.next_decision_id(),
                                   parent=view.if_decision_id))
        fresh = view.heat
        heat = self._gossiped_heat if self._gossiped_heat is not None else fresh
        if heat.size < fresh.size:  # namespace grew since last gossip
            heat = np.concatenate([heat, fresh[heat.size:]])
        self._gossiped_heat = fresh
        for i in range(n):
            if i in down:
                continue
            if vload[i] <= avg * (1.0 + self.min_offload):
                continue
            if plan.queue_depth(i) >= self.max_queue:
                continue  # CephFS bounds its export queue
            amount = float(vload[i] - avg)
            role_id = plan.next_decision_id()
            plan.emit(RoleAssigned(epoch=epoch, rank=i, role="exporter",
                                   amount=amount, did=role_id,
                                   parent=view.if_decision_id))
            raw = candidates_for(plan.namespace, i, heat)
            scale = scale_to_load(raw, float(vload[i]))
            if scale <= 0.0:
                continue
            scaled = [
                Candidate(c.unit, c.dir_id, c.load * scale, c.inodes,
                          c.self_load * scale, c.self_files)
                for c in raw
            ]
            for cand, load in greedy_heat_selection(plan.namespace, scaled, amount):
                dst = self._pick_destination(gaps, i)
                if dst is None:
                    break
                gaps[dst] = gaps.get(dst, 0.0) - load
                plan.export(i, dst, cand.unit, load, parent=role_id)
        return plan

    @staticmethod
    def _pick_destination(gaps: dict[int, float], src: int) -> int | None:
        best, best_gap = None, 0.0
        for j, gap in gaps.items():
            if j != src and gap > best_gap:
                best, best_gap = j, gap
        return best
