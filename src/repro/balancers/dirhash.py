"""Static hash-based metadata placement ("Dir-Hash", paper §4.6).

The paper simulates a hash-based baseline inside CephFS by splitting the
namespace into fine-grained subtrees and statically pinning each to the MDS
given by its path hash. Inodes distribute almost perfectly evenly (Fig.
14a) — but *requests* do not (Fig. 14b), and path resolution keeps crossing
authority boundaries, roughly doubling forwards.
"""

from __future__ import annotations

from repro.balancers.base import Balancer
from repro.core.plan import EpochPlan
from repro.core.view import ClusterView
from repro.util.rng import derive_seed

__all__ = ["DirHashBalancer"]


class DirHashBalancer(Balancer):
    name = "dirhash"

    def __init__(self, *, min_depth: int = 1, hash_seed: int = 0) -> None:
        super().__init__()
        if min_depth < 1:
            raise ValueError("min_depth must be >= 1 (the root is never pinned)")
        self.min_depth = min_depth
        self.hash_seed = hash_seed

    def setup(self, view: ClusterView) -> EpochPlan | None:
        plan = view.new_plan()
        tree = view.tree
        n = view.n_mds
        for d in tree.walk(0):
            if tree.depth[d] >= self.min_depth:
                rank = derive_seed(self.hash_seed, "dirhash", tree.path(d)) % n
                plan.namespace.set_subtree_auth(d, rank)
        return plan

    def on_epoch(self, view: ClusterView) -> EpochPlan | None:
        # Static placement: never migrates. (Directories created at runtime
        # would be pinned on creation in a real system; our workloads only
        # create files, which follow their directory's pin.)
        return None
