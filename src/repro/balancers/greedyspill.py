"""GreedySpill (GIGA+ policy, run in CephFS through the Mantle framework).

The policy from the paper's baseline set: an MDS triggers migration when it
has load and its next-rank neighbor has (almost) none, and then ships half
of its load to that neighbor. It uses only local information — no global
dispersion measure — and heat-ranked candidates, so on scan workloads the
spilled half carries no future load and the imbalance persists while
migration traffic keeps flowing (paper Fig. 6: IF close to 1).
"""

from __future__ import annotations

from repro.balancers.base import Balancer
from repro.balancers.candidates import Candidate, candidates_for, scale_to_load
from repro.balancers.vanilla import greedy_heat_selection
from repro.core.plan import EpochPlan
from repro.core.view import ClusterView
from repro.obs.events import RoleAssigned

__all__ = ["GreedySpillBalancer"]


class GreedySpillBalancer(Balancer):
    name = "greedyspill"

    def __init__(self, *, idle_fraction: float = 0.01, max_queue: int = 8) -> None:
        super().__init__()
        if not 0.0 <= idle_fraction < 1.0:
            raise ValueError("idle_fraction must be in [0, 1)")
        self.idle_fraction = idle_fraction
        self.max_queue = max_queue

    def on_epoch(self, view: ClusterView) -> EpochPlan | None:
        epoch = view.epoch
        # Mantle policies read CephFS's popularity-based load metric too.
        loads = view.heat_loads()
        n = len(loads)
        if n < 2:
            return None
        # Popularity units are not IOPS; "idle" is relative to the busiest.
        idle_cut = self.idle_fraction * max(max(loads), 1.0)
        heat = view.heat
        down = view.failed_ranks()
        plan = view.new_plan()
        for i in range(n):
            j = (i + 1) % n
            # Mantle GreedySpill: "when my load > 0.01 and my neighbor's
            # load < 0.01, send half". Failed ranks sit the round out.
            if i in down or j in down:
                continue
            if loads[i] <= idle_cut or loads[j] > idle_cut:
                continue
            if plan.queue_depth(i) >= self.max_queue:
                continue
            amount = loads[i] / 2.0
            role_id = plan.next_decision_id()
            plan.emit(RoleAssigned(epoch=epoch, rank=i, role="exporter",
                                   amount=amount, did=role_id,
                                   parent=view.if_decision_id))
            plan.emit(RoleAssigned(epoch=epoch, rank=j, role="importer",
                                   amount=amount,
                                   did=plan.next_decision_id(),
                                   parent=view.if_decision_id))
            raw = candidates_for(plan.namespace, i, heat)
            scale = scale_to_load(raw, loads[i])
            if scale <= 0.0:
                continue
            scaled = [
                Candidate(c.unit, c.dir_id, c.load * scale, c.inodes,
                          c.self_load * scale, c.self_files)
                for c in raw
            ]
            for cand, load in greedy_heat_selection(plan.namespace, scaled, amount):
                plan.export(i, j, cand.unit, load, parent=role_id)
        return plan
