"""Load-balancer policies: the paper's baselines plus shared machinery.

- :mod:`repro.balancers.vanilla` — CephFS's built-in balancer model,
- :mod:`repro.balancers.greedyspill` — GreedySpill (GIGA+ via Mantle),
- :mod:`repro.balancers.dirhash` — static hash pinning ("Dir-Hash"),
- :mod:`repro.balancers.nop` — no balancing (ablation control).

Lunule itself lives in :mod:`repro.core.balancer`; it shares the
:class:`repro.balancers.base.Balancer` interface and the candidate
machinery in :mod:`repro.balancers.candidates`.
"""

from repro.balancers.base import Balancer
from repro.balancers.candidates import Candidate, candidates_for
from repro.balancers.dirhash import DirHashBalancer
from repro.balancers.greedyspill import GreedySpillBalancer
from repro.balancers.mantle import MantleBalancer, MantlePolicy
from repro.balancers.nop import NopBalancer
from repro.balancers.vanilla import VanillaBalancer


def make_balancer(name: str, **kwargs) -> Balancer:
    """Factory over every policy (including Lunule) by paper name."""
    from repro.core.balancer import LunuleBalancer, LunuleLightBalancer

    registry = {
        "vanilla": VanillaBalancer,
        "greedyspill": GreedySpillBalancer,
        "dirhash": DirHashBalancer,
        "nop": NopBalancer,
        "mantle": MantleBalancer,
        "lunule": LunuleBalancer,
        "lunule-light": LunuleLightBalancer,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(f"unknown balancer {name!r}; choices: {sorted(registry)}") from None
    return cls(**kwargs)


__all__ = [
    "Balancer",
    "Candidate",
    "candidates_for",
    "VanillaBalancer",
    "GreedySpillBalancer",
    "DirHashBalancer",
    "NopBalancer",
    "MantleBalancer",
    "MantlePolicy",
    "make_balancer",
]
