"""A Mantle-style programmable balancer framework.

Mantle (Sevilla et al., SC '15) decouples *when* to migrate, *how much* to
migrate, and *where* to send it into operator-written policies (Lua in the
original). The paper's §3.4 envisions a framework "similar to but more
powerful than Mantle" that also covers the *which subtrees* question its
API lacks. This module is that framework:

- :class:`PolicyEnv` — the read-only metrics environment a policy sees
  (per-MDS loads, whoami, capacity, pending migrations, epoch...),
- :class:`MantleBalancer` — drives four hooks per epoch per MDS:

  ========  ===============================================  ==============
  hook      signature                                        default
  ========  ===============================================  ==============
  when      ``when(env) -> bool``                            export if my
                                                             load > mean
  howmuch   ``howmuch(env) -> float`` (load units)           my load − mean
  where     ``where(env, amount) -> dict[rank, float]``      fill least
                                                             loaded first
  which     ``which(view, env) -> per-dir load estimates``   decayed heat
  ========  ===============================================  ==============

The ``which`` hook is the extension beyond Mantle's API: it returns the
per-directory load-estimate array candidates are ranked by (it receives the
epoch's :class:`~repro.core.view.ClusterView`, so Lunule's migration index
is expressible as a policy — see :func:`lunule_selection_policy`).
GreedySpill — the paper's Mantle-hosted baseline — ships as
:func:`greedyspill_policy`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.balancers.base import Balancer
from repro.balancers.candidates import Candidate, candidates_for, scale_to_load
from repro.balancers.vanilla import greedy_heat_selection
from repro.core.plan import EpochPlan
from repro.core.view import ClusterView

__all__ = [
    "PolicyEnv",
    "MantlePolicy",
    "MantleBalancer",
    "greedyspill_policy",
    "lunule_selection_policy",
]


@dataclass(frozen=True)
class PolicyEnv:
    """What a policy is allowed to see (mirrors Mantle's Lua environment)."""

    whoami: int
    epoch: int
    #: most recent epoch IOPS per MDS
    loads: tuple[float, ...]
    #: CephFS-style popularity loads per MDS (what vanilla policies used)
    heat_loads: tuple[float, ...]
    capacity: float
    #: load already queued/in flight away from each MDS
    pending_out: tuple[float, ...]
    #: load already queued/in flight toward each MDS
    pending_in: tuple[float, ...]
    #: per-MDS capacities on heterogeneous clusters (``None`` → all equal
    #: to ``capacity``)
    capacities: tuple[float, ...] | None = None

    @property
    def n_mds(self) -> int:
        return len(self.loads)

    @property
    def my_load(self) -> float:
        return self.loads[self.whoami]

    @property
    def mean_load(self) -> float:
        return sum(self.loads) / len(self.loads)

    @property
    def total_load(self) -> float:
        return sum(self.loads)

    def neighbor(self, offset: int = 1) -> int:
        return (self.whoami + offset) % self.n_mds


WhenFn = Callable[[PolicyEnv], bool]
HowMuchFn = Callable[[PolicyEnv], float]
WhereFn = Callable[[PolicyEnv, float], dict[int, float]]
WhichFn = Callable[[ClusterView, PolicyEnv], np.ndarray]


def _default_when(env: PolicyEnv) -> bool:
    return env.my_load > env.mean_load * 1.1


def _default_howmuch(env: PolicyEnv) -> float:
    return max(0.0, env.my_load - env.mean_load)


def _default_where(env: PolicyEnv, amount: float) -> dict[int, float]:
    """Fill the least-loaded peers first, proportionally to their gap."""
    gaps = {j: env.mean_load - env.loads[j] for j in range(env.n_mds)
            if j != env.whoami and env.loads[j] < env.mean_load}
    total_gap = sum(gaps.values())
    if total_gap <= 0:
        return {}
    return {j: amount * g / total_gap for j, g in gaps.items() if g > 0}


def _default_which(view: ClusterView, env: PolicyEnv) -> np.ndarray:
    return view.heat


@dataclass
class MantlePolicy:
    """A bundle of the four hooks, each optional."""

    when: WhenFn = _default_when
    howmuch: HowMuchFn = _default_howmuch
    where: WhereFn = _default_where
    which: WhichFn = _default_which
    name: str = "mantle"


class MantleBalancer(Balancer):
    """Runs a :class:`MantlePolicy` once per epoch for every MDS."""

    def __init__(self, policy: MantlePolicy | None = None, *,
                 max_queue: int = 16, overshoot: float = 1.2) -> None:
        super().__init__()
        self.policy = policy or MantlePolicy()
        self.max_queue = max_queue
        self.overshoot = overshoot
        self.name = f"mantle:{self.policy.name}"

    @staticmethod
    def _env(view: ClusterView, rank: int, loads, heat) -> PolicyEnv:
        return PolicyEnv(
            whoami=rank,
            epoch=view.epoch,
            loads=tuple(loads),
            heat_loads=tuple(heat),
            capacity=view.default_capacity,
            pending_out=tuple(view.pending_out()),
            pending_in=tuple(view.pending_in()),
            capacities=tuple(view.capacities()),
        )

    def on_epoch(self, view: ClusterView) -> EpochPlan | None:
        loads = view.loads()
        heat = view.heat_loads()
        policy = self.policy
        plan = view.new_plan()
        for rank in range(len(loads)):
            env = self._env(view, rank, loads, heat)
            if not policy.when(env):
                continue
            if plan.queue_depth(rank) >= self.max_queue:
                continue
            amount = float(policy.howmuch(env))
            if amount <= 0:
                continue
            targets = policy.where(env, amount)
            if not targets:
                continue
            per_dir = np.asarray(policy.which(view, env), dtype=np.float64)
            raw = candidates_for(plan.namespace, rank, per_dir)
            scale = scale_to_load(raw, loads[rank])
            if scale <= 0:
                continue
            scaled = [
                Candidate(c.unit, c.dir_id, c.load * scale, c.inodes,
                          c.self_load * scale, c.self_files)
                for c in raw
            ]
            for dst, dst_amount in sorted(targets.items(), key=lambda kv: -kv[1]):
                if dst == rank or dst_amount <= 0:
                    continue
                for cand, load in greedy_heat_selection(
                        plan.namespace, scaled, dst_amount,
                        overshoot=self.overshoot):
                    if plan.queue_depth(rank) >= self.max_queue:
                        return plan
                    plan.export(rank, dst, cand.unit, load)
        return plan


# --------------------------------------------------------------- policies
def greedyspill_policy(idle_fraction: float = 0.01) -> MantlePolicy:
    """The GIGA+/GreedySpill policy exactly as the paper hosts it in Mantle:
    trigger when my neighbor is idle, send half of my load to it."""

    def when(env: PolicyEnv) -> bool:
        idle_cut = idle_fraction * max(max(env.heat_loads), 1.0)
        me = env.heat_loads[env.whoami]
        return me > idle_cut and env.heat_loads[env.neighbor()] <= idle_cut

    def howmuch(env: PolicyEnv) -> float:
        return env.heat_loads[env.whoami] / 2.0

    def where(env: PolicyEnv, amount: float) -> dict[int, float]:
        return {env.neighbor(): amount}

    return MantlePolicy(when=when, howmuch=howmuch, where=where,
                        name="greedyspill")


def lunule_selection_policy() -> MantlePolicy:
    """Lunule's *which* question answered inside the Mantle framework:
    candidates ranked by the migration index instead of heat.

    (The trigger/amount side stays simple here; the full Lunule lives in
    :class:`repro.core.balancer.LunuleBalancer` — this policy demonstrates
    that the framework's ``which`` hook covers the feature Mantle lacked.)
    """

    def which(view: ClusterView, env: PolicyEnv) -> np.ndarray:
        return view.mindex

    return MantlePolicy(which=which, name="lunule-select")
