"""No balancing at all — everything stays wherever it starts (MDS-0).

Ablation control: the throughput of a single-MDS bottleneck and an IF that
stays near the theoretical maximum.
"""

from __future__ import annotations

from repro.balancers.base import Balancer

__all__ = ["NopBalancer"]


class NopBalancer(Balancer):
    name = "nop"

    def on_epoch(self, view) -> None:
        return None
