"""The balancer interface: pure policy over a snapshot, plan out.

A balancer never touches the simulator. Once per epoch it receives an
immutable :class:`~repro.core.view.ClusterView` and returns an
:class:`~repro.core.plan.EpochPlan` (or ``None`` for "do nothing"); the
mechanism layer applies the plan. This is the paper's §3.1 N-to-1 message
passing as a typed contract, and it is what makes policies unit-testable
in isolation and experiment configs picklable for the process-pool engine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.plan import EpochPlan
from repro.core.view import ClusterView

__all__ = ["Balancer"]


class Balancer(ABC):
    """A metadata load-balancing policy.

    Lifecycle: the simulator calls :meth:`setup` once before the first tick
    (static schemes pin authorities here) and :meth:`on_epoch` after each
    epoch's stats close, passing a fresh :class:`ClusterView` both times.
    Policies act only through the returned :class:`EpochPlan`: trace events
    via ``plan.emit``, authority changes via ``plan.namespace``, exports via
    ``plan.export``. Policies may keep private state across epochs (EWMAs,
    gossip snapshots) but must not retain or mutate the views they receive.
    """

    name = "abstract"

    def setup(self, view: ClusterView) -> EpochPlan | None:
        """One-time initialization before the simulation starts."""
        return None

    @abstractmethod
    def on_epoch(self, view: ClusterView) -> EpochPlan | None:
        """React to the epoch that just closed."""
