"""The balancer interface the simulator drives once per epoch."""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["Balancer"]


class Balancer(ABC):
    """A metadata load-balancing policy.

    Lifecycle: the simulator calls :meth:`attach` at construction,
    :meth:`setup` once before the first tick (static schemes pin
    authorities here), and :meth:`on_epoch` after each epoch's stats close.
    Policies act through ``self.sim.migrator`` and ``self.sim.authmap``.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.sim = None

    def attach(self, sim) -> None:
        self.sim = sim

    def setup(self) -> None:
        """One-time initialization before the simulation starts."""

    @abstractmethod
    def on_epoch(self, epoch: int) -> None:
        """React to the epoch that just closed."""

    # ------------------------------------------------------------- utilities
    @property
    def metrics(self):
        """The simulator's :class:`~repro.obs.registry.MetricsRegistry`."""
        return self.sim.metrics

    @property
    def trace(self):
        """The simulator's :class:`~repro.obs.tracelog.TraceLog`."""
        return self.sim.trace

    def emit(self, event) -> None:
        """Record one decision event on the simulator's trace."""
        self.sim.trace.emit(event)

    def failed_ranks(self) -> set[int]:
        """Ranks currently down; no policy should plan exports to or from
        them — a dead importer cannot receive and a replayed exporter will
        not resume pre-failure plans."""
        return {m.rank for m in self.sim.mdss if m.failed}

    def loads(self) -> list[float]:
        """Most recent epoch IOPS per MDS."""
        return [m.current_load for m in self.sim.mdss]

    def heat_loads(self) -> list[float]:
        """Per-MDS load as CephFS-Vanilla sees it: decayed popularity.

        CephFS's ``mds_load`` derives from the pop counters of the subtrees
        an MDS *owns*, not from the requests it serves. For recurrent
        workloads the two agree; for scans an MDS holding freshly scanned
        (dead) subtrees looks loaded while serving nothing — the root cause
        of the paper's first inefficiency. Lunule's contribution is exactly
        to replace this with observed IOPS (paper §3.2).
        """
        sim = self.sim
        heat = sim.stats.heat_array()
        out = [0.0] * len(sim.mdss)
        authmap = sim.authmap
        for root, auth in authmap.subtree_roots().items():
            total = float(sum(heat[d] for d in authmap.extent(root)))
            out[auth] += total
        return out

    def histories(self) -> list[list[float]]:
        return [m.load_history for m in self.sim.mdss]

    @property
    def n_mds(self) -> int:
        return len(self.sim.mdss)
