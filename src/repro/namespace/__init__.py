"""Hierarchical file-system namespace substrate.

CephFS splits its namespace into *subtrees* (nested directories) and
*dirfrags* (partitions of one large directory). This package provides:

- :class:`repro.namespace.tree.NamespaceTree` — the directory/file tree with
  per-file access bookkeeping,
- :class:`repro.namespace.subtree.AuthorityMap` — which MDS is authoritative
  for each subtree / dirfrag, with cached resolution,
- :mod:`repro.namespace.builder` — constructors for the dataset shapes used
  by the paper's workloads (ImageNet-like fan-out, NLP corpus, web docs,
  per-client private directories).
"""

from repro.namespace.tree import NamespaceTree
from repro.namespace.subtree import AuthorityMap
from repro.namespace import builder

__all__ = ["NamespaceTree", "AuthorityMap", "builder"]
