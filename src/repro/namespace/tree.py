"""The namespace tree: directories, files, and per-file access state.

Directories are dense integer ids (0 is the root). Files are implicit —
``(dir_id, file_index)`` pairs — which keeps memory at one int32 per file
(its last-access epoch) instead of a Python object per inode. File counts
can grow at runtime (MDtest-style create streams).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["NamespaceTree", "NEVER_ACCESSED"]

NEVER_ACCESSED = -1


class NamespaceTree:
    """A mutable directory tree with implicit file inodes.

    The tree intentionally has no notion of which MDS owns what; that lives
    in :class:`repro.namespace.subtree.AuthorityMap`. The tree does own the
    per-file *last accessed epoch* state because both the vanilla balancer's
    heat and Lunule's pattern analyzer are derived from it.
    """

    def __init__(self) -> None:
        self.parent: list[int] = [-1]
        self.children: list[list[int]] = [[]]
        self.names: list[str] = ["/"]
        self.n_files: list[int] = [0]
        self.depth: list[int] = [0]
        # Lazily allocated per-dir int32 arrays of last-access epoch.
        self._file_last_access: dict[int, np.ndarray] = {}
        # Number of files in each dir never accessed yet (for Lunule's beta).
        self._unvisited: list[int] = [0]
        # Per touched dir, a histogram of last-access epochs: entry ``i`` of
        # ``_access_counts[d]`` is the number of files whose last access was
        # epoch ``_access_base[d] + i``. Maintained incrementally by the
        # touch methods so sliding-window queries (how many files were
        # accessed at epoch >= cutoff?) read a few trailing entries instead
        # of rescanning every access array each epoch.
        self._access_base: dict[int, int] = {}
        self._access_counts: dict[int, list[int]] = {}
        # Incrementally maintained float64 mirror of ``n_files`` (capacity
        # doubled on growth; first ``n_dirs`` entries valid). Epoch-level
        # consumers read whole-namespace file counts every epoch — at
        # million-directory scale the list→array conversion would dominate.
        self._n_files_arr: np.ndarray = np.zeros(1)

    # ------------------------------------------------------------------ build
    def add_dir(self, parent: int, name: str) -> int:
        """Create a directory under ``parent`` and return its id."""
        self._check_dir(parent)
        dir_id = len(self.parent)
        self.parent.append(parent)
        self.children.append([])
        self.names.append(name)
        self.n_files.append(0)
        self.depth.append(self.depth[parent] + 1)
        self._unvisited.append(0)
        self.children[parent].append(dir_id)
        if dir_id >= self._n_files_arr.size:
            grown = np.zeros(2 * self._n_files_arr.size)
            grown[: self._n_files_arr.size] = self._n_files_arr
            self._n_files_arr = grown
        return dir_id

    def add_files(self, dir_id: int, count: int) -> int:
        """Add ``count`` files to ``dir_id``; returns the first new index."""
        self._check_dir(dir_id)
        if count < 0:
            raise ValueError("cannot add a negative number of files")
        first = self.n_files[dir_id]
        self.n_files[dir_id] = first + count
        self._n_files_arr[dir_id] = first + count
        self._unvisited[dir_id] += count
        arr = self._file_last_access.get(dir_id)
        if arr is not None and self.n_files[dir_id] > arr.size:
            grown = np.full(max(self.n_files[dir_id], 2 * arr.size), NEVER_ACCESSED,
                            dtype=np.int32)
            grown[: arr.size] = arr
            self._file_last_access[dir_id] = grown
        return first

    # ------------------------------------------------------------ access state
    def _bump_epoch_count(self, dir_id: int, epoch: int, delta: int) -> None:
        counts = self._access_counts.get(dir_id)
        if counts is None:
            self._access_base[dir_id] = epoch
            self._access_counts[dir_id] = [delta]
            return
        i = epoch - self._access_base[dir_id]
        if i < 0:
            counts[:0] = [0] * -i
            self._access_base[dir_id] = epoch
            i = 0
        elif i >= len(counts):
            counts.extend([0] * (i - len(counts) + 1))
        counts[i] += delta

    def recently_accessed(self, cutoff: int) -> Iterator[tuple[int, int]]:
        """Yield ``(dir_id, count)`` of files last accessed at epoch >= cutoff.

        Reads the incremental epoch histograms, so the cost is proportional
        to the number of *touched* directories times the window width — not
        to the total file population.
        """
        for d, counts in self._access_counts.items():
            lo = cutoff - self._access_base[d]
            if lo < 0:
                lo = 0
            if lo < len(counts):
                c = sum(counts[lo:])
                if c:
                    yield d, c

    def _access_array(self, dir_id: int) -> np.ndarray:
        arr = self._file_last_access.get(dir_id)
        if arr is None or arr.size < self.n_files[dir_id]:
            arr = np.full(max(self.n_files[dir_id], 1), NEVER_ACCESSED, dtype=np.int32)
            old = self._file_last_access.get(dir_id)
            if old is not None:
                arr[: old.size] = old
            self._file_last_access[dir_id] = arr
        return arr

    def touch_file(self, dir_id: int, file_idx: int, epoch: int) -> int:
        """Record an access; returns the previous last-access epoch.

        A return of :data:`NEVER_ACCESSED` means this is a first visit.
        """
        if not 0 <= file_idx < self.n_files[dir_id]:
            raise IndexError(f"file {file_idx} out of range in dir {dir_id}")
        arr = self._access_array(dir_id)
        prev = int(arr[file_idx])
        arr[file_idx] = epoch
        if prev == NEVER_ACCESSED:
            self._unvisited[dir_id] -= 1
        else:
            self._bump_epoch_count(dir_id, prev, -1)
        self._bump_epoch_count(dir_id, epoch, 1)
        return prev

    def touch_file_range(self, dir_id: int, start: int, count: int,
                         epoch: int) -> None:
        """Batched first-touch of files ``start .. start+count-1``.

        Equivalent to ``count`` :meth:`touch_file` calls on freshly created
        indices (all previous epochs are ``NEVER_ACCESSED``); used by the
        columnar engine for create runs.
        """
        if count <= 0:
            return
        if start < 0 or start + count > self.n_files[dir_id]:
            raise IndexError(f"file range out of range in dir {dir_id}")
        arr = self._access_array(dir_id)
        arr[start:start + count] = epoch
        self._unvisited[dir_id] -= count
        self._bump_epoch_count(dir_id, epoch, count)

    def touch_file_batch(self, dir_id: int, idxs: np.ndarray,
                         epoch: int) -> np.ndarray:
        """Batched access of *unique* file indices; returns previous epochs.

        The unvisited stock drops by the number of never-before-accessed
        indices, exactly as the equivalent :meth:`touch_file` sequence
        would (duplicates must be deduplicated by the caller: a repeat
        within one batch reads ``epoch`` back as its previous value).
        """
        if idxs.size == 0:
            return idxs
        if int(idxs.min()) < 0 or int(idxs.max()) >= self.n_files[dir_id]:
            raise IndexError(f"file index out of range in dir {dir_id}")
        arr = self._access_array(dir_id)
        prevs = arr[idxs].copy()
        arr[idxs] = epoch
        self._unvisited[dir_id] -= int((prevs == NEVER_ACCESSED).sum())
        touched = prevs[prevs != NEVER_ACCESSED]
        if touched.size:
            for e, c in zip(*np.unique(touched, return_counts=True)):
                self._bump_epoch_count(dir_id, int(e), -int(c))
        self._bump_epoch_count(dir_id, epoch, int(idxs.size))
        return prevs

    def n_files_array(self) -> np.ndarray:
        """Fresh float64 array of per-directory file counts (a copy)."""
        return self._n_files_arr[: len(self.n_files)].copy()

    def unvisited_files(self, dir_id: int) -> int:
        """Number of files in ``dir_id`` that have never been accessed."""
        self._check_dir(dir_id)
        return self._unvisited[dir_id]

    # ------------------------------------------------------------------ queries
    @property
    def n_dirs(self) -> int:
        return len(self.parent)

    def total_files(self) -> int:
        return sum(self.n_files)

    def path(self, dir_id: int) -> str:
        """Human-readable absolute path of a directory (for reports)."""
        self._check_dir(dir_id)
        parts: list[str] = []
        d = dir_id
        while d != 0:
            parts.append(self.names[d])
            d = self.parent[d]
        return "/" + "/".join(reversed(parts))

    def ancestors(self, dir_id: int) -> Iterator[int]:
        """Yield ``dir_id`` then each ancestor up to and including the root."""
        self._check_dir(dir_id)
        d = dir_id
        while True:
            yield d
            if d == 0:
                return
            d = self.parent[d]

    def walk(self, dir_id: int = 0) -> Iterator[int]:
        """Pre-order iteration over ``dir_id`` and all descendants."""
        self._check_dir(dir_id)
        stack = [dir_id]
        while stack:
            d = stack.pop()
            yield d
            stack.extend(reversed(self.children[d]))

    def subtree_extent(self, root: int, stop: frozenset[int] | set[int] = frozenset()) -> list[int]:
        """Dirs in the subtree rooted at ``root``, not descending into ``stop``.

        ``stop`` is the set of *other* subtree roots nested below ``root``;
        those belong to a different authority and are excluded (but ``root``
        itself is always included even if listed in ``stop``).
        """
        self._check_dir(root)
        out: list[int] = []
        stack = [root]
        while stack:
            d = stack.pop()
            out.append(d)
            for c in self.children[d]:
                if c not in stop:
                    stack.append(c)
        return out

    def inode_count(self, dirs: list[int]) -> int:
        """Inodes covered by a set of directories (1 per dir + its files)."""
        return sum(1 + self.n_files[d] for d in dirs)

    def _check_dir(self, dir_id: int) -> None:
        if not 0 <= dir_id < len(self.parent):
            raise IndexError(f"unknown directory id {dir_id}")
