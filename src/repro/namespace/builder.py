"""Namespace builders for the dataset shapes the paper's workloads use.

Each builder returns a :class:`NamespaceTree` plus the directory ids a
workload needs (class dirs, corpus folders, client private dirs, ...). File
counts are scaled-down versions of the paper's datasets; the *shape*
(fan-out, folder-size skew) is what the balancing behaviour depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.namespace.tree import NamespaceTree
from repro.util.rng import substream

__all__ = [
    "BuiltNamespace",
    "build_fanout",
    "build_corpus",
    "build_web",
    "build_private_dirs",
    "merge_builds",
]


@dataclass
class BuiltNamespace:
    """A tree plus the directory ids relevant to its workload."""

    tree: NamespaceTree
    root: int
    dirs: list[int] = field(default_factory=list)
    #: number of files per entry of :attr:`dirs` (parallel list)
    files: list[int] = field(default_factory=list)

    def total_files(self) -> int:
        return sum(self.files)


def build_fanout(n_dirs: int, files_per_dir: int, *, tree: NamespaceTree | None = None,
                 parent: int = 0, prefix: str = "class") -> BuiltNamespace:
    """ImageNet-like layout: one root with ``n_dirs`` equal leaf dirs.

    ILSVRC2012 is 1.28M images over 1000 class directories; pass scaled
    ``n_dirs``/``files_per_dir`` with the same ratio.
    """
    if n_dirs <= 0 or files_per_dir < 0:
        raise ValueError("need at least one directory and non-negative files")
    tree = tree if tree is not None else NamespaceTree()
    root = tree.add_dir(parent, f"{prefix}_root") if prefix else parent
    dirs, files = [], []
    for i in range(n_dirs):
        d = tree.add_dir(root, f"{prefix}_{i:04d}")
        tree.add_files(d, files_per_dir)
        dirs.append(d)
        files.append(files_per_dir)
    return BuiltNamespace(tree, root, dirs, files)


def build_corpus(n_folders: int, total_files: int, *, skew: float = 1.4, seed: int = 0,
                 tree: NamespaceTree | None = None, parent: int = 0,
                 prefix: str = "corpus") -> BuiltNamespace:
    """THUCTC-like corpus: few top-level folders with skewed sizes.

    The real corpus has 836k files in 14 folders whose sizes differ by more
    than an order of magnitude (news categories are not equally common).
    Folder sizes follow a Zipf-like ramp with exponent ``skew``.
    """
    if n_folders <= 0 or total_files < n_folders:
        raise ValueError("need >= 1 folder and >= 1 file per folder")
    tree = tree if tree is not None else NamespaceTree()
    root = tree.add_dir(parent, f"{prefix}_root")
    weights = np.arange(1, n_folders + 1, dtype=np.float64) ** (-skew)
    weights /= weights.sum()
    sizes = np.maximum(1, np.round(weights * total_files).astype(int))
    rng = substream(seed, "builder", "corpus")
    rng.shuffle(sizes)
    dirs, files = [], []
    for i, size in enumerate(sizes):
        d = tree.add_dir(root, f"{prefix}_{i:02d}")
        tree.add_files(d, int(size))
        dirs.append(d)
        files.append(int(size))
    return BuiltNamespace(tree, root, dirs, files)


def build_web(n_top: int, n_sub_per_top: int, total_files: int, *, seed: int = 0,
              tree: NamespaceTree | None = None, parent: int = 0,
              prefix: str = "web") -> BuiltNamespace:
    """Web-server docroot: two-level nesting with Pareto-ish dir sizes.

    Returns leaf dirs in :attr:`BuiltNamespace.dirs`; a web trace addresses
    files across all of them.
    """
    if n_top <= 0 or n_sub_per_top <= 0:
        raise ValueError("need positive fan-outs")
    tree = tree if tree is not None else NamespaceTree()
    root = tree.add_dir(parent, f"{prefix}_root")
    rng = substream(seed, "builder", "web")
    n_leaf = n_top * n_sub_per_top
    raw = rng.pareto(1.2, size=n_leaf) + 1.0
    sizes = np.maximum(1, np.round(raw / raw.sum() * total_files).astype(int))
    dirs, files = [], []
    leaf = 0
    for t in range(n_top):
        top = tree.add_dir(root, f"{prefix}_site{t:03d}")
        for s in range(n_sub_per_top):
            d = tree.add_dir(top, f"sec{s:03d}")
            tree.add_files(d, int(sizes[leaf]))
            dirs.append(d)
            files.append(int(sizes[leaf]))
            leaf += 1
    return BuiltNamespace(tree, root, dirs, files)


def build_private_dirs(n_clients: int, files_per_dir: int, *, tree: NamespaceTree | None = None,
                       parent: int = 0, prefix: str = "client") -> BuiltNamespace:
    """Per-client non-shared directories (Filebench Zipf / MDtest layout)."""
    if n_clients <= 0 or files_per_dir < 0:
        raise ValueError("need >= 1 client and non-negative files")
    tree = tree if tree is not None else NamespaceTree()
    root = tree.add_dir(parent, f"{prefix}_root")
    dirs, files = [], []
    for i in range(n_clients):
        d = tree.add_dir(root, f"{prefix}_{i:03d}")
        tree.add_files(d, files_per_dir)
        dirs.append(d)
        files.append(files_per_dir)
    return BuiltNamespace(tree, root, dirs, files)


def merge_builds(*parts: BuiltNamespace) -> NamespaceTree:
    """Sanity helper for mixed workloads: all parts must share one tree."""
    if not parts:
        raise ValueError("nothing to merge")
    tree = parts[0].tree
    for p in parts[1:]:
        if p.tree is not tree:
            raise ValueError("mixed-workload parts must be built into one tree")
    return tree
