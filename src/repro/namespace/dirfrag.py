"""Directory fragments (dirfrags).

A large flat directory can be split into ``2**bits`` fragments; file index
``i`` belongs to fragment ``i & (2**bits - 1)``. Fragments are the unit
CephFS uses to export *parts* of one directory — without them a single huge
directory (MDtest, the NLP corpus folders) could never be balanced across
MDSs.

Fragments here partition only the *files* of a directory; child directories
keep routing through the directory itself. That matches how the paper's
workloads stress fragmentation (huge flat dirs) while keeping resolution
O(1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FragId", "frag_of", "frag_file_count", "MAX_FRAG_BITS"]

MAX_FRAG_BITS = 8


@dataclass(frozen=True, order=True)
class FragId:
    """Identifies one fragment of a directory."""

    dir_id: int
    bits: int
    frag_no: int

    def __post_init__(self) -> None:
        if not 0 < self.bits <= MAX_FRAG_BITS:
            raise ValueError(f"frag bits must be in [1, {MAX_FRAG_BITS}]")
        if not 0 <= self.frag_no < (1 << self.bits):
            raise ValueError("frag_no out of range for bits")

    def contains(self, file_idx: int) -> bool:
        return (file_idx & ((1 << self.bits) - 1)) == self.frag_no


def frag_of(file_idx: int, bits: int) -> int:
    """Fragment number of ``file_idx`` under a ``2**bits``-way split."""
    if bits <= 0:
        return 0
    return file_idx & ((1 << bits) - 1)


def frag_file_count(n_files: int, bits: int, frag_no: int) -> int:
    """How many of ``n_files`` sequential indices fall in ``frag_no``."""
    if bits <= 0:
        return n_files
    width = 1 << bits
    full, rem = divmod(n_files, width)
    return full + (1 if frag_no < rem else 0)
