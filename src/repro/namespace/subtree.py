"""Subtree authority: which MDS serves which part of the namespace.

The namespace is partitioned by *subtree roots*: a directory listed in the
authority map owns itself and every descendant down to (excluding) any
nested subtree root. Large directories may additionally be fragmented, in
which case individual fragments can be delegated to other MDSs.

Resolution is the hot path of the whole simulator (every client op calls
it), so results are cached per directory and invalidated with a single
version counter bumped on any authority change — migrations are rare
relative to requests.
"""

from __future__ import annotations

from repro.namespace.dirfrag import FragId, frag_of
from repro.namespace.tree import NamespaceTree

__all__ = ["AuthorityMap"]


class AuthorityMap:
    """Maps subtree roots and dirfrags to authoritative MDS ranks."""

    def __init__(self, tree: NamespaceTree, initial_mds: int = 0) -> None:
        self.tree = tree
        self._subtree_auth: dict[int, int] = {0: initial_mds}
        # dir_id -> (bits, {frag_no: mds}) for fragmented directories.
        self._frags: dict[int, tuple[int, dict[int, int]]] = {}
        self.version = 0
        self._cache: dict[int, tuple[int, int]] = {}  # dir -> (auth, root)
        self._cache_version = 0

    # ---------------------------------------------------------------- resolve
    def resolve_dir(self, dir_id: int) -> tuple[int, int]:
        """Return ``(auth_mds, subtree_root)`` for a directory."""
        if self._cache_version != self.version:
            self._cache.clear()
            self._cache_version = self.version
        hit = self._cache.get(dir_id)
        if hit is not None:
            return hit
        path: list[int] = []
        for d in self.tree.ancestors(dir_id):
            auth = self._subtree_auth.get(d)
            if auth is not None:
                result = (auth, d)
                for p in path:
                    self._cache[p] = result
                self._cache[d] = result
                return result
            path.append(d)
        raise RuntimeError("root directory has no authority")  # pragma: no cover

    def resolve(self, dir_id: int, file_idx: int = -1) -> int:
        """Authoritative MDS for a file (or the dir itself if ``idx < 0``)."""
        frag = self._frags.get(dir_id)
        if frag is not None and file_idx >= 0:
            bits, owners = frag
            mds = owners.get(frag_of(file_idx, bits))
            if mds is not None:
                return mds
        return self.resolve_dir(dir_id)[0]

    # ------------------------------------------------------------ partitioning
    def subtree_roots(self) -> dict[int, int]:
        """Copy of the subtree-root -> MDS mapping."""
        return dict(self._subtree_auth)

    def snapshot_state(self) -> tuple[dict[int, int], dict[int, tuple[int, dict[int, int]]]]:
        """Detached copies of ``(subtree_auth, frag_map)``.

        Insertion order is preserved, so iteration over a snapshot matches
        iteration over the live map — policies planning from a snapshot see
        candidates in the same order they would see them live.
        """
        frags = {d: (bits, dict(owners)) for d, (bits, owners) in self._frags.items()}
        return dict(self._subtree_auth), frags

    @classmethod
    def from_state(cls, tree: NamespaceTree, subtree_auth: dict[int, int],
                   frags: dict[int, tuple[int, dict[int, int]]]) -> AuthorityMap:
        """Rebuild an authority map from a :meth:`snapshot_state` snapshot."""
        ns = cls(tree)
        ns._subtree_auth = dict(subtree_auth)
        ns._frags = {d: (bits, dict(owners)) for d, (bits, owners) in frags.items()}
        return ns

    def is_subtree_root(self, dir_id: int) -> bool:
        return dir_id in self._subtree_auth

    def frag_state(self, dir_id: int) -> tuple[int, dict[int, int]] | None:
        """``(bits, {frag_no: mds})`` if the directory is fragmented."""
        state = self._frags.get(dir_id)
        if state is None:
            return None
        return state[0], dict(state[1])

    def frag_owners(self, dir_id: int) -> tuple[int, dict[int, int]] | None:
        """Live ``(bits, {frag_no: mds})`` of a fragmented directory.

        Unlike :meth:`frag_state` this returns the *live* owner mapping
        without copying — it sits on the router's per-request hot path.
        Callers must treat the mapping as read-only; ownership changes go
        through :meth:`set_frag_auth` so the version counter stays honest.
        """
        return self._frags.get(dir_id)

    def fragmented_dirs(self) -> frozenset[int]:
        """Ids of all currently fragmented directories (detached copy)."""
        return frozenset(self._frags)

    def set_subtree_auth(self, dir_id: int, mds: int) -> None:
        """Delegate the subtree rooted at ``dir_id`` to ``mds``.

        Marks ``dir_id`` as a subtree root if it was not one already.
        """
        self.tree._check_dir(dir_id)
        if mds < 0:
            raise ValueError("MDS rank must be non-negative")
        self._subtree_auth[dir_id] = mds
        self.version += 1

    def drop_subtree_root(self, dir_id: int) -> None:
        """Merge a subtree back into its parent's authority."""
        if dir_id == 0:
            raise ValueError("cannot drop the root subtree")
        self._subtree_auth.pop(dir_id, None)
        self.version += 1

    def merge_redundant_roots(self) -> int:
        """Drop subtree roots whose authority equals their parent's.

        CephFS merges adjacent subtrees so the subtree map stays small;
        after many migrations a root often ends up co-located with its
        surrounding subtree again. Returns the number of roots removed.
        Resolution is unchanged by construction.
        """
        removed = 0
        changed = True
        while changed:
            changed = False
            for d in sorted(self._subtree_auth):
                if d == 0:
                    continue
                parent_auth = self._resolve_above(d)
                if parent_auth == self._subtree_auth[d]:
                    del self._subtree_auth[d]
                    removed += 1
                    changed = True
        if removed:
            self.version += 1
        return removed

    def _resolve_above(self, dir_id: int) -> int:
        """Authority the parent chain would give ``dir_id`` if it were not
        a subtree root itself."""
        for d in self.tree.ancestors(self.tree.parent[dir_id]):
            auth = self._subtree_auth.get(d)
            if auth is not None:
                return auth
        raise RuntimeError("root directory has no authority")  # pragma: no cover

    def merge_uniform_frags(self, exclude: set[int] | frozenset[int] = frozenset()) -> int:
        """Un-fragment directories whose frags all share the dir authority.

        Returns the number of directories merged back. Frag maps whose
        owners are uniform but differ from the dir authority stay split
        (the files genuinely live elsewhere). ``exclude`` protects
        directories with in-flight migration plans from having their split
        collapsed underneath the migrator.
        """
        merged = 0
        for d in sorted(self._frags):
            if d in exclude:
                continue
            bits, owners = self._frags[d]
            owner_set = set(owners.values())
            if len(owner_set) == 1 and owner_set.pop() == self.resolve_dir(d)[0]:
                del self._frags[d]
                merged += 1
        if merged:
            self.version += 1
        return merged

    def split_dir(self, dir_id: int, bits: int) -> list[FragId]:
        """Fragment ``dir_id`` into ``2**bits`` frags, all owned by its auth.

        Re-splitting with more bits redistributes existing frag ownership by
        the containing coarser frag.
        """
        if bits <= 0:
            raise ValueError("split needs at least 1 bit")
        base_auth = self.resolve_dir(dir_id)[0]
        prev = self._frags.get(dir_id)
        owners: dict[int, int] = {}
        for frag_no in range(1 << bits):
            if prev is not None:
                pbits, powners = prev
                owners[frag_no] = powners.get(frag_no & ((1 << pbits) - 1), base_auth)
            else:
                owners[frag_no] = base_auth
        self._frags[dir_id] = (bits, owners)
        self.version += 1
        return [FragId(dir_id, bits, f) for f in sorted(owners)]

    def set_frag_auth(self, frag: FragId, mds: int) -> None:
        """Delegate one fragment of a split directory to ``mds``."""
        state = self._frags.get(frag.dir_id)
        if state is None or state[0] != frag.bits:
            raise ValueError(f"directory {frag.dir_id} is not split into {frag.bits} bits")
        state[1][frag.frag_no] = mds
        self.version += 1

    # ----------------------------------------------------------------- extents
    def extent(self, root: int) -> list[int]:
        """Directories governed by subtree root ``root``."""
        if root not in self._subtree_auth:
            raise ValueError(f"{root} is not a subtree root")
        nested = set(self._subtree_auth) - {root}
        return self.tree.subtree_extent(root, nested)

    def subtrees_of(self, mds: int) -> list[int]:
        """Subtree roots currently authoritative on ``mds``."""
        return sorted(d for d, m in self._subtree_auth.items() if m == mds)

    def frags_of(self, mds: int) -> list[FragId]:
        """Fragments explicitly owned by ``mds``."""
        out: list[FragId] = []
        for dir_id, (bits, owners) in self._frags.items():
            for frag_no, owner in owners.items():
                if owner == mds:
                    out.append(FragId(dir_id, bits, frag_no))
        return sorted(out)

    def inode_distribution(self, n_mds: int) -> list[int]:
        """Inodes (dirs + files) authoritative on each MDS rank.

        Fragmented directories attribute their files to frag owners; the
        directory inode itself goes to the subtree authority.
        """
        counts = [0] * n_mds
        for root in self._subtree_auth:
            auth = self._subtree_auth[root]
            for d in self.extent(root):
                counts[auth] += 1  # the dir inode
                frag = self._frags.get(d)
                if frag is None:
                    counts[auth] += self.tree.n_files[d]
                else:
                    bits, owners = frag
                    n = self.tree.n_files[d]
                    width = 1 << bits
                    full, rem = divmod(n, width)
                    for frag_no, owner in owners.items():
                        counts[owner] += full + (1 if frag_no < rem else 0)
        return counts
