"""MDS cluster substrate: servers, routing, migration, data path, simulator.

This package is the stand-in for the paper's physical CephFS testbed. It
models the mechanisms the balancing phenomena depend on:

- per-MDS metadata service capacity and closed-loop clients
  (:mod:`repro.cluster.simulator`),
- authoritative routing with client caches and forward accounting
  (:mod:`repro.cluster.router`),
- background subtree migration with transfer lag, per-epoch capacity and a
  two-phase commit (:mod:`repro.cluster.migration`),
- a shared-bandwidth OSD pool for end-to-end (data-enabled) runs
  (:mod:`repro.cluster.osd`).
"""

from repro.cluster.mds import MDS
from repro.cluster.migration import ExportTask, Migrator
from repro.cluster.osd import OsdPool
from repro.cluster.router import Router
from repro.cluster.simulator import SimConfig, Simulator
from repro.cluster.stats import AccessStats

__all__ = [
    "MDS",
    "ExportTask",
    "Migrator",
    "OsdPool",
    "Router",
    "SimConfig",
    "Simulator",
    "AccessStats",
]
