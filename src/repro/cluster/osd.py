"""Shared-bandwidth OSD pool modelling the data path.

End-to-end runs (paper Fig. 8) enable data access: after a metadata op
completes, the client reads/writes file bytes against the object store. The
balancing result only needs the data path to (a) take time proportional to
bytes and (b) be a shared resource, so the pool is modelled as
processor-sharing over its aggregate bandwidth.
"""

from __future__ import annotations

__all__ = ["OsdPool"]


class OsdPool:
    """Aggregate OSD bandwidth shared equally among in-flight transfers."""

    def __init__(self, n_osds: int, bandwidth_per_osd: float) -> None:
        if n_osds <= 0 or bandwidth_per_osd <= 0:
            raise ValueError("OSD pool needs positive size and bandwidth")
        self.n_osds = int(n_osds)
        self.bandwidth_per_osd = float(bandwidth_per_osd)
        #: client id -> bytes remaining
        self._inflight: dict[int, float] = {}
        self.bytes_served = 0.0

    @property
    def total_bandwidth(self) -> float:
        """Bytes the whole pool can move per tick."""
        return self.n_osds * self.bandwidth_per_osd

    def add_osds(self, count: int) -> None:
        """Cluster growth: the paper scales OSDs with metadata stress."""
        if count < 0:
            raise ValueError("cannot remove OSDs")
        self.n_osds += count

    def start(self, client_id: int, nbytes: float) -> None:
        """Begin a transfer for ``client_id`` (adds to any outstanding bytes)."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        self._inflight[client_id] = self._inflight.get(client_id, 0.0) + nbytes

    def busy(self, client_id: int) -> bool:
        return client_id in self._inflight

    def outstanding(self, client_id: int) -> float:
        """Bytes still queued for ``client_id`` (0.0 when drained)."""
        return self._inflight.get(client_id, 0.0)

    def inflight_count(self) -> int:
        return len(self._inflight)

    def tick(self) -> list[int]:
        """Advance one tick of processor-sharing; returns finished clients."""
        if not self._inflight:
            return []
        share = self.total_bandwidth / len(self._inflight)
        finished: list[int] = []
        for cid in list(self._inflight):
            left = self._inflight[cid] - share
            if left <= 0.0:
                self.bytes_served += self._inflight[cid]
                del self._inflight[cid]
                finished.append(cid)
            else:
                self.bytes_served += share
                self._inflight[cid] = left
        return finished
