"""A single metadata server: capacity, per-epoch load accounting."""

from __future__ import annotations

__all__ = ["MDS"]


class MDS:
    """One metadata server daemon.

    ``capacity`` is the maximum metadata ops it can serve per tick (the
    paper's per-MDS maximal IOPS ``C``, scaled to simulation units). The
    simulator refills :attr:`remaining` every tick; migration involvement
    shaves a fraction off via :attr:`migration_penalty`.
    """

    __slots__ = (
        "rank",
        "capacity",
        "remaining",
        "migration_penalty",
        "failed",
        "served_epoch",
        "served_total",
        "forwards_handled",
        "load_history",
    )

    def __init__(self, rank: int, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError("MDS capacity must be positive")
        self.rank = rank
        self.capacity = float(capacity)
        self.remaining = 0.0
        self.migration_penalty = 0.0
        #: a failed MDS serves nothing until a standby takes over its rank
        self.failed = False
        self.served_epoch = 0
        self.served_total = 0
        self.forwards_handled = 0
        #: per-epoch IOPS history (most recent last)
        self.load_history: list[float] = []

    def refill(self) -> None:
        """Start-of-tick capacity refill, net of migration overhead."""
        if self.failed:
            self.remaining = 0.0
            return
        penalty = min(self.migration_penalty, 0.9)
        self.remaining = self.capacity * (1.0 - penalty)

    def serve(self, cost: float = 1.0) -> None:
        self.remaining -= cost
        self.served_epoch += 1
        self.served_total += 1

    def serve_batch(self, count: int) -> None:
        """Serve ``count`` unit-cost ops in one update.

        Bit-identical to ``count`` calls of :meth:`serve`: for any double
        ``r >= 1`` and integer ``t <= r``, both the stepwise ``r - 1.0``
        chain and the single ``r - t`` are exact (subtracting an integer
        from a float at or above 1 never shifts significand bits out),
        so the engines' capacity accounting cannot drift apart.
        """
        self.remaining -= count
        self.served_epoch += count
        self.served_total += count

    def end_epoch(self, epoch_len: int) -> float:
        """Close the epoch; returns and records this epoch's IOPS."""
        iops = self.served_epoch / epoch_len
        self.load_history.append(iops)
        self.served_epoch = 0
        return iops

    @property
    def current_load(self) -> float:
        """Most recent completed epoch's IOPS (0.0 before the first epoch)."""
        return self.load_history[-1] if self.load_history else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MDS(rank={self.rank}, load={self.current_load:.1f})"
