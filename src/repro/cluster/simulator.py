"""Closed-loop, tick-based simulation of a CephFS MDS cluster.

One tick is one simulated second; an *epoch* (paper default: 10 s) is the
balancing interval. Within a tick, clients are drained round-robin against
per-MDS capacity credits, giving processor-sharing queueing behaviour: an
MDS hosting all the hot subtrees saturates at its capacity while its peers
sit idle — the load-imbalance phenomenon the paper studies.

Balancers are pure policies: once per epoch the simulator builds an
immutable :class:`~repro.core.view.ClusterView` snapshot (see
:meth:`Simulator.snapshot_view`) and hands it to the balancer's
``setup``/``on_epoch``; the returned
:class:`~repro.core.plan.EpochPlan` is replayed in action order by
:meth:`Simulator.apply_plan` — trace events onto the trace, dirfrag
splits and pins onto the authority map, exports into the
:class:`~repro.cluster.migration.Migrator`.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field, replace

from repro.cluster.mds import MDS
from repro.cluster.migration import Migrator
from repro.cluster.osd import OsdPool
from repro.cluster.results import SimResult
from repro.cluster.router import Router
from repro.cluster.stats import AccessStats
from repro.core.if_model import imbalance_factor, urgency
from repro.core.plan import EmitEvent, EpochPlan, ExportUnit, PinSubtree, SplitDir
from repro.core.view import ClusterView, build_cluster_view
from repro.kernel.engine import ColumnarEngine
from repro.namespace.subtree import AuthorityMap
from repro.obs.events import (
    DecisionIds,
    EpochStart,
    IfComputed,
    MdsFailed,
    MdsRecovered,
    NO_DECISION,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.tracelog import TraceLog
from repro.obs.workload import WorkloadProfile
from repro.workloads.base import OP_CREATE, OP_READDIR, Client, WorkloadInstance

__all__ = ["SimConfig", "Simulator"]


@dataclass(frozen=True)
class SimConfig:
    """Knobs of the simulated cluster (paper defaults where it gives them)."""

    n_mds: int = 5
    #: max metadata ops per tick per MDS (the paper's per-MDS capacity C)
    mds_capacity: float = 200.0
    #: optional per-rank capacities for heterogeneous clusters (length must
    #: match n_mds; the paper assumes homogeneity and calls heterogeneity
    #: orthogonal — this is the extension hook for it)
    mds_capacities: tuple[float, ...] | None = None
    #: ticks per balancing epoch (paper: 10 seconds)
    epoch_len: int = 10
    max_ticks: int = 50_000
    #: inodes transferred per tick per active export
    migration_rate: int = 50
    #: capacity fraction lost while involved in a migration
    migration_penalty: float = 0.1
    #: fixed two-phase-commit overhead per export task, in ticks
    migration_latency: int = 2
    #: simultaneous export tasks per exporter MDS
    migration_concurrency: int = 2
    #: smoothness knob S of the urgency logistic (paper: 0.2)
    urgency_smoothness: float = 0.2
    data_path: bool = False
    n_osds: int = 6
    #: bytes per tick per OSD for the data path
    osd_bandwidth: float = 4e6
    #: per-client outstanding-bytes window before the client stalls on data.
    #: Data reads pipeline behind metadata ops (clients prefetch); a client
    #: only blocks once it is this many bytes ahead of the OSD pool.
    data_window: float = 2e6
    #: capacity charged to each MDS that relays a forwarded request
    forward_charge: float = 1.0
    #: client dentry-lease TTL in ticks (0 disables cache expiry). CephFS
    #: trims client caches, so path resolution is re-paid periodically.
    client_lease_ttl: int = 120
    heat_decay: float = 0.8
    recurrence_window: int = 3
    pattern_windows: int = 3
    sibling_probability: float = 0.5
    serve_quantum: int = 8
    #: serve-path implementation: "columnar" (the batched kernel engine,
    #: the default) or "scalar" (the op-at-a-time reference loop). Both
    #: produce byte-identical decision traces — the scalar path is kept
    #: for differential testing (see docs/PERFORMANCE.md).
    engine: str = "columnar"
    seed: int = 0
    stop_when_done: bool = True
    #: decision-trace ring-buffer capacity; ``None`` keeps the whole run
    #: (tracing is epoch-granular, so even long runs stay small), an int
    #: bounds memory to the most recent N events for always-on deployments
    trace_capacity: int | None = None
    #: flight recorder: per-epoch time-series sampling + phase spans
    #: (see ``repro.obs.recorder``); off by default, ~0% cost when off
    record: bool = False
    #: span timestamp source — "logical" is byte-stable across runs (what
    #: golden snapshots and cross-worker aggregation need), "wall" gives
    #: real phase times in µs for benchmarks
    record_clock: str = "logical"
    #: time-series ring capacity in epochs (``None`` keeps every epoch)
    record_capacity: int | None = None
    #: wall-clock throughput gauges (``sim_epochs_per_second``,
    #: ``serve_ops_per_second``), refreshed at every epoch boundary. Off by
    #: default: the gauges read ``time.perf_counter`` and land in the
    #: registry snapshot, so byte-stable artifacts must not carry them.
    #: ``repro serve`` turns them on for the live ``/status`` plane.
    perf_gauges: bool = False
    #: per-epoch workload characterization (``repro.obs.workload``): heat
    #: and load skew, hotspot share, client churn and op-mix class as
    #: ``wl.*`` time-series columns and ``workload.*`` gauges. Off by
    #: default — the extra columns would change recorded artifacts, and
    #: golden snapshots must stay byte-identical. Never affects decisions.
    workload_profile: bool = False

    def with_(self, **kwargs) -> SimConfig:
        """Copy with overrides (convenience for sweeps)."""
        return replace(self, **kwargs)


@dataclass(order=True)
class _ScheduledEvent:
    tick: int
    order: int
    fn: Callable[[Simulator], None] = field(compare=False)


class Simulator:
    """Runs one workload instance under one balancer."""

    def __init__(self, instance: WorkloadInstance, balancer, config: SimConfig,
                 schedule: list[tuple[int, Callable[[Simulator], None]]] | None = None,
                 chaos=None) -> None:
        if config.n_mds <= 0:
            raise ValueError("need at least one MDS")
        self.config = config
        self.instance = instance
        self.tree = instance.tree
        self.authmap = AuthorityMap(self.tree, initial_mds=0)
        self.stats = AccessStats(
            self.tree,
            heat_decay=config.heat_decay,
            recurrence_window=config.recurrence_window,
            pattern_windows=config.pattern_windows,
            sibling_probability=config.sibling_probability,
            seed=config.seed,
        )
        caps = config.mds_capacities
        if caps is not None and len(caps) != config.n_mds:
            raise ValueError("mds_capacities length must equal n_mds")
        self.mdss: list[MDS] = [
            MDS(r, caps[r] if caps is not None else config.mds_capacity)
            for r in range(config.n_mds)
        ]
        #: always-on observability: every component below feeds these two
        self.metrics = MetricsRegistry()
        #: run-wide decision-id sequence, shared between the trace log
        #: (mechanism-side events) and every epoch view/plan (policy-side
        #: events) so provenance ids stay monotone in trace order
        self.decision_ids = DecisionIds()
        self.trace = TraceLog(
            capacity=config.trace_capacity,
            drop_counter=self.metrics.counter("trace.events_dropped"),
            ids=self.decision_ids)
        #: the reporting ``if_computed`` did of the current epoch — policies
        #: parent their decisions under it via the view
        self._last_if_id = NO_DECISION
        #: opt-in flight recorder (per-epoch time series + phase spans)
        self.recorder: FlightRecorder | None = (
            FlightRecorder(clock=config.record_clock,
                           capacity=config.record_capacity)
            if config.record else None
        )
        self.router = Router(self.authmap, config.forward_charge,
                             lease_ttl=config.client_lease_ttl,
                             metrics=self.metrics)
        self.migrator = Migrator(self.authmap, rate=config.migration_rate,
                                 penalty=config.migration_penalty,
                                 commit_latency=config.migration_latency,
                                 concurrency=config.migration_concurrency,
                                 trace=self.trace, metrics=self.metrics,
                                 clock=lambda: self.tick)
        self.osd: OsdPool | None = (
            OsdPool(config.n_osds, config.osd_bandwidth) if config.data_path else None
        )
        self.clients: list[Client] = list(instance.clients)
        self._by_cid = {c.cid: c for c in self.clients}
        self._data_busy: set[int] = set()
        #: optional chaos controller (duck-typed: anything with ``bind``).
        #: ``bind`` validates the fault schedule against this cluster and
        #: returns ordinary ``(tick, fn)`` entries that merge into the
        #: event schedule — the simulator stays ignorant of the chaos
        #: layer's types, preserving the layer DAG.
        entries = list(schedule or [])
        if chaos is not None:
            entries.extend(chaos.bind(self))
        self.chaos = chaos
        self._schedule = sorted(
            _ScheduledEvent(t, i, fn) for i, (t, fn) in enumerate(entries)
        )
        self._schedule_pos = 0
        self.tick = 0
        self.epoch = 0
        #: the tick the current epoch opened at / will close at. Tracked as
        #: absolute ticks (not ``tick % epoch_len``) so ``epoch_len`` can be
        #: re-tuned at an epoch boundary mid-run (``set_epoch_len``) without
        #: the modulo arithmetic tearing; for a constant ``epoch_len`` both
        #: formulations visit exactly the same boundary ticks.
        self._epoch_begin_tick = 0
        self._epoch_end_tick = config.epoch_len
        #: latched by :meth:`step_tick` once the run is over, so late calls
        #: (a service driver racing shutdown) cannot restart a stopped run
        self._halted = False
        self._perf_t0 = time.perf_counter()
        #: ticks clients spent ready-but-unserved this epoch (queueing delay)
        self._wait_ticks_epoch = 0
        self._served_epoch_total = 0
        #: client-population watermarks for the churn rate of the workload
        #: profiler (arrivals + departures per epoch over active clients)
        self._clients_started_prev = 0
        self._clients_done_prev = 0
        #: most recent epoch's characterization (``workload_profile`` only)
        self.last_workload_profile: WorkloadProfile | None = None
        self.balancer = balancer
        if config.engine == "columnar":
            self.engine: ColumnarEngine | None = ColumnarEngine(
                clients=self.clients, mdss=self.mdss, router=self.router,
                tree=self.tree, stats=self.stats, osd=self.osd,
                data_busy=self._data_busy,
                serve_quantum=config.serve_quantum,
                forward_charge=config.forward_charge,
                data_window=config.data_window)
        elif config.engine == "scalar":
            self.engine = None
        else:
            raise ValueError(f"unknown engine {config.engine!r} "
                             "(expected 'columnar' or 'scalar')")

        self.result = SimResult(
            workload=instance.name,
            balancer=getattr(balancer, "name", type(balancer).__name__),
            epoch_len=config.epoch_len,
        )

    # ------------------------------------------------------------- dynamics
    @property
    def n_mds(self) -> int:
        return len(self.mdss)

    def add_mds(self, count: int = 1, capacity: float | None = None) -> None:
        """Cluster expansion (paper Fig. 12a).

        New ranks default to the capacity their rank would have had at
        construction: the per-rank entry of ``config.mds_capacities`` when
        one exists, else the homogeneous ``config.mds_capacity``. Pass
        ``capacity`` to add a rank of any other size (heterogeneous
        growth).
        """
        caps = self.config.mds_capacities
        for _ in range(count):
            rank = len(self.mdss)
            if capacity is not None:
                cap = capacity
            elif caps is not None and rank < len(caps):
                cap = caps[rank]
            else:
                cap = self.config.mds_capacity
            self.mdss.append(MDS(rank, cap))

    def add_clients(self, clients: list[Client]) -> None:
        """Client growth (paper Fig. 12b). New clients start at once."""
        for c in clients:
            if c.cid in self._by_cid:
                raise ValueError(f"duplicate client id {c.cid}")
            c.ready_at = max(c.ready_at, self.tick)
            self.clients.append(c)
            self._by_cid[c.cid] = c

    def fail_mds(self, rank: int, *, cause: int = NO_DECISION) -> None:
        """Failure injection: the rank stops serving (clients queue on it).

        In CephFS a standby daemon eventually replays the journal and takes
        over the failed rank; model that with a later :meth:`recover_mds`.
        Subtree authority is rank-based, so it survives the failover.
        ``cause`` is an optional decision id (the ``fault_injected`` event
        under chaos injection) threaded onto the resulting aborts.
        """
        if not 0 <= rank < len(self.mdss):
            raise ValueError(f"no MDS with rank {rank}")
        self.mdss[rank].failed = True
        self.trace.emit(MdsFailed(tick=self.tick, rank=rank))
        self.metrics.counter("sim.mds_failures").inc()
        # Abort exports touching the failed rank: CephFS rolls back a
        # half-done import on session reset and the replayed exporter does
        # not resume pre-failure plans, so letting these tasks finish later
        # would hand one subtree to two ranks' accounting.
        self.migrator.abort_rank(rank, cause=cause)

    def recover_mds(self, rank: int) -> None:
        """A standby took over ``rank``; it serves again from the next tick."""
        if not 0 <= rank < len(self.mdss):
            raise ValueError(f"no MDS with rank {rank}")
        self.mdss[rank].failed = False
        self.trace.emit(MdsRecovered(tick=self.tick, rank=rank))

    def set_epoch_len(self, epoch_len: int) -> None:
        """Re-tune the balancing interval mid-run (live reconfiguration).

        Safe only between epochs: call it right after an epoch closed
        (``repro serve`` applies queued mutations exactly there), so the
        epoch in progress is never shortened below the ticks it already
        served. Load normalization (``served / epoch_len``) picks up the
        new length from the next epoch on.
        """
        if epoch_len <= 0:
            raise ValueError("epoch_len must be positive")
        self.config = self.config.with_(epoch_len=epoch_len)
        self._epoch_end_tick = self._epoch_begin_tick + epoch_len

    # ------------------------------------------------- policy/mechanism seam
    def snapshot_view(self) -> ClusterView:
        """The immutable epoch snapshot handed to the balancer."""
        return build_cluster_view(
            epoch=self.epoch,
            mdss=self.mdss,
            stats=self.stats,
            authmap=self.authmap,
            migrator=self.migrator,
            default_capacity=self.config.mds_capacity,
            metrics=self.metrics,
            decision_ids=self.decision_ids,
            if_decision_id=self._last_if_id,
        )

    def apply_plan(self, plan: EpochPlan | None) -> None:
        """Replay a policy's plan onto the live cluster, in action order.

        Order preservation is what keeps decision traces identical to a
        policy acting directly: an export's ``MigrationPlanned`` event (the
        migrator emits it on submission) lands exactly where the policy
        placed the export between its trace events.
        """
        if plan is None:
            return
        for action in plan.actions:
            if isinstance(action, EmitEvent):
                self.trace.emit(action.event)
            elif isinstance(action, SplitDir):
                self.authmap.split_dir(action.dir_id, action.bits)
            elif isinstance(action, PinSubtree):
                self.authmap.set_subtree_auth(action.dir_id, action.rank)
            elif isinstance(action, ExportUnit):
                self.migrator.submit_export(action.src, action.dst,
                                            action.unit, action.load,
                                            decision_id=action.did,
                                            parent_id=action.parent)
            else:
                raise TypeError(f"unknown plan action {action!r}")

    # ------------------------------------------------------------------ run
    def run(self) -> SimResult:
        """Batch mode: setup, tick to completion, finalize."""
        self.start()
        while self.step_tick():
            pass
        return self.finish()

    def start(self) -> None:
        """Apply the balancer's one-time setup plan (span ``setup``).

        First third of the incremental protocol ``start`` →
        ``step_tick``\\* → ``finish`` that :meth:`run` composes and that
        `repro serve` drives tick-by-tick (pausing, single-stepping and
        mutating config between ticks). The split changes no behaviour:
        :meth:`run` executes the exact statement sequence the former
        monolithic loop did.
        """
        prof = self.recorder.spans if self.recorder is not None else None
        if prof is not None:
            with prof.span("setup"):
                self.apply_plan(self.balancer.setup(self.snapshot_view()))
        else:
            self.apply_plan(self.balancer.setup(self.snapshot_view()))
        self._perf_t0 = time.perf_counter()

    def step_tick(self) -> bool:
        """Advance the simulation by one tick.

        Returns ``False`` once the run is over — tick budget exhausted, or
        every client done at an epoch boundary under ``stop_when_done`` —
        after which further calls are no-ops. The caller owns the loop;
        :meth:`finish` produces the result.
        """
        cfg = self.config
        if self._halted or self.tick >= cfg.max_ticks:
            self._halted = True
            return False
        # the profiler handle is hoisted so the common (recorder-off) path
        # pays a single None check per phase, nothing more
        prof = self.recorder.spans if self.recorder is not None else None
        self._fire_schedule(self.tick)
        self._begin_tick()
        if prof is None:
            self._serve_tick(self.tick)
        else:
            if self.tick == self._epoch_begin_tick:
                prof.begin("epoch")
            with prof.span("serve"):
                self._serve_tick(self.tick)
        if self.osd is not None:
            now = self.tick
            self.osd.tick()
            window = self.config.data_window
            for cid in list(self._data_busy):
                left = self.osd.outstanding(cid)
                c = self._by_cid[cid]
                if c.done:
                    if left <= 0.0:
                        self._data_busy.discard(cid)
                        c.done_at = now  # completion includes the drain
                elif left <= window:
                    self._data_busy.discard(cid)
        down = {m.rank for m in self.mdss if m.failed}
        if prof is None:
            self.migrator.tick(down)
        else:
            with prof.span("migration"):
                self.migrator.tick(down)
        self.tick += 1
        if self.tick == self._epoch_end_tick:
            self._end_epoch()
            if prof is not None:
                prof.end("epoch")
            if cfg.stop_when_done and self._all_done():
                self._halted = True
                return False
        if self.tick >= cfg.max_ticks:
            self._halted = True
            return False
        return True

    def finish(self) -> SimResult:
        """Close the run: flush the recorder, assemble the result."""
        return self._finalize()

    def _all_done(self) -> bool:
        if self._schedule_pos < len(self._schedule):
            return False
        if self._data_busy:
            return False
        return all(c.done for c in self.clients)

    def _fire_schedule(self, now: int) -> None:
        while (self._schedule_pos < len(self._schedule)
               and self._schedule[self._schedule_pos].tick <= now):
            self._schedule[self._schedule_pos].fn(self)
            self._schedule_pos += 1

    def _begin_tick(self) -> None:
        busy = self.migrator.busy_ranks()
        penalty = self.migrator.penalty
        for m in self.mdss:
            m.migration_penalty = penalty if m.rank in busy else 0.0
            m.refill()

    # ---------------------------------------------------------------- serving
    def _serve_tick(self, now: int) -> None:
        if self.engine is not None:
            self._wait_ticks_epoch += self.engine.serve_tick(now)
            return
        self._serve_tick_scalar(now)

    def _serve_tick_scalar(self, now: int) -> None:
        """The op-at-a-time reference loop (``SimConfig(engine="scalar")``).

        The columnar engine in :mod:`repro.kernel.engine` is decision-
        equivalent to this loop by contract; any change here must be
        mirrored there (the differential tests enforce it).
        """
        mdss = self.mdss
        route = self.router.route
        tree = self.tree
        stats = self.stats
        osd = self.osd
        quantum = self.config.serve_quantum
        forward_charge = self.config.forward_charge
        data_window = self.config.data_window
        data_busy = self._data_busy

        active = [
            c for c in self.clients
            if c.done_at is None and c.ready_at <= now and c.cid not in data_busy
        ]
        while active:
            survivors: list[Client] = []
            for c in active:
                out_for_tick = False
                if c.rate is not None:
                    if c.rate_tick != now:
                        c.rate_tick = now
                        c.rate_served = 0
                    elif c.rate_served >= c.rate:
                        # rate-exhausted for this tick: skip the client AND
                        # leave it out of survivors, so the drain loop never
                        # rescans it in later quantum rounds of this tick
                        continue
                for _ in range(quantum):
                    kind, d, idx, nbytes = c.current  # type: ignore[misc]
                    ridx = tree.n_files[d] if kind == OP_CREATE else idx
                    serving, hops = route(c.routing, d, ridx, now)
                    mds = mdss[serving]
                    if mds.remaining < 1.0:
                        # ready but unserved for the rest of this tick:
                        # one tick of queueing delay for this client
                        self._wait_ticks_epoch += 1
                        out_for_tick = True
                        break
                    for h in hops:
                        hop = mdss[h]
                        hop.remaining -= forward_charge
                        hop.forwards_handled += 1
                    mds.serve()
                    c.meta_ops += 1
                    if c.rate is not None:
                        c.rate_served += 1
                    if kind == OP_CREATE:
                        new_idx = tree.add_files(d, 1)
                        stats.record_file_access(d, new_idx, created=True)
                    elif kind == OP_READDIR or idx < 0:
                        stats.record_dir_access(d)
                    else:
                        stats.record_file_access(d, idx)
                    if nbytes > 0:
                        c.data_ops += 1
                        c.data_bytes += nbytes
                        if osd is not None:
                            osd.start(c.cid, float(nbytes))
                            # Data reads pipeline behind metadata; the
                            # client stalls only once it outruns the OSD
                            # pool by more than its prefetch window.
                            if osd.outstanding(c.cid) > data_window:
                                data_busy.add(c.cid)
                                c.advance(now)
                                out_for_tick = True
                                break
                    c.advance(now)
                    if c.done_at is not None:
                        if osd is not None and osd.outstanding(c.cid) > 0.0:
                            data_busy.add(c.cid)
                        out_for_tick = True
                        break
                    if c.ready_at > now or (c.rate is not None and c.rate_served >= c.rate):
                        out_for_tick = True
                        break
                if not out_for_tick:
                    survivors.append(c)
            active = survivors

    # ---------------------------------------------------------------- epochs
    def _end_epoch(self) -> None:
        cfg = self.config
        served = [m.served_epoch for m in self.mdss]
        loads = [m.end_epoch(cfg.epoch_len) for m in self.mdss]
        self.stats.end_epoch()

        r = self.result
        r.epoch_ticks.append(self.tick)
        r.per_mds_iops.append(loads)
        capacity = max(m.capacity for m in self.mdss)
        if_value = imbalance_factor(loads, capacity, cfg.urgency_smoothness)
        r.if_series.append(if_value)
        r.migrated_series.append(self.migrator.migrated_inodes)
        r.forwards_series.append(self.router.total_forwards)
        # Mean metadata-op latency in ticks: one service tick plus the
        # queueing delay amortized over the epoch's served ops.
        ops = sum(served)
        r.latency_series.append(
            1.0 + (self._wait_ticks_epoch / ops if ops else 0.0)
        )
        self._wait_ticks_epoch = 0

        # Decision trace + metrics: the epoch boundary and the reporting IF
        # (the balancer below adds its own trigger/role/selection events).
        self.trace.emit(EpochStart(epoch=self.epoch, tick=self.tick))
        self._last_if_id = self.trace.next_decision_id()
        self.trace.emit(IfComputed(epoch=self.epoch, value=if_value,
                                   loads=tuple(loads), source="simulator",
                                   did=self._last_if_id))
        m = self.metrics
        m.counter("sim.epochs").inc()
        m.counter("sim.ops_served").inc(ops)
        m.gauge("sim.imbalance_factor").set(if_value)
        for rank, load in enumerate(loads):
            m.gauge("mds.load", rank=rank).set(load)
        if cfg.perf_gauges:
            elapsed = time.perf_counter() - self._perf_t0
            if elapsed > 0.0:
                m.gauge("sim.epochs_per_second").set((self.epoch + 1) / elapsed)
                m.gauge("serve.ops_per_second").set(
                    sum(mds.served_total for mds in self.mdss) / elapsed)
        if cfg.workload_profile:
            # Post-decision-trace characterization of the closing epoch.
            # Reads the same loads/heat the balancer saw but writes only
            # gauges, ``wl.*`` columns and ``last_workload_profile`` —
            # never the trace, so decisions stay byte-identical.
            heat_values, n_dirs = self.stats.live_heat()
            started = sum(1 for c in self.clients if c.ready_at <= self.tick)
            done = sum(1 for c in self.clients if c.done_at is not None)
            profile = WorkloadProfile.compute(
                epoch=self.epoch, loads=loads, heat_values=heat_values,
                n_dirs=n_dirs, mix=self.stats.last_epoch_mix,
                clients_started=started - self._clients_started_prev,
                clients_done=done - self._clients_done_prev,
                active_clients=started - done)
            self._clients_started_prev = started
            self._clients_done_prev = done
            self.last_workload_profile = profile
            profile.to_gauges(m)

        rec = self.recorder
        if rec is None:
            self.apply_plan(self.balancer.on_epoch(self.snapshot_view()))
        else:
            spans = rec.spans
            with spans.span("snapshot_view"):
                view = self.snapshot_view()
            with spans.span("plan"):
                plan = self.balancer.on_epoch(view)
            with spans.span("apply_plan"):
                self.apply_plan(plan)
            self._record_epoch(rec, if_value, loads, ops)
        # Housekeeping CephFS also performs: merge subtree roots and frag
        # maps that migrations have made redundant, so the authority map
        # (and resolution cost) stays proportional to real fragmentation.
        # Directories with in-flight frag exports keep their splits.
        self.authmap.merge_redundant_roots()
        self.authmap.merge_uniform_frags(exclude=self.migrator.pending_frag_dirs())
        self.epoch += 1
        self._epoch_begin_tick = self.tick
        self._epoch_end_tick = self.tick + self.config.epoch_len

    def _record_epoch(self, rec: FlightRecorder, if_value: float,
                      loads: list[float], ops: int) -> None:
        """One flight-recorder sample: the epoch's row in the time series.

        Queue depths are read *after* the plan applied, so the row shows
        the migration backlog this epoch's decisions actually created.
        """
        cfg = self.config
        capacity = max(m.capacity for m in self.mdss)
        queue_depths = [self.migrator.queue_depth(m.rank) for m in self.mdss]
        record: dict[str, float | int] = {
            "epoch": self.epoch,
            "tick": self.tick,
            "if": if_value,
            "urgency": urgency(max(loads), capacity, cfg.urgency_smoothness),
            "ops": ops,
            "latency": self.result.latency_series[-1],
            "migrated": self.migrator.migrated_inodes,
            "forwards": self.router.total_forwards,
            "queue": sum(queue_depths),
        }
        for rank, load in enumerate(loads):
            record[f"load.{rank}"] = load
        for rank, depth in enumerate(queue_depths):
            record[f"queue.{rank}"] = depth
        profile = self.last_workload_profile
        if cfg.workload_profile and profile is not None \
                and profile.epoch == self.epoch:
            record.update(profile.to_record())
        rec.sample(record, registry=self.metrics)

    # -------------------------------------------------------------- finalize
    def _finalize(self) -> SimResult:
        if self.recorder is not None:
            self.recorder.finalize()
        r = self.result
        r.completion_ticks = {
            c.cid: c.done_at for c in self.clients if c.done_at is not None
        }
        r.served_per_mds = [m.served_total for m in self.mdss]
        r.inode_distribution = self.authmap.inode_distribution(len(self.mdss))
        r.meta_ops = sum(c.meta_ops for c in self.clients)
        r.data_ops = sum(c.data_ops for c in self.clients)
        r.committed_tasks = self.migrator.committed_tasks
        r.aborted_tasks = self.migrator.aborted_tasks
        r.total_forwards = self.router.total_forwards
        r.finished_tick = self.tick
        return r
