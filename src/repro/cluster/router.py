"""Request routing with client-side caching and forward accounting.

A client asks the MDS it believes is authoritative for the target directory.
Two situations cost *forward hops*, each a real message handled by the hop
MDS:

- **first resolution** — path components are looked up owner by owner, so
  every authority transition along an unresolved path chain is one hop;
- **stale cache** — after a migration, the client's cached authority
  answers with a redirect: one hop per moved directory (or dirfrag) per
  client, on the next touch. CephFS clients are invalidated per subtree,
  not wholesale, so a migration does not re-charge untouched paths.

Dynamic subtree partitioning keeps paths within one authority most of the
time; hash-based placement (Dir-Hash) scatters adjacent path components
across MDSs, which is exactly the ~2x-forwards effect of paper Fig. 14.
"""

from __future__ import annotations

from repro.namespace.subtree import AuthorityMap

__all__ = ["Router", "ClientRoutingState"]


class ClientRoutingState:
    """Per-client caches: dir / (dir, frag) -> auth MDS, + resolved prefixes."""

    __slots__ = ("auth_cache", "resolved", "lease_expiry")

    def __init__(self) -> None:
        self.auth_cache: dict[object, int] = {}
        self.resolved: set[int] = set()
        self.lease_expiry = -1


class Router:
    """Routes an op to its authoritative MDS, counting forward hops.

    ``lease_ttl`` models CephFS's client-cache trimming: dentry leases
    expire, so clients periodically re-resolve paths. Under subtree
    partitioning re-resolution is nearly free (whole paths share one
    authority); under hash placement it re-pays one hop per authority
    transition — the mechanism behind Dir-Hash's sustained forward overhead
    (paper Fig. 14). ``lease_ttl <= 0`` disables expiry.
    """

    def __init__(self, authmap: AuthorityMap, forward_charge: float = 1.0,
                 lease_ttl: int = 0, metrics=None) -> None:
        self.authmap = authmap
        self.forward_charge = float(forward_charge)
        self.lease_ttl = int(lease_ttl)
        self.total_forwards = 0
        # Held, not re-fetched: route() is the simulator's hottest path.
        self._c_forwards = (metrics.counter("router.forwards")
                            if metrics is not None else None)
        self._c_lease_expiries = (metrics.counter("router.lease_expiries")
                                  if metrics is not None else None)

    def check_lease(self, state: ClientRoutingState, now: int) -> None:
        """Expire the client's dentry leases if their TTL lapsed.

        Called by :meth:`route` on every request, and by the columnar
        engine once per client per tick before it bypasses ``route`` for
        cache-clean ops. Idempotent within a tick: after the first call
        the expiry is re-armed at ``now + lease_ttl > now``, so repeated
        calls (and the per-request calls inside ``route``) are no-ops.
        """
        if self.lease_ttl <= 0:
            return
        if state.lease_expiry < 0:
            state.lease_expiry = now + self.lease_ttl
        elif now >= state.lease_expiry:
            state.auth_cache.clear()
            state.resolved.clear()
            state.lease_expiry = now + self.lease_ttl
            if self._c_lease_expiries is not None:
                self._c_lease_expiries.inc()

    def route(self, state: ClientRoutingState, dir_id: int, file_idx: int = -1,
              now: int = 0) -> tuple[int, list[int]]:
        """Resolve the serving MDS for an op at tick ``now``.

        Returns ``(auth_mds, forward_hops)``; ``forward_hops`` lists the MDS
        ranks that relayed the request (empty on a fresh cache hit).
        """
        authmap = self.authmap
        tree = authmap.tree
        self.check_lease(state, now)
        cache = state.auth_cache

        hops: list[int] = []
        true_auth = authmap.resolve_dir(dir_id)[0]
        cached = cache.get(dir_id)
        if cached is None:
            # Walk up to the nearest resolved ancestor; every authority
            # transition along the unresolved chain is a forward hop, since
            # each path component must be looked up on its owner.
            chain: list[int] = []
            anchor: int | None = None
            for d in tree.ancestors(dir_id):
                if d in state.resolved:
                    anchor = d
                    break
                chain.append(d)
            prev_auth: int | None = cache.get(anchor) if anchor is not None else None
            for d in reversed(chain):
                auth = authmap.resolve_dir(d)[0]
                if prev_auth is not None and auth != prev_auth:
                    hops.append(prev_auth)
                prev_auth = auth
                state.resolved.add(d)
                cache[d] = auth
        elif cached != true_auth:
            # Migration redirect: the stale authority forwards us once.
            hops.append(cached)
            cache[dir_id] = true_auth

        serving = true_auth
        frag = authmap.frag_owners(dir_id) if file_idx >= 0 else None
        if frag is not None:
            bits, owners = frag
            frag_no = file_idx & ((1 << bits) - 1)
            frag_auth = owners.get(frag_no, true_auth)
            key = (dir_id, frag_no)
            cached_frag = cache.get(key)
            if cached_frag is None:
                if frag_auth != true_auth:
                    hops.append(true_auth)
            elif cached_frag != frag_auth:
                hops.append(cached_frag)
            cache[key] = frag_auth
            serving = frag_auth

        if hops:
            self.total_forwards += len(hops)
            if self._c_forwards is not None:
                self._c_forwards.inc(len(hops))
        return serving, hops
