"""Result container for one simulation run.

Everything the paper's figures need is collected here per epoch: per-MDS
IOPS, the imbalance factor, cumulative migrated inodes, forwards, plus
final distributions and per-client completion times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SimResult"]


@dataclass
class SimResult:
    """Time series and totals from a :class:`repro.cluster.Simulator` run."""

    workload: str
    balancer: str
    epoch_len: int

    #: tick at the end of each recorded epoch
    epoch_ticks: list[int] = field(default_factory=list)
    #: per-epoch list of per-MDS IOPS (ragged if the cluster grew)
    per_mds_iops: list[list[float]] = field(default_factory=list)
    #: per-epoch imbalance factor (computed with the Lunule IF model for all
    #: balancers — it is the paper's reporting metric, not a policy input)
    if_series: list[float] = field(default_factory=list)
    #: cumulative migrated inodes at each epoch end
    migrated_series: list[int] = field(default_factory=list)
    #: cumulative forward hops at each epoch end
    forwards_series: list[int] = field(default_factory=list)
    #: mean metadata-op latency (ticks: 1 service tick + queueing) per epoch
    latency_series: list[float] = field(default_factory=list)

    #: client id -> completion tick (only clients that finished)
    completion_ticks: dict[int, int] = field(default_factory=dict)
    #: final lifetime served ops per MDS rank
    served_per_mds: list[int] = field(default_factory=list)
    #: final inode placement per MDS rank
    inode_distribution: list[int] = field(default_factory=list)

    meta_ops: int = 0
    data_ops: int = 0
    committed_tasks: int = 0
    aborted_tasks: int = 0
    total_forwards: int = 0
    finished_tick: int = 0

    # ------------------------------------------------------------- accessors
    def aggregate_iops(self) -> np.ndarray:
        """Cluster-wide metadata throughput per epoch."""
        return np.array([sum(row) for row in self.per_mds_iops], dtype=np.float64)

    def peak_iops(self) -> float:
        agg = self.aggregate_iops()
        return float(agg.max()) if agg.size else 0.0

    def mean_if(self, skip: int = 0) -> float:
        """Average imbalance factor, optionally skipping warm-up epochs."""
        vals = self.if_series[skip:]
        return float(np.mean(vals)) if vals else 0.0

    def per_mds_matrix(self) -> np.ndarray:
        """Per-epoch per-MDS IOPS as a zero-padded 2-D array."""
        if not self.per_mds_iops:
            return np.zeros((0, 0))
        width = max(len(row) for row in self.per_mds_iops)
        out = np.zeros((len(self.per_mds_iops), width))
        for i, row in enumerate(self.per_mds_iops):
            out[i, : len(row)] = row
        return out

    def request_share(self) -> np.ndarray:
        """Fraction of lifetime requests handled by each MDS (paper Fig. 2)."""
        total = sum(self.served_per_mds)
        if total == 0:
            return np.zeros(len(self.served_per_mds))
        return np.array(self.served_per_mds, dtype=np.float64) / total

    def job_completion_times(self) -> np.ndarray:
        """Completion ticks of all finished clients, sorted ascending."""
        return np.sort(np.array(list(self.completion_ticks.values()), dtype=np.float64))

    def meta_ratio(self) -> float:
        """Measured metadata-op fraction (paper Table 1 column)."""
        total = self.meta_ops + self.data_ops
        return self.meta_ops / total if total else 0.0

    def mean_latency(self, skip: int = 0) -> float:
        """Average per-op metadata latency in ticks (skip warm-up epochs)."""
        vals = self.latency_series[skip:]
        return float(np.mean(vals)) if vals else 0.0
