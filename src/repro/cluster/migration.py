"""Background subtree/dirfrag migration between MDSs.

Migration in CephFS is a two-phase commit: the exporter freezes the subtree,
ships the inodes, then authority flips atomically. We model the parts the
balancing dynamics depend on:

- **lag**: a task transfers ``migration_rate`` inodes per tick, so a large
  export takes many epochs to land — decisions made from pre-migration load
  snapshots are already stale when they commit (the paper's ping-pong
  mechanism, §2.2);
- **cost**: exporter and importer lose a capacity fraction while a task is
  in flight;
- **queueing**: each exporter drains one task at a time; an aggressive
  balancer can enqueue far more than one epoch can move ("15 subtrees in
  the migration task queue, but only 2 successfully migrated").
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.namespace.dirfrag import FragId, frag_file_count
from repro.namespace.subtree import AuthorityMap
from repro.obs.events import (
    NO_DECISION,
    AbortReason,
    MigrationAborted,
    MigrationCommitted,
    MigrationPlanned,
    encode_unit,
)

__all__ = ["ExportTask", "Migrator"]


@dataclass
class ExportTask:
    """One planned export of a subtree (dir) or dirfrag."""

    src: int
    dst: int
    unit: int | FragId  # dir id, or a fragment
    inodes: int
    load_estimate: float = 0.0
    #: two-phase-commit fixed overhead in ticks (freeze + journal + notify)
    latency: int = 2
    #: provenance: the ``migration_planned`` decision id (pre-allocated by
    #: the planning policy, or minted at submit time) and the selection
    #: decision it fulfils — commit/abort events hang under ``decision_id``
    decision_id: int = NO_DECISION
    parent_id: int = NO_DECISION
    remaining: int = field(init=False)
    latency_left: int = field(init=False)

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("export to self is meaningless")
        if self.inodes < 0:
            raise ValueError("negative inode count")
        if self.latency < 0:
            raise ValueError("negative latency")
        self.remaining = self.inodes
        self.latency_left = self.latency


class Migrator:
    """Executes export tasks with transfer lag and capacity penalties."""

    def __init__(self, authmap: AuthorityMap, *, rate: int = 500,
                 penalty: float = 0.1, commit_latency: int = 2,
                 concurrency: int = 2, trace=None, metrics=None,
                 clock: Callable[[], int] | None = None) -> None:
        if rate <= 0:
            raise ValueError("migration rate must be positive")
        if not 0.0 <= penalty < 1.0:
            raise ValueError("penalty must be in [0, 1)")
        if commit_latency < 0:
            raise ValueError("commit latency must be >= 0")
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        self.authmap = authmap
        self.rate = int(rate)
        self.penalty = float(penalty)
        self.commit_latency = int(commit_latency)
        #: simultaneous export tasks per exporter (CephFS exports a few
        #: subtrees in parallel; the transfer rate applies per task)
        self.concurrency = int(concurrency)
        self._queues: dict[int, deque[ExportTask]] = {}
        self._active: dict[int, list[ExportTask]] = {}
        self.migrated_inodes = 0
        self.committed_tasks = 0
        self.aborted_tasks = 0
        #: decision trace / metrics sinks and the simulated-time source;
        #: all optional so the migrator stays usable standalone
        self.trace = trace
        self.metrics = metrics
        self.clock = clock or (lambda: 0)
        if metrics is not None:
            self._c_planned = metrics.counter("migration.planned")
            self._c_committed = metrics.counter("migration.committed")
            self._c_inodes = metrics.counter("migration.inodes")
            self._h_task_inodes = metrics.histogram("migration.task_inodes")
        else:
            self._c_planned = self._c_committed = None
            self._c_inodes = self._h_task_inodes = None

    # ------------------------------------------------------------- submission
    def _next_id(self) -> int:
        """Mint a decision id from the trace sink (or none when untraced)."""
        if self.trace is None:
            return NO_DECISION
        return self.trace.next_decision_id()

    def submit(self, task: ExportTask) -> None:
        """Queue an export; validation happens again at start and commit.

        A task arriving without a pre-allocated decision id (direct
        ``Migrator`` use outside the plan/apply pipeline) is assigned one
        here so its commit/abort events still chain.
        """
        if task.decision_id == NO_DECISION:
            task.decision_id = self._next_id()
        self._queues.setdefault(task.src, deque()).append(task)
        if self._c_planned is not None:
            self._c_planned.inc()
        if self.trace is not None:
            self.trace.emit(MigrationPlanned(
                tick=self.clock(), src=task.src, dst=task.dst,
                unit=encode_unit(task.unit), inodes=task.inodes,
                load=task.load_estimate, did=task.decision_id,
                parent=task.parent_id))

    def submit_export(self, src: int, dst: int, unit: int | FragId,
                      load_estimate: float = 0.0, *,
                      decision_id: int = NO_DECISION,
                      parent_id: int = NO_DECISION) -> ExportTask:
        """Convenience: build a task, sizing inodes from the current tree."""
        task = ExportTask(src, dst, unit, self._unit_inodes(unit), load_estimate,
                          latency=self.commit_latency, decision_id=decision_id,
                          parent_id=parent_id)
        self.submit(task)
        return task

    def _unit_inodes(self, unit: int | FragId) -> int:
        tree = self.authmap.tree
        if isinstance(unit, FragId):
            return frag_file_count(tree.n_files[unit.dir_id], unit.bits, unit.frag_no)
        nested = set(self.authmap.subtree_roots()) - {unit}
        return tree.inode_count(tree.subtree_extent(unit, nested))

    def _covered_frags(self, unit: FragId) -> list[FragId]:
        """Current-generation frags covered by ``unit``.

        A directory may have been re-split (more bits) after this task was
        queued; the old frag then maps onto several finer frags. A coarser
        current split (we never merge) or a vanished split yields [].
        """
        state = self.authmap.frag_state(unit.dir_id)
        if state is None:
            return []
        bits, _owners = state
        if bits < unit.bits:
            return []
        if bits == unit.bits:
            return [unit]
        mask = (1 << unit.bits) - 1
        return [FragId(unit.dir_id, bits, f) for f in range(1 << bits)
                if (f & mask) == unit.frag_no]

    def _unit_auth(self, unit: int | FragId) -> int | None:
        """Current authority of a unit; None when no single rank owns it."""
        if isinstance(unit, FragId):
            covered = self._covered_frags(unit)
            if not covered:
                return None
            owners = {self.authmap.resolve(f.dir_id, f.frag_no) for f in covered}
            return owners.pop() if len(owners) == 1 else None
        return self.authmap.resolve_dir(unit)[0]

    # ------------------------------------------------------------- inspection
    def queue_depth(self, src: int) -> int:
        return len(self._queues.get(src, ())) + len(self._active.get(src, ()))

    def outstanding_units(self) -> list[int | FragId]:
        """Units of every queued or in-flight task (duplicates included)."""
        out: list[int | FragId] = []
        for q in self._queues.values():
            out.extend(t.unit for t in q)
        for tasks in self._active.values():
            out.extend(t.unit for t in tasks)
        return out

    def busy_ranks(self) -> set[int]:
        """MDSs currently paying migration overhead (exporters + importers)."""
        out: set[int] = set()
        for tasks in self._active.values():
            for task in tasks:
                out.add(task.src)
                out.add(task.dst)
        return out

    def pending_export_load(self, src: int) -> float:
        """Load already planned to leave ``src`` (queued + in-flight)."""
        total = sum(t.load_estimate for t in self._queues.get(src, ()))
        total += sum(t.load_estimate for t in self._active.get(src, ()))
        return total

    def pending_frag_dirs(self) -> set[int]:
        """Directories referenced by queued or in-flight frag exports."""
        out: set[int] = set()
        for q in self._queues.values():
            for t in q:
                if isinstance(t.unit, FragId):
                    out.add(t.unit.dir_id)
        for tasks in self._active.values():
            for t in tasks:
                if isinstance(t.unit, FragId):
                    out.add(t.unit.dir_id)
        return out

    def pending_import_load(self, dst: int) -> float:
        """Load already planned to land on ``dst``."""
        total = 0.0
        for q in self._queues.values():
            total += sum(t.load_estimate for t in q if t.dst == dst)
        for tasks in self._active.values():
            total += sum(t.load_estimate for t in tasks if t.dst == dst)
        return total

    # -------------------------------------------------------------- execution
    def tick(self, down_ranks: set[int] | frozenset[int] = frozenset(),
             ) -> list[ExportTask]:
        """Advance transfers by one tick; returns tasks committed this tick.

        ``down_ranks`` are failed MDSs: transfers touching them stall (the
        journaled export resumes when the standby takes over the rank).
        """
        committed: list[ExportTask] = []
        sources = set(self._queues) | set(self._active)
        for src in sorted(sources):
            if src in down_ranks:
                continue
            active = self._active.setdefault(src, [])
            while len(active) < self.concurrency:
                task = self._next_valid(src)
                if task is None:
                    break
                active.append(task)
            for task in list(active):
                if task.dst in down_ranks:
                    continue  # importer down: transfer stalls
                if task.latency_left > 0:
                    task.latency_left -= 1
                    continue
                task.remaining -= self.rate
                if task.remaining <= 0:
                    self._commit(task)
                    committed.append(task)
                    active.remove(task)
            if not active:
                del self._active[src]
        return committed

    def _next_valid(self, src: int) -> ExportTask | None:
        queue = self._queues.get(src)
        while queue:
            task = queue.popleft()
            if self._unit_auth(task.unit) != task.src:
                self._abort(task, AbortReason.STALE_AUTH)
            elif self._overlaps_active(task.unit):
                # A stale re-plan of a unit (or of its ancestor/descendant)
                # that is already in flight: starting it too would ship the
                # same inodes twice — exactly the over-migration failure
                # mode the paper's §2.2 ping-pong analysis describes.
                self._abort(task, AbortReason.OVERLAP)
            else:
                return task
        return None

    def _overlaps_active(self, unit: int | FragId) -> bool:
        """Would exporting ``unit`` overlap an in-flight task's extent?

        Two whole-dir exports overlap when one dir is an ancestor of the
        other (the nested subtree would be shipped by both). A frag
        conflicts with any task touching the same directory: committing a
        frag and its containing dir concurrently splits the accounting.
        """
        tree = self.authmap.tree
        u_dir = unit.dir_id if isinstance(unit, FragId) else unit
        for tasks in self._active.values():
            for t in tasks:
                o = t.unit
                o_dir = o.dir_id if isinstance(o, FragId) else o
                if isinstance(unit, FragId) or isinstance(o, FragId):
                    if u_dir == o_dir:
                        return True
                elif u_dir == o_dir or u_dir in tree.ancestors(o_dir) \
                        or o_dir in tree.ancestors(u_dir):
                    return True
        return False

    def abort_rank(self, rank: int, *, cause: int = NO_DECISION) -> int:
        """Drop every queued or in-flight task touching ``rank``.

        Called on MDS failure: CephFS aborts an interrupted export on
        either side's session reset (the exporter keeps authority after
        journal replay; a half-done import is rolled back), so a failed
        rank must not resume stale transfers planned from a pre-failure
        load picture. ``cause`` is the decision id of the external event
        that killed the rank (a ``fault_injected`` under chaos injection);
        the aborts record it so ``repro explain`` can chain them back to
        the fault. Returns the number of tasks dropped.
        """
        dropped = 0
        for src in list(self._queues):
            keep = deque(t for t in self._queues[src]
                         if t.src != rank and t.dst != rank)
            for t in self._queues[src]:
                if t.src == rank or t.dst == rank:
                    self._abort(t, AbortReason.MDS_FAILED, cause=cause)
                    dropped += 1
            if keep:
                self._queues[src] = keep
            else:
                del self._queues[src]
        for src in list(self._active):
            tasks = self._active[src]
            for t in list(tasks):
                if t.src == rank or t.dst == rank:
                    tasks.remove(t)
                    self._abort(t, AbortReason.MDS_FAILED, cause=cause)
                    dropped += 1
            if not tasks:
                del self._active[src]
        return dropped

    def _abort(self, task: ExportTask, reason: AbortReason, *,
               cause: int = NO_DECISION) -> None:
        # Normalizing through the enum keeps the reason vocabulary closed
        # (rejects free-form strings) and the metric label set bounded.
        value = AbortReason(reason).value
        self.aborted_tasks += 1
        if self.metrics is not None:
            self.metrics.counter("migration.aborted", reason=value).inc()
        if self.trace is not None:
            self.trace.emit(MigrationAborted(
                tick=self.clock(), src=task.src, dst=task.dst,
                unit=encode_unit(task.unit), reason=value,
                did=self._next_id(), parent=task.decision_id, cause=cause))

    def _commit(self, task: ExportTask) -> None:
        if self._unit_auth(task.unit) != task.src:
            self._abort(task, AbortReason.STALE_AUTH)
            return
        if isinstance(task.unit, FragId):
            for frag in self._covered_frags(task.unit):
                self.authmap.set_frag_auth(frag, task.dst)
        else:
            self.authmap.set_subtree_auth(task.unit, task.dst)
        self.migrated_inodes += task.inodes
        self.committed_tasks += 1
        if self._c_committed is not None:
            self._c_committed.inc()
            self._c_inodes.inc(task.inodes)
            self._h_task_inodes.observe(task.inodes)
        if self.trace is not None:
            self.trace.emit(MigrationCommitted(
                tick=self.clock(), src=task.src, dst=task.dst,
                unit=encode_unit(task.unit), inodes=task.inodes,
                did=self._next_id(), parent=task.decision_id))
