"""Control-plane message types exchanged by MDSs and the Migration Initiator.

Lunule replaces CephFS's N-to-N heartbeat gossip with a centralized N-to-1
scheme: every MDS sends an :class:`ImbalanceState` to the initiator each
epoch, and the initiator answers exporters with :class:`MigrationDecision`
messages (paper §4.1 "Stats collection" / "Migration trigger and
assignment"). The simulator delivers these synchronously, but modelling
them as explicit messages lets tests assert on the protocol and lets the
overhead accounting (§3.4) count bytes on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Heartbeat", "ImbalanceState", "MigrationDecision", "wire_size"]


@dataclass(frozen=True)
class Heartbeat:
    """Vanilla CephFS: every MDS gossips its load to every other MDS."""

    sender: int
    epoch: int
    load: float
    #: decayed per-subtree heat snapshot gossiped alongside (vanilla only)
    subtree_loads: tuple[tuple[int, float], ...] = ()


@dataclass(frozen=True)
class ImbalanceState:
    """Lunule: rank id + metadata request rate, sent N-to-1 to the initiator."""

    sender: int
    epoch: int
    iops: float


@dataclass(frozen=True)
class MigrationDecision:
    """Initiator -> exporter: how much load to ship to each importer."""

    exporter: int
    epoch: int
    #: importer rank -> load amount (IOPS-equivalent) to migrate
    assignments: dict[int, float] = field(default_factory=dict, hash=False)
    #: the exporter's ``role_assigned`` decision id (provenance; not wire
    #: payload — ``wire_size`` deliberately ignores it)
    decision_id: int = -1


def wire_size(msg: object) -> int:
    """Approximate on-the-wire size in bytes (for the §3.4 overhead model).

    Scalars cost 8 bytes, plus a small fixed header. The point is relative
    cost: an ``ImbalanceState`` is ~24 bytes while a vanilla ``Heartbeat``
    grows with the number of subtrees it gossips.
    """
    header = 16
    if isinstance(msg, Heartbeat):
        return header + 16 + 16 * len(msg.subtree_loads)
    if isinstance(msg, ImbalanceState):
        return header + 16
    if isinstance(msg, MigrationDecision):
        return header + 8 + 16 * len(msg.assignments)
    raise TypeError(f"not a wire message: {type(msg)!r}")
