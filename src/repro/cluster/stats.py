"""Per-directory access statistics feeding the balancers.

Two statistic families live here, updated from the same access stream:

- **Heat** — CephFS-Vanilla's decayed popularity counter per directory.
  Accumulates on access, decays multiplicatively per epoch. The balancer
  that selects by heat selects the *past*; the paper's §2.2 shows why that
  invalidates migration for scan workloads.
- **Pattern stats** — Lunule's cutting-window counters per directory:
  visits, recurrent visits (same file re-touched within the recurrence
  window), first visits (file never touched before), plus the sibling
  spatial-correlation bonus. These produce ``alpha``, ``beta``, ``l_t``,
  ``l_s`` of paper Eq. 4.

Hot-path updates use plain Python lists (faster than NumPy scalar
indexing); epoch-end aggregation converts to arrays for vectorized math.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.namespace.tree import NEVER_ACCESSED, NamespaceTree
from repro.util.rng import substream

__all__ = ["AccessStats"]


class AccessStats:
    """Records accesses and maintains heat + Lunule pattern windows."""

    def __init__(
        self,
        tree: NamespaceTree,
        *,
        heat_decay: float = 0.8,
        recurrence_window: int = 3,
        pattern_windows: int = 3,
        sibling_probability: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 < heat_decay <= 1.0:
            raise ValueError("heat_decay must be in (0, 1]")
        if recurrence_window < 1 or pattern_windows < 1:
            raise ValueError("windows must be >= 1")
        if not 0.0 <= sibling_probability <= 1.0:
            raise ValueError("sibling_probability must be a probability")
        self.tree = tree
        self.heat_decay = heat_decay
        self.recurrence_window = recurrence_window
        self.pattern_windows = pattern_windows
        self.sibling_probability = sibling_probability
        self._rng = substream(seed, "access-stats")

        n = tree.n_dirs
        self.heat: list[float] = [0.0] * n
        # Current-epoch counters (reset every epoch).
        self._visits: list[int] = [0] * n
        self._recurrent: list[int] = [0] * n
        self._first: list[int] = [0] * n
        self._created: list[int] = [0] * n
        # Rolling window of the last `pattern_windows` epochs, plus running sums.
        self._win: deque[tuple[np.ndarray, ...]] = deque()
        self.win_visits = np.zeros(n)
        self.win_recurrent = np.zeros(n)
        self.win_first = np.zeros(n)
        self.win_ls = np.zeros(n)
        self.win_created = np.zeros(n)
        self._dir_last_access: list[int] = [NEVER_ACCESSED] * n
        self.epoch = 0

    # ------------------------------------------------------------- recording
    def _grow(self) -> None:
        n = self.tree.n_dirs
        grow = n - len(self.heat)
        if grow <= 0:
            return
        self.heat.extend([0.0] * grow)
        self._visits.extend([0] * grow)
        self._recurrent.extend([0] * grow)
        self._first.extend([0] * grow)
        self._created.extend([0] * grow)
        self._dir_last_access.extend([NEVER_ACCESSED] * grow)
        for name in ("win_visits", "win_recurrent", "win_first", "win_ls", "win_created"):
            arr = getattr(self, name)
            setattr(self, name, np.concatenate([arr, np.zeros(grow)]))

    def record_file_access(self, dir_id: int, file_idx: int, *, created: bool = False) -> None:
        """A metadata op touched file ``file_idx`` of ``dir_id``.

        ``created`` marks a freshly created inode: it counts as a first
        visit (the inode was unvisited until this instant) and feeds the
        created-in-window tally so that create streams keep a high spatial
        inclination (beta) even though they leave no unvisited stock behind.
        """
        if dir_id >= len(self.heat):
            self._grow()
        prev = self.tree.touch_file(dir_id, file_idx, self.epoch)
        self.heat[dir_id] += 1.0
        self._visits[dir_id] += 1
        # "Visited" is a sliding notion: each inode carries a boolean queue
        # of the last n epochs (paper §4.1), so an inode untouched for
        # longer than the recurrence window counts as unvisited again.
        if prev == NEVER_ACCESSED or self.epoch - prev > self.recurrence_window:
            self._first[dir_id] += 1
            if created:
                self._created[dir_id] += 1
        else:
            self._recurrent[dir_id] += 1

    def record_dir_access(self, dir_id: int) -> None:
        """A metadata op touched the directory itself (readdir, mkdir...)."""
        if dir_id >= len(self.heat):
            self._grow()
        self.heat[dir_id] += 1.0
        self._visits[dir_id] += 1
        prev = self._dir_last_access[dir_id]
        if prev != NEVER_ACCESSED and self.epoch - prev <= self.recurrence_window:
            self._recurrent[dir_id] += 1
        self._dir_last_access[dir_id] = self.epoch

    # ------------------------------------------------------------- epoch roll
    def end_epoch(self) -> None:
        """Close the current cutting window and roll the pattern stats."""
        self._grow()
        n = self.tree.n_dirs
        visits = np.array(self._visits, dtype=np.float64)
        recurrent = np.array(self._recurrent, dtype=np.float64)
        first = np.array(self._first, dtype=np.float64)
        created = np.array(self._created, dtype=np.float64)

        # Spatial correlation: a directory whose files are being visited for
        # the first time predicts first visits on a sibling too (paper §3.3:
        # "select one of its sibling subtrees with a certain probability and
        # increment its l_s").
        ls = first.copy()
        if self.sibling_probability > 0.0:
            active = np.nonzero(first)[0]
            stock = self.unvisited_array() if active.size else None
            for d in active:
                if self._rng.random() >= self.sibling_probability:
                    continue
                parent = self.tree.parent[d]
                if parent < 0:
                    continue
                siblings = self.tree.children[parent]
                if len(siblings) < 2:
                    continue
                # Spatial locality says the scan will reach a sibling that
                # still holds unvisited stock — prefer those.
                unvisited = [s for s in siblings if s != d and stock[s] > 0]
                pool = unvisited if unvisited else [s for s in siblings if s != d]
                if not pool:
                    continue
                pick = int(pool[self._rng.integers(len(pool))])
                # A sibling cannot receive more first visits than it has
                # unvisited stock: cap the bonus so small directories are
                # not predicted to carry a huge folder's load.
                ls[pick] += min(first[d], stock[pick])

        self._win.append((visits, recurrent, first, ls, created))
        self.win_visits += visits
        self.win_recurrent += recurrent
        self.win_first += first
        self.win_ls += ls
        self.win_created += created
        if len(self._win) > self.pattern_windows:
            old = self._win.popleft()
            # A grow() may have enlarged the running sums since `old` was
            # recorded; subtract over the old prefix only.
            for arr, name in zip(old, ("win_visits", "win_recurrent", "win_first",
                                       "win_ls", "win_created")):
                getattr(self, name)[: arr.size] -= arr

        self._visits = [0] * n
        self._recurrent = [0] * n
        self._first = [0] * n
        self._created = [0] * n
        self.heat = [h * self.heat_decay for h in self.heat]
        self.epoch += 1

    # -------------------------------------------------------------- snapshots
    def heat_array(self) -> np.ndarray:
        """Decayed heat per directory (accesses add to it immediately)."""
        self._grow()
        return np.array(self.heat, dtype=np.float64)

    def unvisited_array(self) -> np.ndarray:
        """Files per directory NOT accessed within the recurrence window.

        This is the sliding "unvisited stock" behind beta: a directory
        scanned long ago regains unvisited stock as its inodes' boolean
        queues drain, making it a spatial-locality candidate again.
        """
        tree = self.tree
        cutoff = self.epoch - self.recurrence_window
        out = np.empty(tree.n_dirs, dtype=np.float64)
        for d in range(tree.n_dirs):
            n = tree.n_files[d]
            arr = tree._file_last_access.get(d)
            if arr is None:
                out[d] = n
                continue
            a = arr[:n]
            recent = int(((a != NEVER_ACCESSED) & (a >= cutoff)).sum())
            out[d] = n - recent
        return out

    def pattern_arrays(self) -> dict[str, np.ndarray]:
        """Window sums for mIndex computation (copies, per-dir)."""
        self._grow()
        return {
            "visits": self.win_visits.copy(),
            "recurrent": self.win_recurrent.copy(),
            "first": self.win_first.copy(),
            "ls": self.win_ls.copy(),
            "created": self.win_created.copy(),
            "unvisited": self.unvisited_array(),
        }
