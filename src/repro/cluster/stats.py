"""Per-directory access statistics feeding the balancers.

Two statistic families live here, updated from the same access stream:

- **Heat** — CephFS-Vanilla's decayed popularity counter per directory.
  Accumulates on access, decays multiplicatively per epoch. The balancer
  that selects by heat selects the *past*; the paper's §2.2 shows why that
  invalidates migration for scan workloads.
- **Pattern stats** — Lunule's cutting-window counters per directory:
  visits, recurrent visits (same file re-touched within the recurrence
  window), first visits (file never touched before), plus the sibling
  spatial-correlation bonus. These produce ``alpha``, ``beta``, ``l_t``,
  ``l_s`` of paper Eq. 4.

Hot-path updates use plain Python lists (faster than NumPy scalar
indexing); epoch-end aggregation converts to arrays for vectorized math.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.namespace.tree import NEVER_ACCESSED, NamespaceTree
from repro.util.rng import substream

__all__ = ["AccessStats"]


class AccessStats:
    """Records accesses and maintains heat + Lunule pattern windows."""

    def __init__(
        self,
        tree: NamespaceTree,
        *,
        heat_decay: float = 0.8,
        recurrence_window: int = 3,
        pattern_windows: int = 3,
        sibling_probability: float = 0.5,
        seed: int = 0,
    ) -> None:
        if not 0.0 < heat_decay <= 1.0:
            raise ValueError("heat_decay must be in (0, 1]")
        if recurrence_window < 1 or pattern_windows < 1:
            raise ValueError("windows must be >= 1")
        if not 0.0 <= sibling_probability <= 1.0:
            raise ValueError("sibling_probability must be a probability")
        self.tree = tree
        self.heat_decay = heat_decay
        self.recurrence_window = recurrence_window
        self.pattern_windows = pattern_windows
        self.sibling_probability = sibling_probability
        self._rng = substream(seed, "access-stats")

        n = tree.n_dirs
        self.heat: list[float] = [0.0] * n
        # Current-epoch counters (reset every epoch).
        self._visits: list[int] = [0] * n
        self._recurrent: list[int] = [0] * n
        self._first: list[int] = [0] * n
        self._created: list[int] = [0] * n
        # Rolling window of the last `pattern_windows` epochs, plus running sums.
        self._win: deque[tuple[np.ndarray, ...]] = deque()
        self.win_visits = np.zeros(n)
        self.win_recurrent = np.zeros(n)
        self.win_first = np.zeros(n)
        self.win_ls = np.zeros(n)
        self.win_created = np.zeros(n)
        self._dir_last_access: list[int] = [NEVER_ACCESSED] * n
        # Sparse bookkeeping: dirs with any counter bump this epoch, and
        # dirs whose heat is nonzero (monotone — decay never reaches 0.0).
        # Epoch-boundary aggregation fills zero arrays from these sets, so
        # the cost scales with the touched population, not the namespace.
        self._touched_epoch: set[int] = set()
        self._heat_live: set[int] = set()
        self.epoch = 0
        # Cluster-wide op-mix sums of the epoch just closed (filled by
        # ``end_epoch``); feeds the workload characterization stream.
        self.last_epoch_mix: dict[str, int] = {
            "visits": 0, "recurrent": 0, "first": 0, "created": 0}

    # ------------------------------------------------------------- recording
    def _grow(self) -> None:
        n = self.tree.n_dirs
        grow = n - len(self.heat)
        if grow <= 0:
            return
        self.heat.extend([0.0] * grow)
        self._visits.extend([0] * grow)
        self._recurrent.extend([0] * grow)
        self._first.extend([0] * grow)
        self._created.extend([0] * grow)
        self._dir_last_access.extend([NEVER_ACCESSED] * grow)
        for name in ("win_visits", "win_recurrent", "win_first", "win_ls", "win_created"):
            arr = getattr(self, name)
            setattr(self, name, np.concatenate([arr, np.zeros(grow)]))

    def record_file_access(self, dir_id: int, file_idx: int, *, created: bool = False) -> None:
        """A metadata op touched file ``file_idx`` of ``dir_id``.

        ``created`` marks a freshly created inode: it counts as a first
        visit (the inode was unvisited until this instant) and feeds the
        created-in-window tally so that create streams keep a high spatial
        inclination (beta) even though they leave no unvisited stock behind.
        """
        if dir_id >= len(self.heat):
            self._grow()
        self._touched_epoch.add(dir_id)
        prev = self.tree.touch_file(dir_id, file_idx, self.epoch)
        self.heat[dir_id] += 1.0
        self._visits[dir_id] += 1
        # "Visited" is a sliding notion: each inode carries a boolean queue
        # of the last n epochs (paper §4.1), so an inode untouched for
        # longer than the recurrence window counts as unvisited again.
        if prev == NEVER_ACCESSED or self.epoch - prev > self.recurrence_window:
            self._first[dir_id] += 1
            if created:
                self._created[dir_id] += 1
        else:
            self._recurrent[dir_id] += 1

    def record_dir_access(self, dir_id: int) -> None:
        """A metadata op touched the directory itself (readdir, mkdir...)."""
        if dir_id >= len(self.heat):
            self._grow()
        self._touched_epoch.add(dir_id)
        self.heat[dir_id] += 1.0
        self._visits[dir_id] += 1
        prev = self._dir_last_access[dir_id]
        if prev != NEVER_ACCESSED and self.epoch - prev <= self.recurrence_window:
            self._recurrent[dir_id] += 1
        self._dir_last_access[dir_id] = self.epoch

    # ------------------------------------------------------------ batched path
    # The columnar engine records whole same-directory op runs at once.
    # Each method is op-for-op equivalent to the scalar calls it replaces:
    # integer tallies are commutative, and heat accumulates by repeated
    # ``+= 1.0`` (never ``+= n`` — adding an integer to an arbitrary float
    # in one step can round differently than n unit steps, and heat feeds
    # golden-traced decisions).

    def _bump_heat(self, dir_id: int, count: int) -> None:
        h = self.heat[dir_id]
        for _ in range(count):
            h += 1.0
        self.heat[dir_id] = h

    def record_create_batch(self, dir_id: int, first_idx: int, count: int) -> None:
        """``count`` files created (and first-touched) in ``dir_id``.

        The caller has already grown the tree via ``add_files``; indices
        ``first_idx .. first_idx+count-1`` are fresh, so every access is a
        first visit and a created-in-window tally.
        """
        if count <= 0:
            return
        if dir_id >= len(self.heat):
            self._grow()
        self._touched_epoch.add(dir_id)
        self.tree.touch_file_range(dir_id, first_idx, count, self.epoch)
        self._bump_heat(dir_id, count)
        self._visits[dir_id] += count
        self._first[dir_id] += count
        self._created[dir_id] += count

    def record_file_batch(self, dir_id: int, idxs: np.ndarray) -> None:
        """A run of metadata ops touched existing files ``idxs`` of ``dir_id``.

        Duplicates within the run are recurrent visits by construction
        (their first occurrence stamped the current epoch); each unique
        index classifies by its pre-run last-access epoch, exactly as the
        scalar per-op sequence would.
        """
        if idxs.size == 0:
            return
        if dir_id >= len(self.heat):
            self._grow()
        self._touched_epoch.add(dir_id)
        unique = np.unique(idxs)
        prevs = self.tree.touch_file_batch(dir_id, unique, self.epoch)
        n_first = int(((prevs == NEVER_ACCESSED)
                       | (self.epoch - prevs > self.recurrence_window)).sum())
        n = int(idxs.size)
        self._bump_heat(dir_id, n)
        self._visits[dir_id] += n
        self._first[dir_id] += n_first
        self._recurrent[dir_id] += n - n_first

    def record_dir_batch(self, dir_id: int, count: int) -> None:
        """A run of ``count`` directory-level ops on ``dir_id``.

        The first op classifies against the stored last access; the rest
        see the epoch just stamped and are recurrent.
        """
        if count <= 0:
            return
        if dir_id >= len(self.heat):
            self._grow()
        self._touched_epoch.add(dir_id)
        self._bump_heat(dir_id, count)
        self._visits[dir_id] += count
        prev = self._dir_last_access[dir_id]
        recurrent = count - 1
        if prev != NEVER_ACCESSED and self.epoch - prev <= self.recurrence_window:
            recurrent += 1
        self._recurrent[dir_id] += recurrent
        self._dir_last_access[dir_id] = self.epoch

    # ------------------------------------------------------------- epoch roll
    def end_epoch(self) -> None:
        """Close the current cutting window and roll the pattern stats."""
        self._grow()
        n = self.tree.n_dirs
        # Only touched dirs carry nonzero counters: fill zero arrays from
        # the touched set instead of converting the full per-dir lists.
        touched = sorted(self._touched_epoch)
        visits = np.zeros(n)
        recurrent = np.zeros(n)
        first = np.zeros(n)
        created = np.zeros(n)
        if touched:
            idx = np.array(touched, dtype=np.intp)
            visits[idx] = [self._visits[d] for d in touched]
            recurrent[idx] = [self._recurrent[d] for d in touched]
            first[idx] = [self._first[d] for d in touched]
            created[idx] = [self._created[d] for d in touched]
        self.last_epoch_mix = {
            "visits": int(visits.sum()),
            "recurrent": int(recurrent.sum()),
            "first": int(first.sum()),
            "created": int(created.sum()),
        }

        # Spatial correlation: a directory whose files are being visited for
        # the first time predicts first visits on a sibling too (paper §3.3:
        # "select one of its sibling subtrees with a certain probability and
        # increment its l_s").
        ls = first.copy()
        if self.sibling_probability > 0.0:
            active = np.nonzero(first)[0]
            stock = self.unvisited_array() if active.size else None
            for d in active:
                if self._rng.random() >= self.sibling_probability:
                    continue
                parent = self.tree.parent[d]
                if parent < 0:
                    continue
                siblings = self.tree.children[parent]
                if len(siblings) < 2:
                    continue
                # Spatial locality says the scan will reach a sibling that
                # still holds unvisited stock — prefer those.
                unvisited = [s for s in siblings if s != d and stock[s] > 0]
                pool = unvisited if unvisited else [s for s in siblings if s != d]
                if not pool:
                    continue
                pick = int(pool[self._rng.integers(len(pool))])
                # A sibling cannot receive more first visits than it has
                # unvisited stock: cap the bonus so small directories are
                # not predicted to carry a huge folder's load.
                ls[pick] += min(first[d], stock[pick])

        self._win.append((visits, recurrent, first, ls, created))
        self.win_visits += visits
        self.win_recurrent += recurrent
        self.win_first += first
        self.win_ls += ls
        self.win_created += created
        if len(self._win) > self.pattern_windows:
            old = self._win.popleft()
            # A grow() may have enlarged the running sums since `old` was
            # recorded; subtract over the old prefix only.
            for arr, name in zip(old, ("win_visits", "win_recurrent", "win_first",
                                       "win_ls", "win_created")):
                getattr(self, name)[: arr.size] -= arr

        for d in touched:
            self._visits[d] = 0
            self._recurrent[d] = 0
            self._first[d] = 0
            self._created[d] = 0
        # Decay only live heat entries; exact zeros stay exactly zero
        # either way, and a decayed positive value never reaches 0.0, so
        # the live set is monotone.
        self._heat_live.update(self._touched_epoch)
        self._touched_epoch.clear()
        heat = self.heat
        decay = self.heat_decay
        for d in self._heat_live:
            heat[d] = heat[d] * decay
        self.epoch += 1

    # -------------------------------------------------------------- snapshots
    def live_heat(self) -> tuple[list[float], int]:
        """Nonzero heat values (dir-id order) plus the total dir count.

        The sparse view the workload profiler wants: Gini / entropy /
        top-k over the heat distribution need the nonzero values and the
        population size, never a dense array. Iterates the live set in
        sorted order so downstream math is deterministic.
        """
        heat = self.heat
        values = [heat[d] for d in sorted(self._heat_live | self._touched_epoch)
                  if d < len(heat) and heat[d] > 0.0]
        return values, self.tree.n_dirs

    def heat_array(self) -> np.ndarray:
        """Decayed heat per directory (accesses add to it immediately)."""
        self._grow()
        heat = self.heat
        out = np.zeros(len(heat))
        for d in self._heat_live:
            out[d] = heat[d]
        for d in self._touched_epoch:
            out[d] = heat[d]
        return out

    def unvisited_array(self) -> np.ndarray:
        """Files per directory NOT accessed within the recurrence window.

        This is the sliding "unvisited stock" behind beta: a directory
        scanned long ago regains unvisited stock as its inodes' boolean
        queues drain, making it a spatial-locality candidate again.
        """
        tree = self.tree
        cutoff = self.epoch - self.recurrence_window
        # Never-touched directories contribute their full file count; for
        # touched directories the tree's incremental epoch histograms give
        # the recently-accessed tally in O(window) per dir, instead of
        # rescanning every file's last-access stamp each epoch.
        out = tree.n_files_array()
        for d, recent in tree.recently_accessed(cutoff):
            out[d] -= recent
        return out

    def pattern_arrays(self) -> dict[str, np.ndarray]:
        """Window sums for mIndex computation (copies, per-dir)."""
        self._grow()
        return {
            "visits": self.win_visits.copy(),
            "recurrent": self.win_recurrent.copy(),
            "first": self.win_first.copy(),
            "ls": self.win_ls.copy(),
            "created": self.win_created.copy(),
            "unvisited": self.unvisited_array(),
        }
