"""MDtest create workload (paper Table 1, "MD").

The standard write-only metadata stress: each client continuously creates
empty files in its own private directory. 100% metadata operations, no data
path. Private directories grow without bound, which is what exercises
dirfrag splitting — a single giant directory can only be balanced by
exporting fragments of it.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.namespace.builder import BuiltNamespace, build_private_dirs
from repro.namespace.tree import NamespaceTree
from repro.workloads.base import OP_CREATE, Op, RepeatOps, Workload

__all__ = ["MdtestWorkload"]


class MdtestWorkload(Workload):
    name = "mdtest"
    paper_meta_ratio = 1.0

    def __init__(self, n_clients: int, *, creates_per_client: int = 5000,
                 jitter: float = 0.05,
                 client_rate: float | None = None) -> None:
        super().__init__(n_clients, jitter=jitter, client_rate=client_rate)
        if creates_per_client <= 0:
            raise ValueError("need at least one create")
        self.creates_per_client = creates_per_client

    def build_namespace(self, tree: NamespaceTree, seed: int) -> BuiltNamespace:
        # Directories start empty: MDtest operates on fresh directories.
        return build_private_dirs(self.n_clients, 0, tree=tree, prefix="md")

    def client_ops(self, built: BuiltNamespace, client_index: int, seed: int) -> Iterator[Op]:
        d = built.dirs[client_index]
        # A structured stream, not a generator: iterating is identical,
        # but the columnar engine's tick-level fast path can skip whole
        # create runs without materializing each op tuple.
        return RepeatOps((OP_CREATE, d, -1, 0), self.creates_per_client)
