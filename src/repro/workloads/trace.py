"""Trace recording, persistence and replay.

Three capabilities a balancer-evaluation repo needs around traces:

- **record** — capture the op stream of any workload (or of a live
  simulation) as a flat, numpy-backed :class:`Trace`;
- **persist** — save/load traces as ``.npz`` (compact) so expensive
  generators run once;
- **replay** — wrap a :class:`Trace` as a :class:`TraceWorkload` whose
  clients re-issue the recorded ops in order (the paper's Web experiment
  replays an Apache access log this way).

Also ships a tiny Apache *combined log format* reader/writer pair so a real
access log can be converted into a trace against a built namespace (paths
are mapped onto ``(dir, file)`` pairs by stable hashing).
"""

from __future__ import annotations

import io
import re
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.namespace.builder import BuiltNamespace
from repro.namespace.tree import NamespaceTree
from repro.util.rng import derive_seed
from repro.workloads.base import OP_OPEN, Op, Workload

__all__ = ["Trace", "TraceWorkload", "record_workload", "parse_apache_log",
           "format_apache_log"]


@dataclass
class Trace:
    """A flat op trace: parallel arrays (kind, dir, file index, bytes)."""

    kinds: np.ndarray
    dirs: np.ndarray
    files: np.ndarray
    nbytes: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.kinds)
        if not (len(self.dirs) == len(self.files) == len(self.nbytes) == n):
            raise ValueError("trace arrays must be the same length")

    def __len__(self) -> int:
        return int(len(self.kinds))

    def __iter__(self) -> Iterator[Op]:
        for k, d, f, b in zip(self.kinds, self.dirs, self.files, self.nbytes):
            yield (int(k), int(d), int(f), int(b))

    @classmethod
    def from_ops(cls, ops) -> Trace:
        rows = list(ops)
        if not rows:
            return cls(*(np.zeros(0, dtype=np.int64) for _ in range(4)))
        arr = np.asarray(rows, dtype=np.int64)
        return cls(arr[:, 0].copy(), arr[:, 1].copy(), arr[:, 2].copy(),
                   arr[:, 3].copy())

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> None:
        np.savez_compressed(path, kinds=self.kinds, dirs=self.dirs,
                            files=self.files, nbytes=self.nbytes)

    @classmethod
    def load(cls, path: str | Path) -> Trace:
        with np.load(path) as data:
            return cls(data["kinds"], data["dirs"], data["files"], data["nbytes"])

    # ------------------------------------------------------------- transforms
    def slice(self, start: int, stop: int | None = None) -> Trace:
        return Trace(self.kinds[start:stop], self.dirs[start:stop],
                     self.files[start:stop], self.nbytes[start:stop])

    def meta_ratio(self) -> float:
        total = len(self)
        if total == 0:
            return 0.0
        data = int((self.nbytes > 0).sum())
        return total / (total + data)


def record_workload(workload: Workload, client_index: int = 0, *,
                    seed: int = 0) -> tuple[Trace, NamespaceTree]:
    """Materialize a workload and capture one client's full op stream."""
    instance = workload.materialize(seed=seed)
    client = instance.clients[client_index]
    ops = []
    op = client.current
    while op is not None:
        ops.append(op)
        op = next(client._ops, None)
    return Trace.from_ops(ops), instance.tree


class TraceWorkload(Workload):
    """Replay a recorded trace: every client re-issues it in order.

    The trace must reference directories of the namespace built by
    ``build_namespace`` — typically the same tree the trace was recorded
    against, supplied via ``tree_factory``.
    """

    name = "trace"
    paper_meta_ratio = float("nan")

    def __init__(self, n_clients: int, trace: Trace, built: BuiltNamespace,
                 *, jitter: float = 0.1,
                 client_rate: float | None = None) -> None:
        super().__init__(n_clients, jitter=jitter, client_rate=client_rate)
        self.trace = trace
        self._built = built

    def build_namespace(self, tree: NamespaceTree, seed: int) -> BuiltNamespace:
        if tree is not self._built.tree:
            raise ValueError("TraceWorkload must run on the tree it was "
                             "recorded against; use materialize()")
        return self._built

    def materialize(self, seed: int = 0):
        from repro.workloads.base import WorkloadInstance

        clients = self.make_clients(self._built, seed)
        return WorkloadInstance(self.name, self._built.tree, clients, self._built)

    def client_ops(self, built: BuiltNamespace, client_index: int,
                   seed: int) -> Iterator[Op]:
        return iter(self.trace)


# ------------------------------------------------------------- apache logs
_APACHE_RE = re.compile(
    r'^(?P<host>\S+) \S+ \S+ \[(?P<ts>[^\]]+)\] '
    r'"(?P<method>\S+) (?P<path>\S+)[^"]*" (?P<status>\d{3}) (?P<size>\d+|-)'
)


def parse_apache_log(text: str | io.TextIOBase, built: BuiltNamespace,
                     *, default_bytes: int = 8192) -> Trace:
    """Convert an Apache *combined/common* access log into an open+read trace.

    Each request path is mapped onto the built namespace by stable hashing:
    the path picks a directory from ``built.dirs`` and a file index within
    it, so the same path always lands on the same inode. Non-2xx responses
    and non-GET methods are skipped (they don't hit the file data path).
    """
    if isinstance(text, str):
        lines: Iterator[str] = iter(text.splitlines())
    else:
        lines = iter(text)
    ops = []
    n_dirs = len(built.dirs)
    if n_dirs == 0:
        raise ValueError("namespace has no directories to map requests onto")
    for line in lines:
        m = _APACHE_RE.match(line.strip())
        if m is None:
            continue
        if m.group("method").upper() != "GET":
            continue
        if not m.group("status").startswith("2"):
            continue
        path = m.group("path")
        k = derive_seed(0, "apache", path)
        di = k % n_dirs
        d = built.dirs[di]
        n_files = max(1, built.files[di])
        idx = (k >> 20) % n_files
        size = m.group("size")
        nbytes = int(size) if size.isdigit() else default_bytes
        ops.append((OP_OPEN, d, idx, max(1, nbytes)))
    return Trace.from_ops(ops)


def format_apache_log(trace: Trace, built: BuiltNamespace, *,
                      host: str = "10.0.0.1") -> str:
    """Render a trace back into Apache common log format (for round-trips
    and for exporting synthetic traces to external tooling)."""
    tree = built.tree
    out = []
    for i, (kind, d, idx, nbytes) in enumerate(trace):
        path = f"{tree.path(d)}/file{idx:06d}"
        out.append(
            f'{host} - - [01/Jan/2014:00:{(i // 60) % 60:02d}:{i % 60:02d} +0000] '
            f'"GET {path} HTTP/1.1" 200 {max(1, int(nbytes))}'
        )
    return "\n".join(out)
