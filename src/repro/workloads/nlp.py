"""NLP training workload (paper Table 1, "NLP").

Models THUCTC-style text-classifier training: each client consumes the
whole corpus — 14 top-level folders holding hundreds of thousands of tiny
news files with heavily skewed folder sizes. Like CNN it is a scan (files
are read once per epoch of training data ingestion), but its namespace
fan-out is extremely coarse: balancing it requires splitting the few huge
folders into dirfrags rather than redistributing whole directories.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.namespace.builder import BuiltNamespace, build_corpus
from repro.namespace.tree import NamespaceTree
from repro.workloads.base import OP_OPEN, OP_READDIR, OP_STAT, Op, Workload

__all__ = ["NlpWorkload"]


class NlpWorkload(Workload):
    name = "nlp"
    paper_meta_ratio = 0.928

    def __init__(self, n_clients: int, *, n_folders: int = 14, total_files: int = 6000,
                 file_bytes: int = 2_800, skew: float = 1.4, jitter: float = 0.15,
                 client_rate: float | None = None) -> None:
        super().__init__(n_clients, jitter=jitter, client_rate=client_rate)
        if total_files < n_folders:
            raise ValueError("need at least one file per folder")
        self.n_folders = n_folders
        self.total_files = total_files
        self.file_bytes = file_bytes
        self.skew = skew

    def build_namespace(self, tree: NamespaceTree, seed: int) -> BuiltNamespace:
        return build_corpus(self.n_folders, self.total_files, skew=self.skew,
                            seed=seed, tree=tree, prefix="nlp")

    def client_ops(self, built: BuiltNamespace, client_index: int, seed: int) -> Iterator[Op]:
        def gen() -> Iterator[Op]:
            # Enumerate the corpus: list each category folder, then for
            # every tiny document: lookup + getattr + open/read + cap
            # release. Four metadata ops per one data read keeps the stream
            # metadata-dominated (paper measures 92.8%).
            for d, n_files in zip(built.dirs, built.files):
                yield (OP_READDIR, d, -1, 0)
                for idx in range(n_files):
                    yield (OP_STAT, d, idx, 0)
                    yield (OP_STAT, d, idx, 0)
                    yield (OP_OPEN, d, idx, self.file_bytes)
                    yield (OP_STAT, d, idx, 0)

        return gen()
