"""Web trace replay workload (paper Table 1, "Web").

The paper replays an Apache access log from a university department web
server: a fixed catalogue of files receiving requests with strong,
persistent popularity skew — hot pages stay hot for long stretches, with
slow popularity churn between periods. Every client replays the same
request sequence in order.

Because the popular files are *re-visited*, decayed heat is an accurate
predictor of future load here, which is why CephFS-Vanilla does well on
this workload (paper Fig. 6d) — reproducing that contrast is the point of
this generator.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.namespace.builder import BuiltNamespace, build_web
from repro.namespace.tree import NamespaceTree
from repro.util.rng import substream
from repro.util.zipf import ZipfSampler
from repro.workloads.base import OP_OPEN, OP_STAT, Op, Workload, zipf_like_sizes

__all__ = ["WebWorkload"]


class WebWorkload(Workload):
    name = "web"
    paper_meta_ratio = 0.572

    def __init__(self, n_clients: int, *, n_top: int = 20, n_sub_per_top: int = 8,
                 total_files: int = 4000, n_requests: int = 5000,
                 n_periods: int = 4, zipf_exponent: float = 1.0,
                 mean_file_bytes: float = 20_000.0, jitter: float = 0.1,
                 client_rate: float | None = None) -> None:
        super().__init__(n_clients, jitter=jitter, client_rate=client_rate)
        if n_requests <= 0 or n_periods <= 0:
            raise ValueError("need requests and at least one period")
        self.n_top = n_top
        self.n_sub_per_top = n_sub_per_top
        self.total_files = total_files
        self.n_requests = n_requests
        self.n_periods = n_periods
        self.zipf_exponent = zipf_exponent
        self.mean_file_bytes = mean_file_bytes
        self._trace: list[tuple[int, int, int]] | None = None

    def build_namespace(self, tree: NamespaceTree, seed: int) -> BuiltNamespace:
        built = build_web(self.n_top, self.n_sub_per_top, self.total_files,
                          seed=seed, tree=tree, prefix="web")
        self._trace = self._generate_trace(built, seed)
        return built

    def _generate_trace(self, built: BuiltNamespace, seed: int) -> list[tuple[int, int, int]]:
        """Shared request log: (dir_id, file_idx, bytes) per request.

        Web traffic is skewed at the *directory* level (a few site sections
        take most hits) and at the file level within a section. Both skews
        are Zipfian; between periods the hot set is re-drawn so popularity
        churns slowly. The directory-level skew is what makes static
        hashing's request distribution uneven (paper Fig. 14b) even though
        its inode placement is even.
        """
        rng = substream(seed, "workload", "web", "trace")
        n_dirs = len(built.dirs)
        sizes = [zipf_like_sizes(rng, n, self.mean_file_bytes) for n in built.files]
        per_period = self.n_requests // self.n_periods
        trace: list[tuple[int, int, int]] = []
        for period in range(self.n_periods):
            dir_sampler = ZipfSampler(n_dirs, self.zipf_exponent,
                                      rng=substream(seed, "web", "dirs", period))
            file_samplers: dict[int, ZipfSampler] = {}
            picks = np.asarray(dir_sampler.sample(per_period))
            for p in picks:
                k = int(p)
                d, n_files = built.dirs[k], built.files[k]
                sampler = file_samplers.get(k)
                if sampler is None:
                    sampler = ZipfSampler(n_files, 0.8,
                                          rng=substream(seed, "web", "files",
                                                        period, k))
                    file_samplers[k] = sampler
                i = int(sampler.sample())
                trace.append((d, i, int(sizes[k][i])))
        return trace

    def client_ops(self, built: BuiltNamespace, client_index: int, seed: int) -> Iterator[Op]:
        if self._trace is None:  # pragma: no cover - materialize() orders calls
            raise RuntimeError("build_namespace must run before client_ops")
        trace = self._trace

        def gen() -> Iterator[Op]:
            # "each client gets files in order": replay the shared log.
            # Every request opens+reads; every third also revalidates with
            # a stat (conditional GET paths), landing the metadata ratio at
            # the paper's measured 57.2%.
            for k, (d, i, nbytes) in enumerate(trace):
                if k % 3 == 0:
                    yield (OP_STAT, d, i, 0)
                yield (OP_OPEN, d, i, nbytes)

        return gen()
