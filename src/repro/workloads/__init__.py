"""Workload generators reproducing the paper's Table 1.

Five workloads (CNN image pre-processing, NLP training, Web trace replay,
Filebench Zipfian read, MDtest create) plus the four-group mixture of §4.4.
Each produces a namespace shape and a set of closed-loop clients emitting
deterministic op streams from a seed.
"""

from repro.workloads.base import (
    Client,
    Op,
    OP_CREATE,
    OP_OPEN,
    OP_READDIR,
    OP_STAT,
    Workload,
    WorkloadInstance,
)
from repro.workloads.cnn import CnnWorkload
from repro.workloads.nlp import NlpWorkload
from repro.workloads.web import WebWorkload
from repro.workloads.zipf import ZipfWorkload
from repro.workloads.mdtest import MdtestWorkload
from repro.workloads.mixed import MixedWorkload

WORKLOADS = {
    "cnn": CnnWorkload,
    "nlp": NlpWorkload,
    "web": WebWorkload,
    "zipf": ZipfWorkload,
    "mdtest": MdtestWorkload,
    "mixed": MixedWorkload,
}

__all__ = [
    "Client",
    "Op",
    "OP_CREATE",
    "OP_OPEN",
    "OP_READDIR",
    "OP_STAT",
    "Workload",
    "WorkloadInstance",
    "CnnWorkload",
    "NlpWorkload",
    "WebWorkload",
    "ZipfWorkload",
    "MdtestWorkload",
    "MixedWorkload",
    "WORKLOADS",
]
