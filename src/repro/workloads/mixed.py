"""The mixed workload of paper §4.4.

Clients are partitioned into four groups, each running one of the single
workloads (CNN, NLP, Web, Zipf — the four used in the paper's end-to-end
figures; MDtest is excluded there because it exhausts MDS memory). All
groups share one namespace tree, each under its own top-level directory.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.namespace.builder import BuiltNamespace
from repro.namespace.tree import NamespaceTree
from repro.workloads.base import Client, Op, Workload, WorkloadInstance

__all__ = ["MixedWorkload"]


class MixedWorkload(Workload):
    name = "mixed"
    paper_meta_ratio = float("nan")

    def __init__(self, parts: list[Workload]) -> None:
        if not parts:
            raise ValueError("mixed workload needs at least one part")
        super().__init__(sum(p.n_clients for p in parts))
        self.parts = parts

    # The part workloads own namespace building and op generation; the
    # Workload hooks below are not used directly.
    def build_namespace(self, tree: NamespaceTree, seed: int) -> BuiltNamespace:
        raise NotImplementedError("use materialize() on MixedWorkload")

    def client_ops(self, built: BuiltNamespace, client_index: int, seed: int) -> Iterator[Op]:
        raise NotImplementedError("use materialize() on MixedWorkload")

    def materialize(self, seed: int = 0) -> WorkloadInstance:
        tree = NamespaceTree()
        clients: list[Client] = []
        infos: dict[str, dict] = {}
        next_cid = 0
        for part in self.parts:
            built = part.build_namespace(tree, seed)
            part_clients = part.make_clients(built, seed, first_cid=next_cid)
            next_cid += len(part_clients)
            clients.extend(part_clients)
            infos[part.name] = {
                "n_clients": part.n_clients,
                "dirs": list(built.dirs),
                "root": built.root,
            }
        return WorkloadInstance(self.name, tree, clients, None, {"parts": infos})
