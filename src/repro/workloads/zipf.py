"""Filebench Zipfian read workload (paper Table 1, "Zipf").

Each client owns a private, non-shared directory of files and reads them at
random with a Zipfian distribution — 80% of requests touch 20% of the
files. Strong temporal locality, so heat is informative; the challenge this
workload poses is the *trigger and amount* side: vanilla's aggressive,
lag-oblivious migration decisions produce the ping-pong effect here (paper
§2.2, Fig. 3a/4a).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.namespace.builder import BuiltNamespace, build_private_dirs
from repro.namespace.tree import NamespaceTree
from repro.util.rng import substream
from repro.util.zipf import ZipfSampler
from repro.workloads.base import OP_OPEN, Op, Workload

__all__ = ["ZipfWorkload"]


class ZipfWorkload(Workload):
    name = "zipf"
    paper_meta_ratio = 0.50

    def __init__(self, n_clients: int, *, files_per_dir: int = 1000,
                 reads_per_client: int = 4000, zipf_exponent: float = 0.95,
                 file_bytes: int = 16_384, jitter: float = 0.05,
                 client_rate: float | None = None) -> None:
        super().__init__(n_clients, jitter=jitter, client_rate=client_rate)
        if files_per_dir <= 0 or reads_per_client <= 0:
            raise ValueError("need files and reads")
        self.files_per_dir = files_per_dir
        self.reads_per_client = reads_per_client
        self.zipf_exponent = zipf_exponent
        self.file_bytes = file_bytes

    def build_namespace(self, tree: NamespaceTree, seed: int) -> BuiltNamespace:
        return build_private_dirs(self.n_clients, self.files_per_dir, tree=tree,
                                  prefix="zipf")

    def client_ops(self, built: BuiltNamespace, client_index: int, seed: int) -> Iterator[Op]:
        d = built.dirs[client_index]
        sampler = ZipfSampler(
            self.files_per_dir,
            self.zipf_exponent,
            rng=substream(seed, "workload", "zipf", client_index),
        )
        picks = sampler.sample(self.reads_per_client)

        def gen() -> Iterator[Op]:
            # One open+read per request: 50% metadata ops (paper Table 1).
            for idx in picks:
                yield (OP_OPEN, d, int(idx), self.file_bytes)

        return gen()
