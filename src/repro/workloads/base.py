"""Client and workload abstractions.

Ops are plain tuples ``(kind, dir_id, file_idx, data_bytes)`` — this is the
simulator's hot path, so no per-op object overhead. ``data_bytes`` is only
exercised when the simulator runs with the data path enabled.

Clients are *closed-loop*: one outstanding op, next op issued when the
previous completes. Each client carries a stall probability (think-time
jitter): real clients drift apart because of OS scheduling and data-path
variance, and that drift is what makes balancing scan workloads profitable
— a lockstep scan would always hammer a single directory at a time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from dataclasses import dataclass, field
from itertools import islice

import numpy as np

from repro.cluster.router import ClientRoutingState
from repro.namespace.builder import BuiltNamespace
from repro.namespace.tree import NamespaceTree
from repro.util.rng import substream

__all__ = [
    "Op",
    "OP_STAT",
    "OP_CREATE",
    "OP_READDIR",
    "OP_OPEN",
    "Client",
    "RepeatOps",
    "Workload",
    "WorkloadInstance",
]

Op = tuple[int, int, int, int]  # (kind, dir_id, file_idx, data_bytes)

OP_STAT = 0  #: metadata read on a file (lookup/stat/getattr)
OP_CREATE = 1  #: create a new file in a directory
OP_READDIR = 2  #: directory-level metadata op
OP_OPEN = 3  #: open a file; data_bytes > 0 adds a data-path read/write


class RepeatOps:
    """An op stream of one tuple repeated ``left`` times.

    Iterates exactly like the equivalent generator, but exposes its
    structure: the columnar engine's tick-level fast path can skip
    ``count`` ops by decrementing :attr:`left` instead of pulling them
    one ``next()`` at a time (see :meth:`Client.advance_bulk`).
    """

    __slots__ = ("op", "left")

    def __init__(self, op: Op, count: int) -> None:
        self.op = op
        self.left = count

    def __iter__(self) -> "RepeatOps":
        return self

    def __next__(self) -> Op:
        if self.left <= 0:
            raise StopIteration
        self.left -= 1
        return self.op


class Client:
    """One closed-loop workload client."""

    __slots__ = (
        "cid",
        "group",
        "stall_prob",
        "rate",
        "routing",
        "ready_at",
        "done_at",
        "ops_done",
        "meta_ops",
        "data_ops",
        "data_bytes",
        "_ops",
        "current",
        "_rng",
        "_draws",
        "_draw_pos",
        "_pending",
        "_buf",
        "_buf_pos",
        "_exhausted",
        "_draw_abs",
        "_stalls",
        "_scanned_abs",
        "rate_tick",
        "rate_served",
    )

    def __init__(self, cid: int, ops: Iterator[Op], *, stall_prob: float = 0.0,
                 rate: float | None = None, seed: int = 0, group: str = "") -> None:
        if not 0.0 <= stall_prob < 1.0:
            raise ValueError("stall_prob must be in [0, 1)")
        if rate is not None and rate <= 0:
            raise ValueError("client rate must be positive")
        self.cid = cid
        self.group = group
        self.stall_prob = stall_prob
        #: max ops this client issues per tick (None = as fast as served).
        #: Finite rates model clients whose own CPU / network bounds demand
        #: — needed for benign-imbalance scenarios (paper Fig. 12b).
        self.rate = rate
        self.routing = ClientRoutingState()
        self.ready_at = 0
        self.done_at: int | None = None
        self.ops_done = 0
        self.meta_ops = 0
        self.data_ops = 0
        self.data_bytes = 0
        self._ops = ops
        self._rng = substream(seed, "client", cid)
        # Stall decisions come from pre-drawn batches: advance() runs once
        # per op, and one numpy scalar draw per op dominates its cost.
        # ``_pending`` holds blocks prefetched by batch lookahead; blocks
        # are always drawn as full 256-wide ``random(256)`` calls, so
        # prefetching changes *when* a block is drawn, never its values.
        self._draws = self._rng.random(256) if stall_prob > 0.0 else None
        self._draw_pos = 0
        self._pending: list[np.ndarray] = []
        # Stall lookahead over the draw stream, in absolute draw indices:
        # blocks are scanned for sub-threshold draws once each (one
        # ``nonzero`` per 256 draws) instead of re-sliced per run.
        self._draw_abs = 0
        self._stalls: list[int] = []
        self._scanned_abs = 0
        # Ops buffered ahead of ``current`` by the columnar engine; the
        # scalar path drains them before touching the generator again.
        self._buf: list[Op] = []
        self._buf_pos = 0
        self._exhausted = False
        self.current: Op | None = next(ops, None)
        self.rate_tick = -1
        self.rate_served = 0
        if self.current is None:
            self.done_at = 0

    @property
    def done(self) -> bool:
        return self.done_at is not None

    def advance(self, now: int) -> None:
        """Current op completed at tick ``now``; line up the next one."""
        self.ops_done += 1
        if self._buf_pos < len(self._buf):
            self.current = self._buf[self._buf_pos]
            self._buf_pos += 1
        else:
            if self._buf:
                self._buf = []
                self._buf_pos = 0
            self.current = next(self._ops, None)
        if self.current is None:
            self.done_at = now
            return
        if self._draws is not None:
            draw = self._draws[self._draw_pos]
            self._consume_draws(1)
            if draw < self.stall_prob:
                self.ready_at = now + 1

    # ---------------------------------------------------------- batched path
    # Column views for the engine: ops buffered ahead of the stream, stall
    # draws peekable in bulk. Every method is advance()-equivalent op for
    # op; the generator and the client RNG observe the same call sequences
    # either way (per-client substreams make early pulls value-identical).

    def buffered_ops(self, k: int) -> tuple[list[Op], int, int]:
        """Ensure ``k`` ops beyond ``current`` are buffered (or the stream
        is exhausted); returns ``(buffer, start, available)``.

        The engine scans ``buffer[start:start+available]``; ``available``
        is only smaller than ``k`` once the op stream has ended.
        """
        avail = len(self._buf) - self._buf_pos
        if avail < k and not self._exhausted:
            if self._buf_pos >= 256:
                del self._buf[: self._buf_pos]
                self._buf_pos = 0
            need = k - avail
            before = len(self._buf)
            self._buf.extend(islice(self._ops, need))
            got = len(self._buf) - before
            if got < need:
                self._exhausted = True
            avail += got
        return self._buf, self._buf_pos, avail

    def stall_scan(self, n: int) -> int:
        """Index of the first stalling draw among the next ``n``, or -1.

        Peeks without consuming; prefetches whole RNG blocks as needed.
        Each block is scanned for sub-threshold draws at most once (the
        hits live in :attr:`_stalls` as absolute draw indices), so
        repeated scans over the same stretch of the draw stream cost a
        queue peek, not a fresh array pass.
        """
        if self._draws is None or n <= 0:
            return -1
        abs_pos = self._draw_abs
        # Blocks are 256-aligned in absolute coordinates; the scalar path
        # consumes draws without scanning, so the scan cursor may lag the
        # consume cursor — never the current block's start.
        base = abs_pos - self._draw_pos
        if self._scanned_abs < base:
            self._scanned_abs = base
        st = self._stalls
        while st and st[0] < abs_pos:
            st.pop(0)
        target = abs_pos + n
        while not st and self._scanned_abs < target:
            self._scan_stall_block()
            while st and st[0] < abs_pos:
                st.pop(0)
        if st and st[0] < target:
            return st[0] - abs_pos
        return -1

    def _scan_stall_block(self) -> None:
        """Scan the next unscanned 256-draw block into :attr:`_stalls`."""
        k = self._scanned_abs >> 8
        kcur = (self._draw_abs - self._draw_pos) >> 8
        if k == kcur:
            block = self._draws
        else:
            i = k - kcur - 1
            while len(self._pending) <= i:
                self._pending.append(self._rng.random(256))
            block = self._pending[i]
        hits = np.nonzero(block < self.stall_prob)[0]  # type: ignore[operator]
        if hits.size:
            b = self._scanned_abs
            self._stalls.extend(b + int(h) for h in hits)
        self._scanned_abs += 256

    def _peek_draw(self, i: int) -> float:
        pos = self._draw_pos + i
        if pos < 256:
            return float(self._draws[pos])  # type: ignore[index]
        block_i, off = divmod(pos - 256, 256)
        while len(self._pending) <= block_i:
            self._pending.append(self._rng.random(256))
        return float(self._pending[block_i][off])

    def _consume_draws(self, n: int) -> None:
        self._draw_abs += n
        pos = self._draw_pos + n
        while pos >= 256:
            if self._pending:
                self._draws = self._pending.pop(0)
            else:
                self._draws = self._rng.random(256)
            pos -= 256
        self._draw_pos = pos

    def advance_run(self, count: int, now: int) -> None:
        """Complete ``count`` ops in one step — ``count`` advance() calls.

        Contract (the engine establishes it via :meth:`buffered_ops` and
        :meth:`stall_scan`): the ops exist, and no draw before the
        ``count``-th stalls. Only the last consumed draw may stall; a run
        that ends the stream consumes ``count - 1`` draws (the advance
        onto a ``None`` op never draws), exactly like the scalar path.
        """
        self.ops_done += count
        avail = len(self._buf) - self._buf_pos
        if count <= avail:
            self._buf_pos += count
            self.current = self._buf[self._buf_pos - 1]
            if self._draws is not None:
                last = self._peek_draw(count - 1)
                self._consume_draws(count)
                if last < self.stall_prob:
                    self.ready_at = now + 1
        else:
            # count == avail + 1 with the stream exhausted: final run.
            self._buf = []
            self._buf_pos = 0
            self.current = None
            self.done_at = now
            if self._draws is not None and count > 1:
                self._consume_draws(count - 1)

    def stream_left(self) -> int | None:
        """Ops left including ``current``, when knowable without pulling.

        Only bulk-skippable streams (:class:`RepeatOps`) can answer;
        generator-backed clients return None and take the buffered path.
        """
        ops = self._ops
        if type(ops) is not RepeatOps or self.current is None:
            return None
        return 1 + (len(self._buf) - self._buf_pos) + ops.left

    def advance_bulk(self, count: int, now: int) -> None:
        """Complete ``count`` ops in one step without buffering them.

        Same contract as :meth:`advance_run` — no draw before the
        ``count``-th stalls, and a run that ends the stream consumes
        ``count - 1`` draws — but the ops are skipped arithmetically, so
        the stream must be a :class:`RepeatOps` (every skipped op equals
        ``current``).
        """
        ops = self._ops
        assert type(ops) is RepeatOps
        left = self.stream_left()
        assert left is not None and count <= left
        self.ops_done += count
        if count < left:
            take = count
            buffered = len(self._buf) - self._buf_pos
            if buffered:
                used = buffered if buffered < take else take
                self._buf_pos += used
                if self._buf_pos >= len(self._buf):
                    self._buf = []
                    self._buf_pos = 0
                take -= used
            ops.left -= take
            self.current = ops.op
            if self._draws is not None:
                last = self._peek_draw(count - 1)
                self._consume_draws(count)
                if last < self.stall_prob:
                    self.ready_at = now + 1
        else:
            self._buf = []
            self._buf_pos = 0
            ops.left = 0
            self.current = None
            self.done_at = now
            if self._draws is not None and count > 1:
                self._consume_draws(count - 1)


@dataclass
class WorkloadInstance:
    """A materialized workload: shared namespace + ready-to-run clients."""

    name: str
    tree: NamespaceTree
    clients: list[Client]
    built: BuiltNamespace | None = None
    info: dict = field(default_factory=dict)


class Workload(ABC):
    """A workload recipe: namespace shape + per-client op streams.

    Subclasses implement :meth:`build_namespace` and :meth:`client_ops`.
    ``materialize`` wires them together; :class:`MixedWorkload` composes
    several recipes into one tree.
    """

    name: str = "abstract"
    #: fraction of metadata ops among all ops, from the paper's Table 1
    paper_meta_ratio: float = float("nan")

    def __init__(self, n_clients: int, *, jitter: float = 0.15,
                 client_rate: float | None = None) -> None:
        if n_clients <= 0:
            raise ValueError("need at least one client")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if client_rate is not None and client_rate <= 0:
            raise ValueError("client_rate must be positive")
        self.n_clients = n_clients
        self.jitter = jitter
        self.client_rate = client_rate

    @abstractmethod
    def build_namespace(self, tree: NamespaceTree, seed: int) -> BuiltNamespace:
        """Create this workload's directories/files inside ``tree``."""

    @abstractmethod
    def client_ops(self, built: BuiltNamespace, client_index: int, seed: int) -> Iterator[Op]:
        """The op stream for the ``client_index``-th client of this workload."""

    def make_clients(self, built: BuiltNamespace, seed: int, *,
                     first_cid: int = 0) -> list[Client]:
        rng = substream(seed, "workload", self.name, "jitter")
        stalls = rng.uniform(0.0, self.jitter, size=self.n_clients)
        return [
            Client(
                first_cid + i,
                self.client_ops(built, i, seed),
                stall_prob=float(stalls[i]),
                rate=self.client_rate,
                seed=seed,
                group=self.name,
            )
            for i in range(self.n_clients)
        ]

    def materialize(self, seed: int = 0) -> WorkloadInstance:
        tree = NamespaceTree()
        built = self.build_namespace(tree, seed)
        clients = self.make_clients(built, seed)
        return WorkloadInstance(self.name, tree, clients, built)


def interleave_passes(*passes: Iterator[Op]) -> Iterator[Op]:
    """Run op passes back to back (helper for scan-then-read workloads)."""
    for p in passes:
        yield from p


def zipf_like_sizes(rng: np.random.Generator, n: int, mean_bytes: float) -> np.ndarray:
    """Per-file sizes with a realistic long tail, mean ~= ``mean_bytes``."""
    raw = rng.lognormal(mean=0.0, sigma=1.0, size=n)
    return np.maximum(1, (raw / raw.mean() * mean_bytes)).astype(np.int64)
