"""Client and workload abstractions.

Ops are plain tuples ``(kind, dir_id, file_idx, data_bytes)`` — this is the
simulator's hot path, so no per-op object overhead. ``data_bytes`` is only
exercised when the simulator runs with the data path enabled.

Clients are *closed-loop*: one outstanding op, next op issued when the
previous completes. Each client carries a stall probability (think-time
jitter): real clients drift apart because of OS scheduling and data-path
variance, and that drift is what makes balancing scan workloads profitable
— a lockstep scan would always hammer a single directory at a time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.router import ClientRoutingState
from repro.namespace.builder import BuiltNamespace
from repro.namespace.tree import NamespaceTree
from repro.util.rng import substream

__all__ = [
    "Op",
    "OP_STAT",
    "OP_CREATE",
    "OP_READDIR",
    "OP_OPEN",
    "Client",
    "Workload",
    "WorkloadInstance",
]

Op = tuple[int, int, int, int]  # (kind, dir_id, file_idx, data_bytes)

OP_STAT = 0  #: metadata read on a file (lookup/stat/getattr)
OP_CREATE = 1  #: create a new file in a directory
OP_READDIR = 2  #: directory-level metadata op
OP_OPEN = 3  #: open a file; data_bytes > 0 adds a data-path read/write


class Client:
    """One closed-loop workload client."""

    __slots__ = (
        "cid",
        "group",
        "stall_prob",
        "rate",
        "routing",
        "ready_at",
        "done_at",
        "ops_done",
        "meta_ops",
        "data_ops",
        "data_bytes",
        "_ops",
        "current",
        "_rng",
        "_draws",
        "_draw_pos",
        "rate_tick",
        "rate_served",
    )

    def __init__(self, cid: int, ops: Iterator[Op], *, stall_prob: float = 0.0,
                 rate: float | None = None, seed: int = 0, group: str = "") -> None:
        if not 0.0 <= stall_prob < 1.0:
            raise ValueError("stall_prob must be in [0, 1)")
        if rate is not None and rate <= 0:
            raise ValueError("client rate must be positive")
        self.cid = cid
        self.group = group
        self.stall_prob = stall_prob
        #: max ops this client issues per tick (None = as fast as served).
        #: Finite rates model clients whose own CPU / network bounds demand
        #: — needed for benign-imbalance scenarios (paper Fig. 12b).
        self.rate = rate
        self.routing = ClientRoutingState()
        self.ready_at = 0
        self.done_at: int | None = None
        self.ops_done = 0
        self.meta_ops = 0
        self.data_ops = 0
        self.data_bytes = 0
        self._ops = ops
        self._rng = substream(seed, "client", cid)
        # Stall decisions come from pre-drawn batches: advance() runs once
        # per op, and one numpy scalar draw per op dominates its cost.
        self._draws = self._rng.random(256) if stall_prob > 0.0 else None
        self._draw_pos = 0
        self.current: Op | None = next(ops, None)
        self.rate_tick = -1
        self.rate_served = 0
        if self.current is None:
            self.done_at = 0

    @property
    def done(self) -> bool:
        return self.done_at is not None

    def advance(self, now: int) -> None:
        """Current op completed at tick ``now``; line up the next one."""
        self.ops_done += 1
        self.current = next(self._ops, None)
        if self.current is None:
            self.done_at = now
            return
        if self._draws is not None:
            if self._draw_pos >= 256:
                self._draws = self._rng.random(256)
                self._draw_pos = 0
            draw = self._draws[self._draw_pos]
            self._draw_pos += 1
            if draw < self.stall_prob:
                self.ready_at = now + 1


@dataclass
class WorkloadInstance:
    """A materialized workload: shared namespace + ready-to-run clients."""

    name: str
    tree: NamespaceTree
    clients: list[Client]
    built: BuiltNamespace | None = None
    info: dict = field(default_factory=dict)


class Workload(ABC):
    """A workload recipe: namespace shape + per-client op streams.

    Subclasses implement :meth:`build_namespace` and :meth:`client_ops`.
    ``materialize`` wires them together; :class:`MixedWorkload` composes
    several recipes into one tree.
    """

    name: str = "abstract"
    #: fraction of metadata ops among all ops, from the paper's Table 1
    paper_meta_ratio: float = float("nan")

    def __init__(self, n_clients: int, *, jitter: float = 0.15,
                 client_rate: float | None = None) -> None:
        if n_clients <= 0:
            raise ValueError("need at least one client")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if client_rate is not None and client_rate <= 0:
            raise ValueError("client_rate must be positive")
        self.n_clients = n_clients
        self.jitter = jitter
        self.client_rate = client_rate

    @abstractmethod
    def build_namespace(self, tree: NamespaceTree, seed: int) -> BuiltNamespace:
        """Create this workload's directories/files inside ``tree``."""

    @abstractmethod
    def client_ops(self, built: BuiltNamespace, client_index: int, seed: int) -> Iterator[Op]:
        """The op stream for the ``client_index``-th client of this workload."""

    def make_clients(self, built: BuiltNamespace, seed: int, *,
                     first_cid: int = 0) -> list[Client]:
        rng = substream(seed, "workload", self.name, "jitter")
        stalls = rng.uniform(0.0, self.jitter, size=self.n_clients)
        return [
            Client(
                first_cid + i,
                self.client_ops(built, i, seed),
                stall_prob=float(stalls[i]),
                rate=self.client_rate,
                seed=seed,
                group=self.name,
            )
            for i in range(self.n_clients)
        ]

    def materialize(self, seed: int = 0) -> WorkloadInstance:
        tree = NamespaceTree()
        built = self.build_namespace(tree, seed)
        clients = self.make_clients(built, seed)
        return WorkloadInstance(self.name, tree, clients, built)


def interleave_passes(*passes: Iterator[Op]) -> Iterator[Op]:
    """Run op passes back to back (helper for scan-then-read workloads)."""
    for p in passes:
        yield from p


def zipf_like_sizes(rng: np.random.Generator, n: int, mean_bytes: float) -> np.ndarray:
    """Per-file sizes with a realistic long tail, mean ~= ``mean_bytes``."""
    raw = rng.lognormal(mean=0.0, sigma=1.0, size=n)
    return np.maximum(1, (raw / raw.mean() * mean_bytes)).astype(np.int64)
