"""CNN image pre-processing workload (paper Table 1, "CNN").

Models the MXNet ``im2rec`` data-preparation phase: each client scans the
whole ImageNet-shaped dataset — first listing every class directory and
stat-ing each image to build the metadata list, then re-reading each image
to pack the record file. Files are visited once per pass and never again:
the canonical *scan* workload whose future load is anti-correlated with
heat, which is what defeats the vanilla balancer (paper §2.2, Fig. 3b/4b).

The real dataset is ILSVRC2012: 1.28M images over 1000 class dirs, mean
114.3 KB per image; defaults here keep the 1000-ish fan-out shape at a
laptop-friendly scale.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.namespace.builder import BuiltNamespace, build_fanout
from repro.namespace.tree import NamespaceTree
from repro.util.rng import substream
from repro.workloads.base import OP_CREATE, OP_OPEN, OP_READDIR, OP_STAT, Op, Workload

__all__ = ["CnnWorkload"]


class CnnWorkload(Workload):
    name = "cnn"
    paper_meta_ratio = 0.781

    def __init__(self, n_clients: int, *, n_dirs: int = 200, files_per_dir: int = 24,
                 image_bytes: int = 114_300, jitter: float = 0.15,
                 client_rate: float | None = None) -> None:
        super().__init__(n_clients, jitter=jitter, client_rate=client_rate)
        if n_dirs <= 0 or files_per_dir <= 0:
            raise ValueError("CNN needs a non-empty dataset")
        self.n_dirs = n_dirs
        self.files_per_dir = files_per_dir
        self.image_bytes = image_bytes

    def build_namespace(self, tree: NamespaceTree, seed: int) -> BuiltNamespace:
        built = build_fanout(self.n_dirs, self.files_per_dir, tree=tree, prefix="cnn")
        # Each client packs its shuffled dataset into one record file placed
        # in a per-client output directory.
        out_root = tree.add_dir(built.root, "cnn_records")
        built.info = {"out_root": out_root}  # type: ignore[attr-defined]
        return built

    def client_ops(self, built: BuiltNamespace, client_index: int, seed: int) -> Iterator[Op]:
        out_root = built.info["out_root"]  # type: ignore[attr-defined]
        rng = substream(seed, "workload", "cnn", "shuffle", client_index)

        def gen() -> Iterator[Op]:
            # Pass 1 — build the metadata list: readdir each class dir,
            # then lookup + getattr every image (metadata only), in
            # directory order. Two metadata ops per image plus one open in
            # pass 2 lands the ratio at ~75% (paper measures 78.1%).
            for d, n_files in zip(built.dirs, built.files):
                yield (OP_READDIR, d, -1, 0)
                for idx in range(n_files):
                    yield (OP_STAT, d, idx, 0)
                    yield (OP_STAT, d, idx, 0)
            # Pass 2 — pack the record file: im2rec reads the images in
            # SHUFFLED order (the record is consumed shuffled across
            # training epochs), open+read each (metadata + data).
            yield (OP_CREATE, out_root, -1, 0)
            flat = [(d, idx) for d, n_files in zip(built.dirs, built.files)
                    for idx in range(n_files)]
            order = rng.permutation(len(flat))
            for k in order:
                d, idx = flat[int(k)]
                yield (OP_OPEN, d, idx, self.image_bytes)

        return gen()
