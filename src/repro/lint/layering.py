"""Layering rules: the declarative layer DAG and import-cycle detection.

``layer-dag`` generalizes the original ``tests/test_architecture.py``
import scan: every ``repro.*`` import in every module must be permitted
by :data:`repro.lint.config.LAYER_DAG`. Imports at any nesting depth
count — a lazy import is no less a dependency.

``import-cycle`` walks only *module-scope* imports (function-level lazy
imports are the sanctioned way to break an import cycle, and
``TYPE_CHECKING`` blocks never execute) and reports every strongly
connected component of size > 1 across the scanned tree.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint.config import LAYER_DAG, ROOT_MODULES
from repro.lint.engine import ModuleInfo, Project, Rule, register
from repro.lint.findings import Finding

__all__ = ["LayerDagRule", "ImportCycleRule"]

_SIMULATOR = "cluster.simulator"


def _import_candidates(node: ast.stmt) -> Iterator[str]:
    """Most-specific dotted names one import statement depends on."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.name
    elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
        for alias in node.names:
            if alias.name == "*":
                yield node.module
            else:
                yield f"{node.module}.{alias.name}"


def _target_keys(candidate: str) -> tuple[str | None, str | None]:
    """``repro.cluster.stats.AccessStats`` -> (``cluster``, ``cluster.stats``)."""
    parts = candidate.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None, None
    layer = parts[1]
    modkey = layer if len(parts) == 2 else f"{parts[1]}.{parts[2]}"
    return layer, modkey


@register
class LayerDagRule(Rule):
    id = "layer-dag"
    description = ("every repro.* import must be allowed by the layer DAG "
                   "in repro.lint.config.LAYER_DAG")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if module.module is None or module.module in ROOT_MODULES:
            return
        src_layer = module.layer
        if src_layer is None:
            return
        if src_layer not in LAYER_DAG and src_layer not in ("cli", "__main__"):
            yield self.finding(
                module, module.tree,
                f"package {src_layer!r} has no entry in the layer DAG "
                f"(repro.lint.config.LAYER_DAG); declare its allowed "
                f"imports there")
            return
        allowed = LAYER_DAG.get(src_layer, frozenset())
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for candidate in _import_candidates(node):
                layer, modkey = _target_keys(candidate)
                if layer is None or layer == src_layer:
                    continue
                if layer in allowed or modkey in allowed:
                    continue
                if modkey == _SIMULATOR:
                    yield self.finding(
                        module, node,
                        f"imports {candidate}; policies must consume "
                        f"ClusterView and return EpochPlan instead of "
                        f"touching the simulator")
                else:
                    yield self.finding(
                        module, node,
                        f"layer {src_layer!r} may not import repro.{layer} "
                        f"(got {candidate}); allowed: "
                        f"{sorted(allowed) or 'nothing'}")


def _module_scope_imports(tree: ast.Module) -> Iterator[ast.stmt]:
    """Imports that execute at module import time (incl. try/if bodies),
    excluding ``if TYPE_CHECKING:`` blocks."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, ast.If):
            if not _is_type_checking(node.test):
                stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            for handler in node.handlers:
                stack.extend(handler.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


@register
class ImportCycleRule(Rule):
    id = "import-cycle"
    description = ("no module-scope import cycles anywhere under repro "
                   "(lazy function-level imports are the sanctioned break)")

    def check_project(self, project: Project) -> Iterable[Finding]:
        modules = project.by_module
        edges: dict[str, set[str]] = {name: set() for name in modules}
        edge_stmt: dict[tuple[str, str], ast.stmt] = {}
        for name, info in modules.items():
            for stmt in _module_scope_imports(info.tree):
                for candidate in _import_candidates(stmt):
                    target = _resolve(candidate, modules)
                    if target is not None and target != name:
                        edges[name].add(target)
                        edge_stmt.setdefault((name, target), stmt)
        for scc in _tarjan(edges):
            if len(scc) < 2:
                continue
            cycle = sorted(scc)
            for name in cycle:
                info = modules[name]
                others = [t for t in edges[name] if t in scc]
                stmt = edge_stmt.get((name, others[0])) if others else None
                yield self.finding(
                    info, stmt if stmt is not None else info.tree,
                    f"{name} is part of a module-scope import cycle: "
                    f"{' <-> '.join(cycle)}; break it with a lazy "
                    f"(function-level) import")


def _resolve(candidate: str, modules: dict[str, ModuleInfo]) -> str | None:
    """Longest dotted prefix of ``candidate`` that is a scanned module."""
    parts = candidate.split(".")
    for end in range(len(parts), 0, -1):
        name = ".".join(parts[:end])
        if name in modules:
            return name
    return None


def _tarjan(edges: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan SCC (recursion-free: the tree is arbitrary size)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in sorted(edges):
        if root in index:
            continue
        work: list[tuple[str, Iterator[str]]] = [(root, iter(sorted(edges[root])))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(edges[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs
