"""Trace-schema and metric-name rules: the audit schema, closed.

``trace-schema`` recovers the declared event set from ``obs/events.py``'s
AST (every ``TraceEvent`` subclass with an ``etype`` ClassVar, plus the
``EVENT_TYPES`` registry tuple) and closes it against the tree:

- every ``*.emit(SomeEvent(...))`` constructor must be a declared,
  registered event type — an event renamed in ``events.py`` but not at
  its emit sites is caught before a golden trace ever runs;
- every declared type must be registered in ``EVENT_TYPES`` (or replay
  silently fails on it);
- vice versa, every declared type must be emitted *somewhere*, checked
  only when the emitting layers (``cluster``/``balancers``) are part of
  the lint run so partial-path lints stay quiet.

``metric-name`` checks literal names handed to the metrics registry
(``.counter/.gauge/.histogram/.timer``) against the grammar published by
:data:`repro.obs.prom.METRIC_NAME_RE`, so every name survives OpenMetrics
sanitization 1:1.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.lint.engine import (
    ModuleInfo,
    Project,
    Rule,
    import_alias_map,
    register,
    resolve_call_name,
)
from repro.lint.findings import Finding
from repro.obs.prom import METRIC_NAME_RE, is_valid_metric_name

__all__ = ["TraceSchemaRule", "MetricNameRule"]

_EVENTS_SUFFIX = "obs/events.py"
_EVENTS_MODULE_PREFIX = "repro.obs.events."
#: the abstract base; declared but never (and never to be) emitted
_BASE_EVENT = "TraceEvent"
_REGISTRY_NAME = "EVENT_TYPES"
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram", "timer"})


def _declared_events(events: ModuleInfo) -> dict[str, tuple[str, ast.ClassDef]]:
    """Class name -> (etype tag, class node) for every declared event."""
    out: dict[str, tuple[str, ast.ClassDef]] = {}
    for node in events.tree.body:
        if not isinstance(node, ast.ClassDef) or node.name == _BASE_EVENT:
            continue
        for stmt in node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "etype"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)):
                out[node.name] = (stmt.value.value, node)
    return out


def _registered_names(events: ModuleInfo) -> tuple[set[str], ast.stmt | None]:
    """Class names listed in the ``EVENT_TYPES`` registry comprehension."""
    for node in events.tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == _REGISTRY_NAME
                   for t in targets):
            continue
        names = {n.id for n in ast.walk(value)
                 if isinstance(n, ast.Name) and n.id != _BASE_EVENT
                 and n.id[:1].isupper()}
        return names, node
    return set(), None


def _emitted_constructors(module: ModuleInfo) -> Iterable[tuple[str, ast.Call]]:
    """(constructor dotted name, ctor node) per ``*.emit(Ctor(...))`` call."""
    aliases = import_alias_map(module.tree)
    for node in ast.walk(module.tree):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit" and node.args
                and isinstance(node.args[0], ast.Call)):
            ctor = node.args[0]
            name = resolve_call_name(ctor.func, aliases)
            if name is not None:
                yield name, ctor


@register
class TraceSchemaRule(Rule):
    id = "trace-schema"
    description = ("every event type emitted to a TraceLog must be declared "
                   "and registered in obs/events.py, and vice versa")

    def check_project(self, project: Project) -> Iterable[Finding]:
        events = project.find_suffix(_EVENTS_SUFFIX)
        if events is None:
            return  # partial-path lint without the schema module
        declared = _declared_events(events)
        registered, registry_node = _registered_names(events)

        if registry_node is None:
            yield self.finding(
                events, events.tree,
                f"{_EVENTS_SUFFIX} declares no {_REGISTRY_NAME} registry; "
                f"replay cannot resolve event tags")
        else:
            for name, (_etype, cls_node) in sorted(declared.items()):
                if name not in registered:
                    yield self.finding(
                        events, cls_node,
                        f"event {name} is declared but missing from "
                        f"{_REGISTRY_NAME}; event_from_json cannot decode it")
            for name in sorted(registered - set(declared)):
                yield self.finding(
                    events, registry_node,
                    f"{_REGISTRY_NAME} registers {name}, which declares no "
                    f"etype ClassVar in {_EVENTS_SUFFIX}")

        emitted: set[str] = set()
        for module in project.modules:
            for dotted, ctor in _emitted_constructors(module):
                cls = self._event_class(dotted, declared)
                if cls is None:
                    continue
                emitted.add(cls)
                if cls not in declared:
                    yield self.finding(
                        module, ctor,
                        f"emits {cls}, which {_EVENTS_SUFFIX} does not "
                        f"declare; add the event type (with an etype "
                        f"ClassVar) before emitting it")

        # Only a run that includes the emitting layers can prove absence.
        layers = {m.layer for m in project.modules}
        if {"cluster", "balancers"} <= layers:
            for name, (etype, cls_node) in sorted(declared.items()):
                if name not in emitted:
                    yield self.finding(
                        events, cls_node,
                        f"event {name} ({etype!r}) is declared but never "
                        f"emitted anywhere in the tree; dead schema entries "
                        f"rot — emit it or remove it")

    @staticmethod
    def _event_class(dotted: str,
                     declared: dict[str, tuple[str, ast.ClassDef]]) -> str | None:
        """Constructor name when it plausibly names a trace event."""
        if dotted.startswith(_EVENTS_MODULE_PREFIX):
            return dotted.removeprefix(_EVENTS_MODULE_PREFIX)
        if "." not in dotted and dotted in declared:
            return dotted
        return None


@register
class MetricNameRule(Rule):
    id = "metric-name"
    description = ("literal metric names handed to the registry must match "
                   "the OpenMetrics sanitizer grammar (obs.prom"
                   ".METRIC_NAME_RE)")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _METRIC_FACTORIES
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                    and not is_valid_metric_name(node.args[0].value)):
                yield self.finding(
                    module, node.args[0],
                    f"metric name {node.args[0].value!r} does not match the "
                    f"sanitizer grammar {METRIC_NAME_RE.pattern!r}; it would "
                    f"be mangled in the OpenMetrics exposition")
