"""Transitive effect inference and the policy-purity rule.

Built on the interprocedural call graph (:mod:`repro.lint.callgraph`),
this module infers, per function, a conservative effect summary:

- ``mutated`` — names in the function's scope whose *referent* is mutated
  (attribute/subscript stores, ``del``, in-place operators, calls of known
  mutating methods), directly or through any reachable callee;
- ``stored`` — parameter names whose object escapes into ``self.*`` or a
  module global (retention);
- tags — ``wall-clock``, ``global-rng``, ``io``, ``mutates-global``,
  ``acquires-lock`` — again closed over the call graph.

Two sanctioned channels are exempt (``repro.lint.config``):
:data:`~repro.lint.config.MEMO_ATTRS` (content-transparent caches like
``ClusterView._lazy``) and :data:`~repro.lint.config.SINK_ATTRS` (the
metrics registry and the decision-id allocator, which policies are *meant*
to feed).

The ``policy-purity`` rule then enforces the seam contract from
``docs/ARCHITECTURE.md``: for every :class:`~repro.balancers.base.Balancer`
subclass, nothing reachable from ``setup``/``on_epoch`` may mutate or
retain the :class:`~repro.core.view.ClusterView`, mutate module state,
read the wall clock, draw global randomness, or perform I/O. Policies stay
pure functions of an immutable snapshot — the property the golden traces,
the process-pool engine and the balancer-swap mutation path all rest on.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.lint import config
from repro.lint.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    Root,
    get_callgraph,
    root_of,
)
from repro.lint.engine import Project, Rule, register
from repro.lint.findings import Finding

__all__ = [
    "Effects",
    "EffectAnalysis",
    "analyze_effects",
    "PolicyPurityRule",
    "TAG_WALL_CLOCK",
    "TAG_GLOBAL_RNG",
    "TAG_IO",
    "TAG_MUTATES_GLOBAL",
    "TAG_ACQUIRES_LOCK",
]

TAG_WALL_CLOCK = "reads-wall-clock"
TAG_GLOBAL_RNG = "uses-global-rng"
TAG_IO = "performs-io"
TAG_MUTATES_GLOBAL = "mutates-module-global"
TAG_ACQUIRES_LOCK = "acquires-lock"

#: tags that disqualify a function from the pure policy seam
_IMPURE_TAGS = (TAG_MUTATES_GLOBAL, TAG_WALL_CLOCK, TAG_GLOBAL_RNG, TAG_IO)


@dataclass
class Effects:
    """One function's effect summary (grows monotonically to fixpoint)."""

    #: scope names whose referent is mutated
    mutated: set[str] = field(default_factory=set)
    #: parameter/free names stored into self.* or module globals
    stored: set[str] = field(default_factory=set)
    tags: set[str] = field(default_factory=set)
    #: names bound locally (params, bare assignments, loop targets):
    #: mutations of these do not escape to callers unless they are params
    bound: set[str] = field(default_factory=set)
    #: explanation per mutated name / tag: (line, detail)
    witness: dict[str, tuple[int, str]] = field(default_factory=dict)

    def exported_mutated(self, params: tuple[str, ...]) -> set[str]:
        """Mutated names visible to callers: params and free names."""
        return {m for m in self.mutated
                if m in params or m not in self.bound}

    def exported_stored(self, params: tuple[str, ...]) -> set[str]:
        return {s for s in self.stored
                if s in params or s not in self.bound}


def _exempt_chain(chain: tuple[str, ...]) -> bool:
    """Mutation through a memo cache or a declared sink is sanctioned."""
    return any(seg in config.MEMO_ATTRS or seg in config.SINK_ATTRS
               for seg in chain)


class _DirectInference(ast.NodeVisitor):
    """Single-function direct effects: no call-graph knowledge yet."""

    def __init__(self, fn: FunctionNode) -> None:
        self.fn = fn
        self.eff = Effects()
        self.eff.bound.update(fn.params)
        #: alias name -> (root base, chain prefix); pure-chain assignments
        self.aliases: dict[str, Root] = {}
        self._globals: set[str] = set()

    # ------------------------------------------------------------- helpers
    def _resolve(self, root: Root) -> Root:
        """Compose ``root`` through the local alias map."""
        seen = 0
        while root.base in self.aliases and seen < 8:
            alias = self.aliases[root.base]
            root = Root(alias.base, alias.chain + root.chain)
            seen += 1
        return root

    def _mutate(self, expr_root: Root | None, line: int, detail: str) -> None:
        if expr_root is None:
            return
        root = self._resolve(expr_root)
        if _exempt_chain(root.chain):
            return
        self.eff.mutated.add(root.base)
        self.eff.witness.setdefault(f"mut:{root.base}", (line, detail))

    def _tag(self, tag: str, line: int, detail: str) -> None:
        self.eff.tags.add(tag)
        self.eff.witness.setdefault(tag, (line, detail))

    # ------------------------------------------------------------- binding
    def visit_Global(self, node: ast.Global) -> None:
        self._globals.update(node.names)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            if node.id in self._globals:
                self._tag(TAG_MUTATES_GLOBAL, node.lineno,
                          f"assigns global {node.id!r}")
            else:
                self.eff.bound.add(node.id)

    # ------------------------------------------------------------ mutation
    def _handle_target(self, target: ast.expr, value: ast.expr | None,
                       line: int) -> None:
        if isinstance(target, ast.Name):
            self.visit_Name(target)
            if value is not None:
                r = root_of(value)
                if r is not None and target.id not in self._globals:
                    self.aliases[target.id] = self._resolve(r)
                else:
                    self.aliases.pop(target.id, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_target(elt, None, line)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value if isinstance(target, ast.Subscript) \
                else target.value
            r = root_of(base) if isinstance(target, ast.Subscript) \
                else root_of(target.value)
            kind = "item" if isinstance(target, ast.Subscript) else \
                f"attribute .{target.attr}"
            if r is not None:
                resolved = self._resolve(r)
                # whether an unbound base is an enclosing local or a true
                # module global is decided post-fixpoint (nested functions
                # mutate closure cells, not globals)
                self._mutate(r, line, f"stores {kind}")
                # retention: a whole object stored into self/global state
                if value is not None:
                    vr = root_of(value)
                    if vr is not None and not _exempt_chain(resolved.chain):
                        vres = self._resolve(vr)
                        if not vres.chain:
                            self.eff.stored.add(vres.base)
                            self.eff.witness.setdefault(
                                f"store:{vres.base}",
                                (line, f"stored into {resolved.base}.*"))
            del base

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node.value)
        for target in node.targets:
            self._handle_target(target, node.value, node.lineno)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.generic_visit(node.value)
            self._handle_target(node.target, node.value, node.lineno)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node.value)
        self._handle_target(node.target, None, node.lineno)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._handle_target(target, None, node.lineno)

    def visit_For(self, node: ast.For) -> None:
        self._handle_target(node.target, None, node.lineno)
        self.generic_visit(node.iter)
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._handle_target(node.optional_vars, None,
                                getattr(node.context_expr, "lineno", 1))
        r = root_of(node.context_expr)
        if r is not None and r.chain and "lock" in r.chain[-1]:
            self._tag(TAG_ACQUIRES_LOCK, node.context_expr.lineno,
                      f"with {'.'.join([r.base, *r.chain])}")
        self.generic_visit(node.context_expr)

    # ---------------------------------------------------------- call effects
    def handle_call_site(self, site: CallSite) -> None:
        """External-call classification (internal edges propagate later)."""
        name = site.external
        if name is None:
            return
        if name in config.WALL_CLOCK_CALLS:
            self._tag(TAG_WALL_CLOCK, site.line, f"calls {name}()")
        elif name not in config.GLOBAL_RNG_ALLOWED and any(
                name == p or name.startswith(p)
                for p in config.GLOBAL_RNG_PREFIXES):
            self._tag(TAG_GLOBAL_RNG, site.line, f"calls {name}()")
        if name in config.IO_CALLS or any(
                name.startswith(p) for p in config.IO_CALL_PREFIXES):
            self._tag(TAG_IO, site.line, f"calls {name}()")
        method = name.rsplit(".", 1)[-1] if "." in name else None
        if method is not None and site.receiver is not None:
            if method in config.IO_METHOD_NAMES:
                self._tag(TAG_IO, site.line, f"calls .{method}()")
            if method in config.MUTATING_METHODS:
                self._mutate(site.receiver, site.line, f"calls .{method}()")
            if method == "acquire":
                self._tag(TAG_ACQUIRES_LOCK, site.line, "calls .acquire()")

    # --------------------------------------------------------------- pruning
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.eff.bound.add(node.name)  # nested defs analyzed separately

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.eff.bound.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.generic_visit(node)  # lambda bodies run in this scope's frame

    def run(self) -> Effects:
        for stmt in self.fn.node.body:
            self.visit(stmt)
        return self.eff


@dataclass
class EffectAnalysis:
    """Effect summaries for every function in a call graph."""

    graph: CallGraph
    effects: dict[str, Effects]

    def of(self, qualname: str) -> Effects:
        return self.effects[qualname]


def _propagate_site(caller_eff: Effects, callee: FunctionNode,
                    callee_eff: Effects, site: CallSite) -> bool:
    """Fold one call edge's callee effects into the caller; True if the
    caller's summary changed."""
    changed = False
    for tag in callee_eff.tags:
        if tag not in caller_eff.tags:
            caller_eff.tags.add(tag)
            line, _ = callee_eff.witness.get(tag, (callee.node.lineno, ""))
            caller_eff.witness.setdefault(
                tag, (site.line, f"via {callee.qualname}:{line}"))
            changed = True
    exported = callee_eff.exported_mutated(callee.params)
    stored = callee_eff.exported_stored(callee.params)
    if site.implicit:
        # nested def: free names alias the enclosing scope by identity
        for m in exported:
            if m not in callee.params and m not in caller_eff.mutated:
                caller_eff.mutated.add(m)
                caller_eff.witness.setdefault(
                    f"mut:{m}", (site.line, f"via nested {callee.qualname}"))
                changed = True
        for s in stored:
            if s not in callee.params and s not in caller_eff.stored:
                caller_eff.stored.add(s)
                changed = True
        return changed
    mapping = dict(site.args)
    for m in exported:
        root = mapping.get(m)
        if root is None or _exempt_chain(root.chain):
            continue
        if root.base not in caller_eff.mutated:
            caller_eff.mutated.add(root.base)
            caller_eff.witness.setdefault(
                f"mut:{root.base}",
                (site.line, f"via {callee.qualname} "
                            f"(mutates parameter {m!r})"))
            changed = True
    for s in stored:
        root = mapping.get(s)
        if root is None or root.chain or _exempt_chain(root.chain):
            continue  # only whole-object escapes count as retention
        if root.base not in caller_eff.stored:
            caller_eff.stored.add(root.base)
            caller_eff.witness.setdefault(
                f"store:{root.base}",
                (site.line, f"via {callee.qualname} (retains {s!r})"))
            changed = True
    return changed


def _fixpoint(graph: CallGraph, effects: dict[str, Effects],
              callers: dict[str, set[str]]) -> None:
    """Worklist pass: fold callee summaries into callers until stable."""
    work = sorted(graph.functions)
    queued = set(work)
    while work:
        qn = work.pop(0)
        queued.discard(qn)
        for caller in sorted(callers.get(qn, ())):
            caller_eff = effects[caller]
            changed = False
            for site in graph.calls[caller]:
                if site.callee != qn:
                    continue
                changed |= _propagate_site(
                    caller_eff, graph.functions[qn], effects[qn], site)
            if changed and caller not in queued:
                work.append(caller)
                queued.add(caller)


def analyze_effects(project: Project) -> EffectAnalysis:
    """Direct inference per function, then a worklist fixpoint over the
    call graph. Cached on the project alongside the graph."""
    cached = getattr(project, "_effects_cache", None)
    if cached is not None:
        return cached
    graph = get_callgraph(project)
    effects: dict[str, Effects] = {}
    for qn in graph.functions:
        inf = _DirectInference(graph.functions[qn])
        eff = inf.run()
        for site in graph.calls.get(qn, ()):
            inf.handle_call_site(site)
        effects[qn] = eff
    # reverse edges: callee -> callers, for the worklist
    callers: dict[str, set[str]] = {qn: set() for qn in graph.functions}
    for caller, sites in graph.calls.items():
        for site in sites:
            if site.callee is not None and site.callee in callers:
                callers[site.callee].add(caller)
    _fixpoint(graph, effects, callers)
    # Names free in a *nested* function may be enclosing-function locals,
    # so the module-global verdict is only sound once closure mutations
    # have flowed upward: a name still free in a non-nested function after
    # the first fixpoint is a module-level binding.
    for qn in sorted(graph.functions):
        enclosing = qn.rsplit(".", 1)[0]
        if enclosing in graph.functions:
            continue  # nested: free names belong to the enclosing scope
        eff = effects[qn]
        for m in sorted(eff.mutated - eff.bound):
            line, detail = eff.witness.get(
                f"mut:{m}", (graph.functions[qn].node.lineno, "mutated"))
            eff.tags.add(TAG_MUTATES_GLOBAL)
            eff.witness.setdefault(
                TAG_MUTATES_GLOBAL,
                (line, f"mutates module-level {m!r}: {detail}"))
    _fixpoint(graph, effects, callers)  # propagate the derived tags
    analysis = EffectAnalysis(graph=graph, effects=effects)
    project._effects_cache = analysis  # type: ignore[attr-defined]
    return analysis


# ------------------------------------------------------------------ the rule
@register
class PolicyPurityRule(Rule):
    id = "policy-purity"
    description = ("balancer setup/on_epoch and everything reachable must "
                   "not mutate or retain the ClusterView, mutate module "
                   "state, read the clock, use global RNG or perform I/O")

    def check_project(self, project: Project) -> Iterable[Finding]:
        analysis = analyze_effects(project)
        graph = analysis.graph
        policies: list[str] = []
        for base in sorted(config.POLICY_BASE_CLASSES):
            policies.extend(graph.subclasses_of(base))
        reported: set[tuple[str, str]] = set()
        for cq in sorted(set(policies)):
            cls = graph.classes[cq]
            for entry_name in config.POLICY_ENTRY_METHODS:
                fq = cls.methods.get(entry_name)
                if fq is None:
                    continue  # inherited default (pure by induction)
                yield from self._check_entry(
                    graph, analysis, cq, fq, reported)

    def _check_entry(self, graph: CallGraph, analysis: EffectAnalysis,
                     class_qualname: str, entry: str,
                     reported: set[tuple[str, str]]) -> Iterable[Finding]:
        fn = graph.functions[entry]
        eff = analysis.of(entry)
        short = entry.rsplit(".", 2)
        label = ".".join(short[-2:])
        # the view parameter is positional: (self, view)
        view_param = fn.params[1] if len(fn.params) > 1 else None
        if view_param is not None and view_param in eff.mutated:
            line, detail = eff.witness.get(
                f"mut:{view_param}", (fn.node.lineno, "mutated"))
            if (entry, "mutates-view") not in reported:
                reported.add((entry, "mutates-view"))
                yield Finding(
                    path=fn.module.display, line=line, col=1, rule=self.id,
                    message=f"{label} mutates its ClusterView "
                            f"({view_param!r}): {detail}; policies plan "
                            f"against an immutable snapshot")
        if view_param is not None and view_param in eff.stored:
            line, detail = eff.witness.get(
                f"store:{view_param}", (fn.node.lineno, "stored"))
            if (entry, "retains-view") not in reported:
                reported.add((entry, "retains-view"))
                yield Finding(
                    path=fn.module.display, line=line, col=1, rule=self.id,
                    message=f"{label} retains its ClusterView "
                            f"({view_param!r}): {detail}; views are "
                            f"per-epoch snapshots, not state")
        for reached in graph.reachable([entry]):
            reached_eff = analysis.of(reached)
            reached_fn = graph.functions[reached]
            for tag in _IMPURE_TAGS:
                if tag not in reached_eff.tags:
                    continue
                # report at the function that *directly* has the effect,
                # once per (function, tag) repo-wide
                line, detail = reached_eff.witness.get(
                    tag, (reached_fn.node.lineno, tag))
                if not detail.startswith("via ") or reached == entry:
                    key = (reached, tag)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield Finding(
                        path=reached_fn.module.display, line=line, col=1,
                        rule=self.id,
                        message=f"{reached.rsplit('.', 1)[-1]} "
                                f"({tag}: {detail}) is reachable from the "
                                f"pure policy seam ({label})")
