"""Interprocedural call-graph construction over a lint :class:`Project`.

The flow-analysis layer (``repro.lint.effects``, ``repro.lint.concurrency``)
needs to answer "what does this function *reach*?", not just "what does
this line *say*?". This module builds that reachability substrate:

- every ``def``/``async def`` in every scanned module becomes a
  :class:`FunctionNode` (methods and nested functions included — the graph
  is **total**: no function in the tree is unrepresented);
- every ``ast.Call`` becomes a :class:`CallSite`, resolved where the AST
  supports it: direct names through import aliases, ``self.meth()``
  through the class (and its project-local bases), ``obj.meth()`` through
  a best-effort type environment fed by parameter annotations, local
  constructor calls and return-type annotations of project functions;
- unresolved targets keep their dotted name (``numpy.concatenate``) so
  effect tables can still classify them.

Resolution is deliberately conservative and **deterministic**: modules,
classes and functions are visited in sorted order, every mapping is
insertion-ordered from sorted inputs, and building the graph twice over
the same tree yields identical structures
(``tests/test_lint_callgraph.py`` property-tests both claims).

Nested ``def``\\ s get an *implicit* edge from their enclosing function —
defining a closure is treated as (potentially) calling it, which
over-approximates reachability but never under-approximates effects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.engine import ModuleInfo, Project, import_alias_map

__all__ = [
    "Root",
    "CallSite",
    "FunctionNode",
    "ClassNode",
    "CallGraph",
    "build_callgraph",
    "get_callgraph",
    "root_of",
]


@dataclass(frozen=True)
class Root:
    """A pure access chain rooted at a local name: ``view.heat`` is
    ``Root("view", ("heat",))``. Chains broken by calls or operators have
    no Root — a call result is a fresh object as far as aliasing goes."""

    base: str
    chain: tuple[str, ...] = ()


def root_of(expr: ast.expr) -> Root | None:
    """The :class:`Root` of ``expr`` if it is a pure Name/Attribute/
    Subscript chain; ``None`` otherwise. Subscripts keep the base chain
    (``a[k].b`` roots at ``a``) — indexing reaches *into* the object."""
    chain: list[str] = []
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            chain.reverse()
            return Root(node.id, tuple(chain))
        else:
            return None


@dataclass(frozen=True)
class CallSite:
    """One resolved (or not) call inside a function body.

    ``callee`` is the qualified name of a project function when resolution
    succeeded, else ``None``; ``external`` carries the dotted target name
    (through import aliases) when it did not. ``receiver`` is the Root of
    the bound object for method calls (``view.loads()`` → ``view``);
    ``args`` maps callee parameter names to caller Roots where the
    argument was a pure chain. ``implicit`` marks enclosing-def → nested-def
    edges (no ast.Call exists)."""

    callee: str | None
    external: str | None
    line: int
    receiver: Root | None = None
    args: tuple[tuple[str, Root], ...] = ()
    implicit: bool = False


@dataclass
class FunctionNode:
    qualname: str
    module: ModuleInfo
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: parameter names in order (``self`` included for methods)
    params: tuple[str, ...]
    class_qualname: str | None
    is_async: bool
    is_property: bool
    #: project class qualname the return annotation names, if any
    returns: str | None = None


@dataclass
class ClassNode:
    qualname: str
    module: ModuleInfo
    node: ast.ClassDef
    #: project-local base-class qualnames (external bases are dropped)
    bases: tuple[str, ...]
    #: method name -> function qualname
    methods: dict[str, str] = field(default_factory=dict)
    properties: frozenset[str] = frozenset()
    #: attr name -> sorted tuple of candidate project class qualnames
    #: (from ``self.x = Cls(...)`` assignments and ``self.x: Cls`` / class
    #: body annotations across every method)
    attr_types: dict[str, tuple[str, ...]] = field(default_factory=dict)


@dataclass
class CallGraph:
    functions: dict[str, FunctionNode]
    classes: dict[str, ClassNode]
    #: caller qualname -> call sites, in source order
    calls: dict[str, tuple[CallSite, ...]]

    def method_of(self, class_qualname: str, name: str) -> str | None:
        """Resolve ``name`` on a class, walking project-local bases (MRO
        approximated depth-first in declaration order)."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            cq = stack.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            cls = self.classes.get(cq)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            stack.extend(cls.bases)
        return None

    def subclasses_of(self, base_qualname: str) -> list[str]:
        """Every project class with ``base_qualname`` in its transitive
        base chain, sorted."""
        out = []
        for cq in sorted(self.classes):
            seen: set[str] = set()
            stack = list(self.classes[cq].bases)
            while stack:
                b = stack.pop()
                if b in seen:
                    continue
                seen.add(b)
                if b == base_qualname:
                    out.append(cq)
                    break
                parent = self.classes.get(b)
                if parent is not None:
                    stack.extend(parent.bases)
        return out

    def reachable(self, roots: list[str]) -> list[str]:
        """Project functions reachable from ``roots`` (roots included),
        in deterministic BFS order."""
        seen: list[str] = []
        seen_set: set[str] = set()
        queue = [r for r in roots if r in self.functions]
        while queue:
            fn = queue.pop(0)
            if fn in seen_set:
                continue
            seen_set.add(fn)
            seen.append(fn)
            for site in self.calls.get(fn, ()):
                if site.callee is not None and site.callee not in seen_set:
                    queue.append(site.callee)
        return seen


# --------------------------------------------------------------- building
def _annotation_class(ann: ast.expr | None, resolver: _Resolver) -> str | None:
    """Project class qualname an annotation refers to, unwrapping
    ``X | None``, ``Optional[X]`` and string annotations."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return (_annotation_class(ann.left, resolver)
                or _annotation_class(ann.right, resolver))
    if isinstance(ann, ast.Subscript):  # Optional[X], list[X] → look inside
        return _annotation_class(ann.slice, resolver)
    root = root_of(ann)
    if root is None:
        return None
    dotted = ".".join([root.base, *root.chain])
    return resolver.class_qualname(dotted)


class _Resolver:
    """Per-module name resolution: aliases + module-level defs."""

    def __init__(self, module: ModuleInfo, classes: dict[str, ClassNode],
                 functions: dict[str, FunctionNode]) -> None:
        self.module = module
        self.aliases = import_alias_map(module.tree)
        self.classes = classes
        self.functions = functions
        self.prefix = module.module or module.display

    def dotted(self, name: str) -> str:
        """Resolve a bare name through import aliases, else assume local."""
        if name in self.aliases:
            return self.aliases[name]
        return f"{self.prefix}.{name}"

    def class_qualname(self, dotted: str) -> str | None:
        for cand in (dotted, f"{self.prefix}.{dotted}",
                     self.aliases.get(dotted.split(".")[0], "")
                     + dotted[len(dotted.split(".")[0]):]):
            if cand in self.classes:
                return cand
        return None

    def function_qualname(self, dotted: str) -> str | None:
        if dotted in self.functions:
            return dotted
        local = f"{self.prefix}.{dotted}"
        if local in self.functions:
            return local
        return None


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    names = []
    for dec in node.decorator_list:
        root = root_of(dec.func if isinstance(dec, ast.Call) else dec)
        if root is not None:
            names.append(".".join([root.base, *root.chain]))
    return names


def _collect_defs(graph: CallGraph, module: ModuleInfo) -> None:
    """First pass: register every class and function under its qualname."""
    prefix = module.module or module.display

    def visit(body: list[ast.stmt], scope: str, class_qn: str | None) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qn = f"{scope}.{stmt.name}"
                decorators = _decorator_names(stmt)
                params = tuple(
                    a.arg for a in [*stmt.args.posonlyargs, *stmt.args.args,
                                    *([stmt.args.vararg] if stmt.args.vararg else []),
                                    *stmt.args.kwonlyargs,
                                    *([stmt.args.kwarg] if stmt.args.kwarg else [])]
                )
                graph.functions[qn] = FunctionNode(
                    qualname=qn, module=module, node=stmt, params=params,
                    class_qualname=class_qn,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    is_property="property" in decorators
                    or any(d.endswith(".setter") for d in decorators),
                )
                if class_qn is not None:
                    graph.classes[class_qn].methods.setdefault(stmt.name, qn)
                # nested defs live inside function scope, not class scope
                visit(stmt.body, qn, None)
            elif isinstance(stmt, ast.ClassDef):
                qn = f"{scope}.{stmt.name}"
                graph.classes[qn] = ClassNode(
                    qualname=qn, module=module, node=stmt, bases=())
                visit(stmt.body, qn, qn)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With)):
                # defs under module-level guards still exist
                for sub in ast.iter_child_nodes(stmt):
                    if isinstance(sub, ast.stmt):
                        visit([sub], scope, class_qn)

    visit(module.tree.body, prefix, None)


def _link_classes(graph: CallGraph, module: ModuleInfo) -> None:
    """Second pass: resolve base classes, properties and attribute types."""
    resolver = _Resolver(module, graph.classes, graph.functions)
    prefix = module.module or module.display
    for cq in sorted(graph.classes):
        cls = graph.classes[cq]
        if cls.module is not module:
            continue
        bases = []
        for b in cls.node.bases:
            root = root_of(b)
            if root is None:
                continue
            dotted = resolver.dotted(root.base)
            dotted = ".".join([dotted, *root.chain]) if root.chain else dotted
            resolved = resolver.class_qualname(dotted) or resolver.class_qualname(
                ".".join([root.base, *root.chain]))
            if resolved is not None:
                bases.append(resolved)
        cls.bases = tuple(bases)
        props = set()
        for name, fq in cls.methods.items():
            if graph.functions[fq].is_property:
                props.add(name)
        cls.properties = frozenset(props)
        # attribute types from self.x = Cls(...) / self.x: Cls anywhere
        attr_types: dict[str, set[str]] = {}
        for name in sorted(cls.methods):
            fn = graph.functions[cls.methods[name]]
            self_name = fn.params[0] if fn.params else "self"
            for stmt in ast.walk(fn.node):
                target_ann: tuple[ast.expr, ast.expr | None, ast.expr | None] | None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target_ann = (stmt.targets[0], None, stmt.value)
                elif isinstance(stmt, ast.AnnAssign):
                    target_ann = (stmt.target, stmt.annotation, stmt.value)
                else:
                    continue
                target, ann, value = target_ann
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name):
                    continue
                tname = None
                if ann is not None:
                    tname = _annotation_class(ann, resolver)
                if tname is None and isinstance(value, ast.Call):
                    vroot = root_of(value.func)
                    if vroot is not None:
                        tname = resolver.class_qualname(
                            ".".join([resolver.dotted(vroot.base), *vroot.chain]))
                if tname is not None:
                    attr_types.setdefault(target.attr, set()).add(tname)
        cls.attr_types = {a: tuple(sorted(ts))
                          for a, ts in sorted(attr_types.items())}
    del prefix


class _FunctionScanner:
    """Third pass, one function: type environment + call-site extraction."""

    def __init__(self, graph: CallGraph, fn: FunctionNode,
                 resolver: _Resolver) -> None:
        self.graph = graph
        self.fn = fn
        self.resolver = resolver
        #: local name -> project class qualname
        self.types: dict[str, str] = {}
        self.sites: list[CallSite] = []
        self._seed_param_types()

    def _seed_param_types(self) -> None:
        node, fn = self.fn.node, self.fn
        all_args = [*node.args.posonlyargs, *node.args.args,
                    *node.args.kwonlyargs]
        for a in all_args:
            t = _annotation_class(a.annotation, self.resolver)
            if t is not None:
                self.types[a.arg] = t
        if fn.class_qualname is not None and fn.params:
            self.types.setdefault(fn.params[0], fn.class_qualname)

    # ------------------------------------------------------------- typing
    def type_of(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            return self.types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base_t = self.type_of(expr.value)
            if base_t is None:
                return None
            cls = self.graph.classes.get(base_t)
            if cls is None:
                return None
            if expr.attr in cls.properties:
                mq = self.graph.method_of(base_t, expr.attr)
                if mq is not None:
                    return self.graph.functions[mq].returns
                return None
            cands = cls.attr_types.get(expr.attr, ())
            return cands[0] if len(cands) == 1 else None
        if isinstance(expr, ast.Call):
            return self._call_result_type(expr)
        return None

    def _call_result_type(self, call: ast.Call) -> str | None:
        target = self._resolve_target(call)
        if target is None:
            return None
        kind, qn = target
        if kind == "ctor":
            return qn
        if kind == "fn":
            return self.graph.functions[qn].returns
        return None

    # ---------------------------------------------------------- resolution
    def _resolve_target(self, call: ast.Call) -> tuple[str, str] | None:
        """(kind, qualname): kind 'fn' (project function/method) or 'ctor'
        (project class constructor)."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            t = self.types.get(name)
            if t is not None:  # a variable holding a known instance: not a call target we track
                return None
            dotted = self.resolver.dotted(name)
            cq = self.resolver.class_qualname(dotted)
            if cq is not None:
                return ("ctor", cq)
            fq = self.resolver.function_qualname(dotted)
            if fq is not None:
                return ("fn", fq)
            # nested function in an enclosing scope?
            scope = self.fn.qualname
            while "." in scope:
                cand = f"{scope}.{name}"
                if cand in self.graph.functions:
                    return ("fn", cand)
                scope = scope.rsplit(".", 1)[0]
            return None
        if isinstance(func, ast.Attribute):
            base_t = self.type_of(func.value)
            if base_t is not None:
                mq = self.graph.method_of(base_t, func.attr)
                if mq is not None:
                    return ("fn", mq)
                return None
            root = root_of(func)
            if root is not None and not root.chain:
                return None
            if root is not None:
                dotted = ".".join([self.resolver.dotted(root.base), *root.chain])
                cq = self.resolver.class_qualname(dotted)
                if cq is not None:
                    return ("ctor", cq)
                fq = self.resolver.function_qualname(dotted)
                if fq is not None:
                    return ("fn", fq)
            return None
        return None

    def _external_name(self, call: ast.Call) -> str | None:
        root = root_of(call.func)
        if root is None:
            return None
        return ".".join([self.resolver.aliases.get(root.base, root.base),
                         *root.chain])

    def _arg_map(self, call: ast.Call, callee: FunctionNode,
                 receiver: Root | None) -> tuple[tuple[str, Root], ...]:
        params = list(callee.params)
        out: list[tuple[str, Root]] = []
        if callee.class_qualname is not None and params:
            if receiver is not None:
                out.append((params[0], receiver))
            # ctor call: ``self`` is the fresh object, never a caller root
            params = params[1:]
        for i, arg in enumerate(call.args):
            if i >= len(params):
                break
            r = root_of(arg)
            if r is not None:
                out.append((params[i], r))
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in params:
                r = root_of(kw.value)
                if r is not None:
                    out.append((kw.arg, r))
        return tuple(out)

    # -------------------------------------------------------------- walking
    def scan(self) -> None:
        self._walk(self.fn.node.body)

    def _walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # implicit enclosing → nested edge; free names map by identity
                self.sites.append(CallSite(
                    callee=f"{self.fn.qualname}.{stmt.name}", external=None,
                    line=stmt.lineno, implicit=True))
                continue
            if isinstance(stmt, ast.ClassDef):
                # defining a nested class: its methods may run (handlers)
                cls = self.graph.classes.get(f"{self.fn.qualname}.{stmt.name}")
                if cls is not None:
                    for mname in sorted(cls.methods):
                        self.sites.append(CallSite(
                            callee=cls.methods[mname], external=None,
                            line=stmt.lineno, implicit=True))
                continue
            for call in self._calls_in_stmt(stmt):
                self._record_call(call)
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                t = self.type_of(stmt.value)
                name = stmt.targets[0].id
                if t is not None:
                    self.types[name] = t
                else:
                    self.types.pop(name, None)
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if sub:
                    self._walk(sub)
            for handler in getattr(stmt, "handlers", ()):
                self._walk(handler.body)

    @staticmethod
    def _calls_in_stmt(stmt: ast.stmt) -> list[ast.Call]:
        """Calls in this statement's own expressions, excluding nested
        statements (walked separately) and nested def bodies (their own
        graph nodes)."""
        out: list[ast.Call] = []
        queue: list[ast.AST] = [
            c for c in ast.iter_child_nodes(stmt)
            if not isinstance(c, ast.stmt)
        ]
        while queue:
            node = queue.pop(0)
            if isinstance(node, ast.Call):
                out.append(node)
            for child in ast.iter_child_nodes(node):
                if not isinstance(child, ast.stmt):
                    queue.append(child)
        return out

    def _record_call(self, call: ast.Call) -> None:
        target = self._resolve_target(call)
        receiver = None
        if isinstance(call.func, ast.Attribute):
            receiver = root_of(call.func.value)
        if target is None:
            self.sites.append(CallSite(
                callee=None, external=self._external_name(call),
                line=call.lineno, receiver=receiver))
            return
        kind, qn = target
        if kind == "ctor":
            init = self.graph.method_of(qn, "__init__")
            if init is None:
                self.sites.append(CallSite(callee=None, external=qn,
                                           line=call.lineno))
                return
            callee = self.graph.functions[init]
            # constructor: self is the fresh object, no receiver root
            args = self._arg_map(call, callee, None)
            self.sites.append(CallSite(callee=init, external=None,
                                       line=call.lineno, args=args))
            return
        callee = self.graph.functions[qn]
        args = self._arg_map(call, callee, receiver)
        self.sites.append(CallSite(callee=qn, external=None,
                                   line=call.lineno, receiver=receiver,
                                   args=args))


def _resolve_returns(graph: CallGraph) -> None:
    for qn in sorted(graph.functions):
        fn = graph.functions[qn]
        resolver = _Resolver(fn.module, graph.classes, graph.functions)
        fn.returns = _annotation_class(fn.node.returns, resolver)


def get_callgraph(project: Project) -> CallGraph:
    """The project's call graph, built once and cached on the project so
    the effect and concurrency rule families share one construction."""
    cached = getattr(project, "_callgraph_cache", None)
    if cached is None:
        cached = build_callgraph(project)
        project._callgraph_cache = cached  # type: ignore[attr-defined]
    return cached


def build_callgraph(project: Project) -> CallGraph:
    """Build the whole-project call graph. Deterministic and total."""
    graph = CallGraph(functions={}, classes={}, calls={})
    modules = sorted(project.modules, key=lambda m: m.display)
    for module in modules:
        _collect_defs(graph, module)
    for module in modules:
        _link_classes(graph, module)
    _resolve_returns(graph)
    graph.functions = dict(sorted(graph.functions.items()))
    graph.classes = dict(sorted(graph.classes.items()))
    for qn in sorted(graph.functions):
        fn = graph.functions[qn]
        resolver = _Resolver(fn.module, graph.classes, graph.functions)
        scanner = _FunctionScanner(graph, fn, resolver)
        scanner.scan()
        graph.calls[qn] = tuple(scanner.sites)
    return graph
