"""The lint engine's output vocabulary.

A :class:`Finding` is one violation at one source location, carrying the
rule id that produced it — the ``file:line:rule-id`` triple is the
contract every reporter, test and CI job keys on. Findings are frozen and
totally ordered (by file, then line/column, then rule id) so a lint run
over the same tree always reports in the same order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

__all__ = ["Severity", "Finding", "ERROR", "WARNING"]

#: severities a rule (or a single finding) may carry; only ``ERROR``
#: findings make ``repro lint`` exit non-zero
ERROR = "error"
WARNING = "warning"
Severity = str

_SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = ERROR

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"severity must be one of {_SEVERITIES}, "
                             f"got {self.severity!r}")

    @property
    def location(self) -> str:
        """``path:line:col`` — the clickable half of the text report."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict (round-trips through :func:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Finding:
        return cls(**data)
