"""The reusable AST lint engine: rule registry, module model, suppressions.

A lint run is: collect ``.py`` files → parse each into a
:class:`ModuleInfo` → hand every module to every registered
:class:`Rule` → hand the whole :class:`Project` to every rule's
cross-module pass → filter findings through inline suppressions → report.

Rules are plain classes registered with :func:`register`; each has a
stable kebab-case ``id`` (what ``--rule`` selects and what suppressions
name), a severity, and one or both of ``check_module`` /
``check_project``.

Suppressions are inline comments::

    risky_line()  # repro-lint: disable=wall-clock
    other()       # repro-lint: disable=str-hash,float-eq

A suppression silences matching findings *on its own line only*. Every
suppression must earn its keep: one that silences nothing is itself
reported (rule id ``unused-suppression``), so stale opt-outs cannot
accumulate as the tree changes underneath them.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.lint.findings import ERROR, Finding

__all__ = [
    "ModuleInfo",
    "Project",
    "Rule",
    "register",
    "all_rules",
    "rule_ids",
    "build_project",
    "lint_paths",
    "LintResult",
    "resolve_call_name",
    "import_alias_map",
    "UNUSED_SUPPRESSION",
    "PARSE_ERROR",
]

UNUSED_SUPPRESSION = "unused-suppression"
PARSE_ERROR = "parse-error"

_SUPPRESS_RE = re.compile(r"repro-lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")


@dataclass
class ModuleInfo:
    """One parsed source file plus everything rules ask about it."""

    path: pathlib.Path
    #: path as reported in findings (relative to the lint root when possible)
    display: str
    #: dotted module name when the file sits under a ``repro`` directory
    #: (``repro.core.plan``); None for free-standing files
    module: str | None
    tree: ast.Module
    source: str
    #: line -> rule ids suppressed on that line
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def layer(self) -> str | None:
        """First-level package under ``repro`` (``core``, ``obs``, ...)."""
        if self.module is None:
            return None
        parts = self.module.split(".")
        return parts[1] if len(parts) >= 2 else None

    def in_packages(self, packages: Iterable[str]) -> bool:
        return self.layer in set(packages)


@dataclass
class Project:
    """Every module of one lint run, with by-name lookup for rules."""

    modules: list[ModuleInfo]
    by_module: dict[str, ModuleInfo] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.by_module = {m.module: m for m in self.modules
                          if m.module is not None}

    def find_suffix(self, suffix: str) -> ModuleInfo | None:
        """The module whose path ends with ``suffix`` (``obs/events.py``)."""
        want = pathlib.PurePosixPath(suffix).parts
        for m in self.modules:
            if m.path.parts[-len(want):] == want:
                return m
        return None


class Rule:
    """Base class: subclass, set ``id``/``description``, register."""

    id: str = ""
    description: str = ""
    severity: str = ERROR

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        """Per-module findings; default none."""
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        """Cross-module findings (cycles, schema closure); default none."""
        return ()

    # ------------------------------------------------------------- helpers
    def finding(self, module: ModuleInfo, node: ast.AST, message: str,
                severity: str | None = None) -> Finding:
        return Finding(
            path=module.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            severity=severity or self.severity,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to the global registry."""
    rule = cls()
    if not rule.id or not rule.description:
        raise ValueError(f"{cls.__name__} must set id and description")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


_RULES_LOADED = False


def _load_rules() -> None:
    # Import for side effect: each module registers its rules on import.
    # Guarded by a flag, not by registry emptiness: importing one rule
    # module directly must not stop the others from loading later.
    global _RULES_LOADED
    if _RULES_LOADED:
        return
    _RULES_LOADED = True
    from repro.lint import (  # noqa: F401
        concurrency,
        determinism,
        effects,
        floats,
        layering,
        schema,
    )


def all_rules() -> dict[str, Rule]:
    """The registry, loading the shipped rule modules on first use."""
    _load_rules()
    return dict(_REGISTRY)


def rule_ids() -> list[str]:
    return sorted(all_rules())


# ----------------------------------------------------------------- parsing
def _module_name(path: pathlib.Path) -> str | None:
    """Dotted name from the last ``repro`` path component downward.

    Works for the real tree (``src/repro/core/plan.py``) and for fixture
    corpora that mirror it (``tests/lint_fixtures/x/repro/obs/bad.py``),
    so layer- and scope-aware rules apply to both.
    """
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    tail = parts[idx:]
    tail[-1] = tail[-1].removesuffix(".py")
    if tail[-1] == "__init__":
        tail.pop()
    return ".".join(tail)


def _scan_suppressions(source: str) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m:
                ids = {part.strip() for part in m.group(1).split(",")}
                out.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenError:
        pass  # the parse error finding covers it
    return out


def _display_path(path: pathlib.Path, root: pathlib.Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def parse_module(path: pathlib.Path, root: pathlib.Path,
                 ) -> tuple[ModuleInfo | None, Finding | None]:
    display = _display_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return None, Finding(path=display, line=line, col=1, rule=PARSE_ERROR,
                             message=f"cannot lint {display}: {exc}")
    return ModuleInfo(
        path=path, display=display, module=_module_name(path), tree=tree,
        source=source, suppressions=_scan_suppressions(source),
    ), None


def _collect_files(paths: Sequence[str | pathlib.Path]) -> list[pathlib.Path]:
    out: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    for raw in paths:
        p = pathlib.Path(raw)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            key = f.resolve()
            if key not in seen:
                seen.add(key)
                out.append(f)
    return out


def build_project(paths: Sequence[str | pathlib.Path],
                  root: str | pathlib.Path | None = None,
                  ) -> tuple[Project, list[Finding]]:
    """Parse every ``.py`` under ``paths``; unparseable files become
    :data:`PARSE_ERROR` findings instead of aborting the run."""
    root_path = pathlib.Path(root) if root is not None else pathlib.Path.cwd()
    modules: list[ModuleInfo] = []
    errors: list[Finding] = []
    for path in _collect_files(paths):
        info, err = parse_module(path, root_path)
        if info is not None:
            modules.append(info)
        if err is not None:
            errors.append(err)
    return Project(modules=modules), errors


# ------------------------------------------------------------------ running
@dataclass
class LintResult:
    findings: list[Finding]
    #: modules successfully parsed
    checked: int
    #: (filesystem path, line, rule id) of every inline suppression that
    #: matched no finding — the input to ``repro lint --fix-suppressions``
    unused_suppressions: list[tuple[pathlib.Path, int, str]] = \
        field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0


def _apply_suppressions(
        project: Project, findings: list[Finding],
) -> tuple[list[Finding], list[tuple[pathlib.Path, int, str]]]:
    """Drop suppressed findings; report suppressions that did nothing.

    Returns the surviving findings plus the structured unused-suppression
    list (real filesystem paths) that ``--fix-suppressions`` edits."""
    by_display = {m.display: m for m in project.modules}
    used: set[tuple[str, int, str]] = set()
    kept: list[Finding] = []
    unused: list[tuple[pathlib.Path, int, str]] = []
    for f in findings:
        mod = by_display.get(f.path)
        ids = mod.suppressions.get(f.line, set()) if mod is not None else set()
        if f.rule in ids:
            used.add((f.path, f.line, f.rule))
        else:
            kept.append(f)
    known = set(all_rules()) | {UNUSED_SUPPRESSION, PARSE_ERROR}
    for mod in project.modules:
        for line, ids in sorted(mod.suppressions.items()):
            for rule_id in sorted(ids):
                if (mod.display, line, rule_id) in used:
                    continue
                extra = ("" if rule_id in known
                         else " (no such rule — typo in the suppression?)")
                unused.append((mod.path, line, rule_id))
                kept.append(Finding(
                    path=mod.display, line=line, col=1,
                    rule=UNUSED_SUPPRESSION,
                    message=f"suppression of {rule_id!r} matches no "
                            f"finding{extra}; remove it"))
    return kept, unused


def lint_paths(paths: Sequence[str | pathlib.Path],
               rules: Iterable[str] | None = None,
               root: str | pathlib.Path | None = None) -> LintResult:
    """Run the (optionally filtered) rule set over ``paths``.

    ``rules`` selects rule ids; unknown ids raise ``ValueError`` so a CI
    typo cannot silently lint nothing.
    """
    registry = all_rules()
    if rules is not None:
        wanted = list(rules)
        unknown = sorted(set(wanted) - set(registry))
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; known: {sorted(registry)}")
        registry = {rid: registry[rid] for rid in registry if rid in wanted}
    project, findings = build_project(paths, root=root)
    for rule in registry.values():
        for mod in project.modules:
            findings.extend(rule.check_module(mod, project))
        findings.extend(rule.check_project(project))
    findings, unused = _apply_suppressions(project, findings)
    unique = sorted(set(findings))
    return LintResult(findings=unique, checked=len(project.modules),
                      unused_suppressions=unused)


# ------------------------------------------------- shared AST helpers
def import_alias_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully dotted origin, from every import in the module.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``. Nested (lazy)
    imports are included: a wall-clock call is no less wall-clock for
    being inside a function.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                full = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = full
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call_name(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """Dotted origin of a call target, resolved through import aliases.

    The attribute chain's head is substituted by its import origin:
    ``np.random.rand`` with ``import numpy as np`` resolves to
    ``numpy.random.rand``; ``datetime.now`` with ``from datetime import
    datetime`` resolves to ``datetime.datetime.now``. Returns None for
    non-name targets (lambdas, subscripts, call results).
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    head, rest = parts[0], parts[1:]
    resolved_head = aliases.get(head, head)
    return ".".join([resolved_head, *rest])


def walk_with_parents(tree: ast.Module) -> Iterator[tuple[ast.AST, ast.AST | None]]:
    """Yield ``(node, parent)`` for every node in the tree."""
    parents: dict[int, ast.AST | None] = {id(tree): None}
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        yield node, parents[id(node)]
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
            stack.append(child)
