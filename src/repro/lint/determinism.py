"""Determinism rules: the byte-identical-replay contract, enforced.

Everything under ``core/``, ``balancers/`` and ``obs/`` must be a pure
function of (config, seed): the golden decision-trace suite replays
fixed-seed runs byte-for-byte, and the 2-worker sweep must equal serial
bytes. Four rules guard the ways that contract quietly breaks:

- ``wall-clock`` — ``time.time``/``datetime.now``-style calls;
- ``global-rng`` — ``random.*``, ``os.urandom``, ``uuid.*`` and unseeded
  ``numpy.random`` module functions (seeded streams come from
  :func:`repro.util.rng.substream`);
- ``unsorted-iter`` — iterating a ``set`` literal/comprehension/call, or
  a directory listing not wrapped in ``sorted()``, in plan-producing
  modules: iteration order there becomes migration order;
- ``str-hash`` — ``hash()`` on strings (or anything non-numeric):
  salted per process (PYTHONHASHSEED), so it is never stable across the
  experiment engine's worker pool.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.lint import config
from repro.lint.engine import (
    ModuleInfo,
    Project,
    Rule,
    import_alias_map,
    register,
    resolve_call_name,
    walk_with_parents,
)
from repro.lint.findings import Finding

__all__ = ["WallClockRule", "GlobalRngRule", "UnsortedIterRule", "StrHashRule"]


def _calls(module: ModuleInfo) -> Iterator[tuple[ast.Call, str | None]]:
    aliases = import_alias_map(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield node, resolve_call_name(node.func, aliases)


@register
class WallClockRule(Rule):
    id = "wall-clock"
    description = ("forbid wall-clock reads (time.time, datetime.now, ...) "
                   "in deterministic packages")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if not module.in_packages(config.DETERMINISM_PACKAGES):
            return
        for call, name in _calls(module):
            if name in config.WALL_CLOCK_CALLS:
                yield self.finding(
                    module, call,
                    f"{name}() reads the wall clock; deterministic code "
                    f"must take time from the simulator's tick/epoch")


@register
class GlobalRngRule(Rule):
    id = "global-rng"
    description = ("forbid process-global randomness (random.*, os.urandom, "
                   "uuid, unseeded numpy.random) in deterministic packages")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if not module.in_packages(config.DETERMINISM_PACKAGES):
            return
        for call, name in _calls(module):
            if name is None or name in config.GLOBAL_RNG_ALLOWED:
                continue
            if any(name == p or name.startswith(p)
                   for p in config.GLOBAL_RNG_PREFIXES):
                yield self.finding(
                    module, call,
                    f"{name}() draws from process-global randomness; "
                    f"{config.RNG_HINT}")


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@register
class UnsortedIterRule(Rule):
    id = "unsorted-iter"
    description = ("forbid iterating sets or unsorted directory listings "
                   "in plan-producing modules")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if not module.in_packages(config.PLAN_PACKAGES):
            return
        aliases = import_alias_map(module.tree)
        for node, parent in walk_with_parents(module.tree):
            # for x in {…} / {… for …} / set(…)
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self._set_finding(module, node.iter)
            elif isinstance(node, ast.comprehension) and _is_set_expr(node.iter):
                yield self._set_finding(module, node.iter)
            elif isinstance(node, ast.Call):
                name = resolve_call_name(node.func, aliases)
                if name in config.LISTING_CALLS and not self._sorted_parent(parent):
                    yield self.finding(
                        module, node,
                        f"{name}() order is OS-dependent; wrap the call in "
                        f"sorted(...) before anything iterates it")

    @staticmethod
    def _sorted_parent(parent: ast.AST | None) -> bool:
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "sorted")

    def _set_finding(self, module: ModuleInfo, node: ast.expr) -> Finding:
        return self.finding(
            module, node,
            "iteration order of a set is arbitrary and feeds the epoch "
            "plan; iterate sorted(...) instead")


@register
class StrHashRule(Rule):
    id = "str-hash"
    description = ("forbid hash() on strings/objects in deterministic "
                   "packages (salted per process; use util.rng.derive_seed)")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if not module.in_packages(config.DETERMINISM_PACKAGES):
            return
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id == "hash" and node.args
                    and not self._numeric(node.args[0])):
                yield self.finding(
                    module, node,
                    "hash() is salted per process (PYTHONHASHSEED) and "
                    "differs across the worker pool; use "
                    "repro.util.rng.derive_seed for stable hashing")

    @staticmethod
    def _numeric(arg: ast.expr) -> bool:
        return (isinstance(arg, ast.Constant)
                and isinstance(arg.value, (int, float))
                and not isinstance(arg.value, bool))
