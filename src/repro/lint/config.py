"""Declarative configuration of every shipped lint rule.

This module is data, not logic: the layer DAG, the determinism scopes and
the forbidden-call tables live here so that "what does the repo promise"
is readable (and reviewable) in one place, separate from the AST walking
that enforces it.

Layer model
-----------

``LAYER_DAG`` maps each first-level package under ``repro`` to the set of
sibling packages (or specific ``pkg.module`` entries) it may import.
Intra-package imports are always allowed; the top-level modules
(``repro``, ``repro.cli``, ``repro.__main__``) sit above every layer and
may import anything. The table is module-granular where the package
graph is deliberately not a DAG:

- ``core`` and ``balancers`` are mutually stratified: balancers (pure
  policies) build on all of ``core``, while ``core`` reaches back only to
  the policy *interfaces* (``balancers.base``) and the shared candidate
  enumeration (``balancers.candidates``);
- ``core`` may read the mechanism's passive data carriers
  (``cluster.stats``, ``cluster.messages``) but never the simulator —
  the policy/mechanism split the golden traces rest on;
- ``workloads`` drives the cluster only through ``cluster.router``.

``repro.cluster.simulator`` appears in no allowlist outside ``cluster``
and ``experiments``: policies consume a ClusterView and return an
EpochPlan instead of touching the simulator (see
``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

__all__ = [
    "LAYER_DAG",
    "ROOT_MODULES",
    "DETERMINISM_PACKAGES",
    "PLAN_PACKAGES",
    "FLOAT_EQ_MODULES",
    "WALL_CLOCK_CALLS",
    "GLOBAL_RNG_PREFIXES",
    "GLOBAL_RNG_ALLOWED",
    "LISTING_CALLS",
    "RNG_HINT",
    "POLICY_BASE_CLASSES",
    "POLICY_ENTRY_METHODS",
    "MEMO_ATTRS",
    "SINK_ATTRS",
    "MUTATING_METHODS",
    "IO_CALLS",
    "IO_CALL_PREFIXES",
    "IO_METHOD_NAMES",
    "CONCURRENCY_PACKAGES",
    "ASYNC_BLOCKING_CALLS",
    "ASYNC_BLOCKING_PREFIXES",
]

#: package -> packages/modules it may import (``repro.`` prefix implied).
#: An entry like ``"cluster.stats"`` whitelists exactly that module.
LAYER_DAG: dict[str, frozenset[str]] = {
    "util": frozenset(),
    "namespace": frozenset({"util"}),
    "obs": frozenset({"util", "namespace"}),
    "workloads": frozenset({"util", "namespace", "cluster.router"}),
    "core": frozenset({
        "util", "namespace", "obs",
        "cluster.stats", "cluster.messages",
        "balancers.base", "balancers.candidates",
    }),
    "balancers": frozenset({"util", "namespace", "obs", "core"}),
    #: the columnar serve kernel: batched mechanism code under the
    #: simulator, reaching sideways only into the cluster's passive
    #: parts (router/MDS/stats — never the simulator, which *drives* it)
    "kernel": frozenset({
        "util", "namespace", "workloads",
        "cluster.router", "cluster.mds", "cluster.stats", "cluster.osd",
    }),
    "cluster": frozenset({"util", "namespace", "obs", "core", "workloads",
                          "kernel"}),
    #: fault injection: pure schedules + a controller that drives the
    #: simulator through its public seams via duck typing — it declares
    #: no dependency on ``cluster`` (the simulator binds the controller,
    #: never the reverse)
    "chaos": frozenset({"util", "obs"}),
    "experiments": frozenset({
        "util", "namespace", "obs", "core", "balancers", "cluster",
        "workloads", "chaos",
    }),
    #: the linter itself: engine/rules plus the runtime schema hooks it
    #: cross-checks (obs.prom's metric-name grammar)
    "lint": frozenset({"util", "obs"}),
    #: the live telemetry plane (``repro serve``): sits above the whole
    #: experiment stack like the CLI does, but as a package — it drives
    #: the simulator incrementally, taps the trace, and serves HTTP. It
    #: is deliberately *not* a determinism package: the service reads the
    #: wall clock (throughput gauges, stream timeouts), while the
    #: simulation it drives stays deterministic (golden-gated).
    "serve": frozenset({
        "util", "namespace", "obs", "core", "balancers", "cluster",
        "workloads", "chaos", "experiments",
    }),
}

#: modules above every layer (the CLI face of the package)
ROOT_MODULES = frozenset({"repro", "repro.cli", "repro.__main__"})

#: packages whose code must be deterministic: no wall clock, no global
#: RNG, no per-process ``hash()`` — a fixed seed must replay byte-for-byte
DETERMINISM_PACKAGES = ("core", "balancers", "obs", "chaos", "kernel")

#: packages whose modules produce (or feed) an EpochPlan: iteration order
#: here becomes migration order, so unordered containers are forbidden
PLAN_PACKAGES = ("core", "balancers")

#: modules (path suffixes) where ``==``/``!=`` on float expressions is
#: forbidden — the numeric kernel of the IF model and its predictors
FLOAT_EQ_MODULES = (
    "repro/core/if_model.py",
    "repro/core/mindex.py",
    "repro/core/regression.py",
)

#: fully-resolved call targets that read the wall clock.
#: ``time.perf_counter``/``perf_counter_ns`` stay allowed: they feed the
#: opt-in wall-clock span profiler and never a decision.
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: dotted-name prefixes whose calls draw from process-global randomness
GLOBAL_RNG_PREFIXES = ("random.", "os.urandom", "uuid.", "numpy.random.")

#: exceptions under the prefixes above: explicitly seeded constructors
GLOBAL_RNG_ALLOWED = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
})

#: directory-listing calls whose OS-dependent order must pass through
#: ``sorted()`` before anything iterates it
LISTING_CALLS = frozenset({"os.listdir", "os.scandir"})

#: appended to determinism findings so the fix is one import away
RNG_HINT = "use repro.util.rng.substream(seed, *names) for seeded streams"

# --------------------------------------------------------- effect inference
#: base classes whose subclasses are *policies*: every function reachable
#: from their entry methods must be pure over the ClusterView they receive
POLICY_BASE_CLASSES = frozenset({"repro.balancers.base.Balancer"})

#: the policy seam's entry points (each receives the view as its second
#: parameter; see ``repro.balancers.base.Balancer``)
POLICY_ENTRY_METHODS = ("setup", "on_epoch")

#: attributes that are content-transparent memo caches: writing through
#: them does not change what the owner *means* (ClusterView._lazy is
#: ``field(compare=False)`` — a cache of derived values, not state)
MEMO_ATTRS = frozenset({"_lazy"})

#: view attributes that are declared *sinks*: mutation through them is the
#: sanctioned way policies report (the metrics registry) or allocate
#: decision ids (the run-wide DecisionIds counter)
SINK_ATTRS = frozenset({"metrics", "decision_ids"})

#: method names that mutate their receiver in place
MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
    "appendleft", "popleft", "fill", "resize", "put", "itemset",
})

#: fully-resolved call targets that perform I/O (effect tag ``io``)
IO_CALLS = frozenset({
    "open", "print", "input",
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.makedirs",
    "os.mkdir", "os.rmdir", "os.listdir", "os.scandir",
})

#: dotted-name prefixes whose calls perform I/O
IO_CALL_PREFIXES = (
    "shutil.", "socket.", "urllib.", "http.", "subprocess.",
    "sys.stdout.", "sys.stderr.", "sys.stdin.",
)

#: receiver-method names that perform I/O regardless of receiver type
#: (pathlib-style file accessors; receivers are untyped to the linter)
IO_METHOD_NAMES = frozenset({
    "write_text", "read_text", "write_bytes", "read_bytes",
    "mkdir", "rmdir", "unlink", "touch", "urlopen",
})

# ------------------------------------------------------ concurrency rules
#: packages whose classes are checked for lock discipline (`guarded-by`):
#: the threaded live-service plane
CONCURRENCY_PACKAGES = ("serve",)

#: fully-resolved call targets that block the event loop inside
#: ``async def`` (the asyncio driver must stay responsive)
ASYNC_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "urllib.request.urlopen",
    "socket.create_connection",
    "subprocess.run",
    "subprocess.check_output",
    "subprocess.check_call",
    "subprocess.call",
})

#: dotted prefixes treated as blocking inside ``async def`` (sync HTTP
#: client libraries)
ASYNC_BLOCKING_PREFIXES = ("requests.",)
