"""Lock-discipline race detection for the threaded serve plane.

``repro serve`` mixes three kinds of threads over shared objects: the
asyncio driver (one coroutine advancing the simulator), the
``ThreadingHTTPServer``'s per-connection handler threads, and the
simulation thread publishing trace events through the
:class:`~repro.serve.bus.EventBus`. The classes on that boundary declare
their locking discipline inline and this module checks it statically.

Annotation grammar (trailing comments):

``# guarded-by: self.<lock>``
    on a ``self.attr = ...`` line in ``__init__``: every read and write of
    the attribute outside ``__init__`` must happen while ``self.<lock>``
    is held.
``# guarded-by: self.<lock> (writes)``
    copy-on-write discipline: writes require the lock, reads are
    lock-free (the referent must be replaced, never mutated).
``# guarded-by: none — <reason>``
    deliberately unguarded shared state; the reason is mandatory.
``# holds-lock: self.<lock>``
    on a ``def`` line: the method asserts its caller already holds the
    lock. Its body is analyzed with the lock in the held set, and every
    call site is checked to actually hold it.

Unannotated attributes are inferred: assigned only in ``__init__`` means
immutable-after-init (reads are safe anywhere); otherwise every access
site must agree on one dominating ``with self.<lock>:`` block, and
disagreement is reported at the unguarded sites.

The analysis is cross-object along annotated parameters: a function
taking ``service: SimulatorService`` (including classes nested inside it,
like the HTTP handler factory) has ``service.attr`` accesses checked
against ``SimulatorService``'s discipline, with the guard rebased onto
``service``. Property accesses are exempt at the use site — the property
*body* is checked as a method of its own class instead.

A second rule keeps the asyncio driver honest: blocking calls inside
``async def`` (``time.sleep``, sync HTTP, ``subprocess``), bare
``lock.acquire()`` without a timeout, and ``await`` while holding a lock
are all reported (see :data:`repro.lint.config.ASYNC_BLOCKING_CALLS`).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.lint import config
from repro.lint.callgraph import (
    CallGraph,
    ClassNode,
    FunctionNode,
    _annotation_class,
    _Resolver,
    get_callgraph,
    root_of,
)
from repro.lint.engine import ModuleInfo, Project, Rule, register
from repro.lint.findings import Finding

__all__ = ["GuardedByRule", "AsyncBlockingRule", "GuardSpec", "guard_table",
           "holds_locks"]

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*(?P<spec>.+?)\s*$")
_HOLDS_RE = re.compile(r"#\s*holds-lock:\s*self\.(?P<lock>\w+)")
_NONE_RE = re.compile(r"^none\s*(?:—|--|-)\s*\S")
_LOCK_RE = re.compile(r"^self\.(?P<lock>\w+)\s*(?P<writes>\(writes\))?\s*$")


@dataclass(frozen=True)
class GuardSpec:
    """Discipline of one shared attribute."""

    attr: str
    #: lock attribute name on the owner (``lock`` for ``self.lock``);
    #: ``None`` for exempt attributes
    lock: str | None
    #: only writes need the lock (copy-on-write)
    writes_only: bool = False
    #: "annotated" | "annotated-none" | "annotated-none-missing-reason"
    #: | "annotated-malformed"
    origin: str = "annotated"
    line: int = 0


@dataclass(frozen=True)
class _Access:
    attr: str
    line: int
    write: bool
    #: held locks at the access, as (base name, lock attr) pairs
    held: frozenset[tuple[str, str]]
    #: local name the owner is bound to at this site (``self``/param name)
    base: str
    #: display path of the module the access appears in
    display: str


def _line_comment_spec(module: ModuleInfo, line: int) -> str | None:
    """Guard spec on the assignment's line, or in the contiguous comment
    block immediately above it."""
    lines = module.source.splitlines()
    if not 1 <= line <= len(lines):
        return None
    m = _GUARDED_RE.search(lines[line - 1])
    if m:
        return m.group("spec")
    i = line - 2
    while i >= 0 and lines[i].lstrip().startswith("#"):
        m = _GUARDED_RE.search(lines[i])
        if m:
            return m.group("spec")
        i -= 1
    return None


def holds_locks(fn: FunctionNode) -> frozenset[str]:
    """Lock attrs a ``# holds-lock:`` comment on the def line asserts."""
    lines = fn.module.source.splitlines()
    line = fn.node.lineno
    if 1 <= line <= len(lines):
        return frozenset(m.group("lock")
                         for m in _HOLDS_RE.finditer(lines[line - 1]))
    return frozenset()


def _init_assignments(cls: ClassNode) -> Iterator[tuple[str, int]]:
    """(attribute, line) for every ``self.x = ...`` in ``__init__``."""
    init = None
    for stmt in cls.node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            init = stmt
            break
    if init is None:
        return
    self_name = init.args.args[0].arg if init.args.args else "self"

    def targets(t: ast.expr) -> Iterator[tuple[str, int]]:
        if isinstance(t, ast.Attribute) and \
                isinstance(t.value, ast.Name) and t.value.id == self_name:
            yield t.attr, t.lineno
        elif isinstance(t, (ast.Tuple, ast.List)):
            for elt in t.elts:
                yield from targets(elt)

    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                yield from targets(t)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            yield from targets(node.target)


class _AccessScanner:
    """Collect attribute accesses on tracked bases, with held-lock sets."""

    def __init__(self, bases: frozenset[str],
                 entry_held: frozenset[tuple[str, str]],
                 display: str) -> None:
        self.bases = bases
        self.display = display
        self.accesses: list[_Access] = []
        #: (base, method, line, held) — holds-lock contract call sites
        self.calls: list[tuple[str, str, int, frozenset[tuple[str, str]]]] = []
        self.awaits: list[tuple[int, frozenset[tuple[str, str]]]] = []
        self._held = set(entry_held)

    # ---------------------------------------------------------------- record
    def _record(self, attr: str, base: str, line: int, write: bool) -> None:
        self.accesses.append(_Access(
            attr=attr, line=line, write=write,
            held=frozenset(self._held), base=base, display=self.display))

    def _scan_expr(self, expr: ast.expr, store: bool = False) -> None:
        if store:
            # a subscript store reaches *into* the bound object:
            # ``self.x[k] = v`` writes x's referent even though the
            # Attribute node itself is a Load
            r = root_of(expr)
            if r is not None and r.base in self.bases and r.chain and \
                    isinstance(expr, ast.Subscript):
                self._record(r.chain[0], r.base, expr.lineno, True)
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id in self.bases:
                write = store and isinstance(node.ctx, (ast.Store, ast.Del))
                self._record(node.attr, node.value.id, node.lineno, write)
            elif isinstance(node, ast.Call):
                self._scan_call(node)
            elif isinstance(node, ast.Await):
                self.awaits.append((node.lineno, frozenset(self._held)))

    def _scan_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            recv = root_of(func.value)
            if recv is not None and recv.base in self.bases:
                if func.attr in config.MUTATING_METHODS and recv.chain:
                    # self.x.append(...) mutates the x binding's referent
                    self._record(recv.chain[0], recv.base,
                                 node.lineno, True)
                elif not recv.chain:
                    # self.meth(...) / service.meth(...): contract check
                    self.calls.append((recv.base, func.attr, node.lineno,
                                       frozenset(self._held)))

    # --------------------------------------------------------------- walking
    def scan(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._scan_stmt(stmt)

    def _with_locks(self, items: list[ast.withitem]) -> list[tuple[str, str]]:
        out = []
        for item in items:
            r = root_of(item.context_expr)
            if r is not None and len(r.chain) == 1 and \
                    "lock" in r.chain[0].lower():
                out.append((r.base, r.chain[0]))
        return out

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are scanned as their own functions
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquired = self._with_locks(stmt.items)
            for item in stmt.items:
                self._scan_expr(item.context_expr)
            self._held.update(acquired)
            for inner in stmt.body:
                self._scan_stmt(inner)
            self._held.difference_update(acquired)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value)
            for t in stmt.targets:
                self._scan_expr(t, store=True)
            return
        if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if stmt.value is not None:
                self._scan_expr(stmt.value)
            self._scan_expr(stmt.target, store=True)
            return
        if isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                self._scan_expr(t, store=True)
            return
        # expressions hanging off this statement, then child blocks
        for _fname, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                self._scan_expr(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        self._scan_expr(item)
                    elif isinstance(item, ast.stmt):
                        self._scan_stmt(item)
                    elif isinstance(item, ast.excepthandler):
                        for inner in item.body:
                            self._scan_stmt(inner)


def guard_table(cls: ClassNode, module: ModuleInfo) -> dict[str, GuardSpec]:
    """Annotated guard specs for ``cls``; unannotated attrs are absent
    (their discipline is inferred from access sites)."""
    table: dict[str, GuardSpec] = {}
    for attr, line in _init_assignments(cls):
        spec = _line_comment_spec(module, line)
        if spec is None or attr in table:
            continue
        if spec.strip().startswith("none"):
            origin = "annotated-none" if _NONE_RE.match(spec.strip()) \
                else "annotated-none-missing-reason"
            table[attr] = GuardSpec(attr=attr, lock=None,
                                    origin=origin, line=line)
            continue
        m = _LOCK_RE.match(spec.strip())
        if m:
            table[attr] = GuardSpec(
                attr=attr, lock=m.group("lock"),
                writes_only=m.group("writes") is not None, line=line)
        else:
            table[attr] = GuardSpec(attr=attr, lock=None,
                                    origin="annotated-malformed", line=line)
    return table


@dataclass
class _ClassReport:
    cls: ClassNode
    specs: dict[str, GuardSpec]
    #: attribute -> all accesses across methods (``__init__`` excluded)
    accesses: dict[str, list[_Access]] = field(default_factory=dict)
    #: (base, method, line, held, display) holds-lock call sites
    calls: list[tuple[str, str, int, frozenset[tuple[str, str]], str]] = \
        field(default_factory=list)


def _concurrency_classes(project: Project) -> list[ClassNode]:
    graph = get_callgraph(project)
    return [graph.classes[qn] for qn in sorted(graph.classes)
            if graph.classes[qn].module.in_packages(
                config.CONCURRENCY_PACKAGES)]


@register
class GuardedByRule(Rule):
    id = "guarded-by"
    description = ("shared attributes of serve-plane classes must follow "
                   "their declared (or inferred) lock discipline")

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = get_callgraph(project)
        classes = _concurrency_classes(project)
        class_by_qn = {c.qualname: c for c in classes}
        reports: dict[str, _ClassReport] = {}
        for cls in classes:
            specs = guard_table(cls, cls.module)
            reports[cls.qualname] = _ClassReport(cls=cls, specs=specs)
            short = cls.qualname.rsplit(".", 1)[-1]
            for attr in sorted(specs):
                spec = specs[attr]
                if spec.origin == "annotated-malformed":
                    yield Finding(
                        path=cls.module.display, line=spec.line, col=1,
                        rule=self.id,
                        message=f"unparsable guarded-by annotation on "
                                f"{short}.{attr}; expected 'self.<lock>', "
                                f"'self.<lock> (writes)' or "
                                f"'none — <reason>'")
                elif spec.origin == "annotated-none-missing-reason":
                    yield Finding(
                        path=cls.module.display, line=spec.line, col=1,
                        rule=self.id,
                        message=f"guarded-by: none on {short}.{attr} needs "
                                f"a justifying reason "
                                f"('none — <why it is safe>')")
        # ---- collect accesses: own methods + annotated-param functions
        for cls in classes:
            rep = reports[cls.qualname]
            for mname in sorted(cls.methods):
                fq = cls.methods[mname]
                fn = graph.functions.get(fq)
                if fn is None or mname == "__init__":
                    continue
                if fn.class_qualname != cls.qualname:
                    continue  # inherited: analyzed in the defining class
                self_name = fn.params[0] if fn.params else "self"
                entry = frozenset(
                    (self_name, lk) for lk in holds_locks(fn))
                scanner = _AccessScanner(frozenset({self_name}), entry,
                                         fn.module.display)
                scanner.scan(fn.node.body)
                for acc in scanner.accesses:
                    rep.accesses.setdefault(acc.attr, []).append(acc)
                for base, meth, line, held in scanner.calls:
                    rep.calls.append((base, meth, line, held,
                                      fn.module.display))
        self._annotated_param_accesses(graph, class_by_qn, reports)
        # ---- judge each class
        for qn in sorted(reports):
            yield from self._judge(reports[qn], graph)

    def _annotated_param_accesses(
            self, graph: CallGraph, class_by_qn: dict[str, ClassNode],
            reports: dict[str, _ClassReport]) -> None:
        """Scan functions whose params are annotated with a tracked class
        (closures and nested classes included): cross-object discipline."""
        for fq in sorted(graph.functions):
            fn = graph.functions[fq]
            if not fn.module.in_packages(config.CONCURRENCY_PACKAGES):
                continue
            resolver = _Resolver(fn.module, graph.classes, graph.functions)
            tracked: dict[str, str] = {}
            args = fn.node.args
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                cq = _annotation_class(a.annotation, resolver)
                if cq in class_by_qn:
                    tracked[a.arg] = cq
            if not tracked:
                continue
            bases = frozenset(tracked)
            scanner = _AccessScanner(bases, frozenset(), fn.module.display)
            scanner.scan(fn.node.body)
            # nested classes inside this function close over the params
            for stmt in ast.walk(fn.node):
                if isinstance(stmt, ast.ClassDef):
                    for sub in stmt.body:
                        if isinstance(sub, (ast.FunctionDef,
                                            ast.AsyncFunctionDef)):
                            inner = _AccessScanner(bases, frozenset(),
                                                   fn.module.display)
                            inner.scan(sub.body)
                            scanner.accesses.extend(inner.accesses)
                            scanner.calls.extend(inner.calls)
            for acc in scanner.accesses:
                cq = tracked[acc.base]
                reports[cq].accesses.setdefault(acc.attr, []).append(acc)
            for base, meth, line, held in scanner.calls:
                reports[tracked[base]].calls.append(
                    (base, meth, line, held, fn.module.display))

    def _judge(self, rep: _ClassReport,
               graph: CallGraph) -> Iterable[Finding]:
        cls = rep.cls
        short = cls.qualname.rsplit(".", 1)[-1]
        init_attrs = {a for a, _ in _init_assignments(cls)}
        for attr in sorted(set(rep.accesses) | set(rep.specs)):
            if attr in cls.properties:
                continue  # property bodies are judged as methods
            if attr not in init_attrs:
                continue  # not this class's state (inherited/stdlib attr)
            spec = rep.specs.get(attr)
            accesses = rep.accesses.get(attr, [])
            if spec is not None and spec.lock is None:
                continue  # exempt (reason checked above)
            if spec is None:
                if not any(a.write for a in accesses):
                    continue  # immutable after __init__
                yield from self._infer(short, attr, accesses)
                continue
            suffix = " (writes)" if spec.writes_only else ""
            for acc in sorted(accesses, key=lambda a: (a.display, a.line)):
                if spec.writes_only and not acc.write:
                    continue
                if (acc.base, spec.lock) not in acc.held:
                    mode = "write to" if acc.write else "read of"
                    yield Finding(
                        path=acc.display, line=acc.line, col=1,
                        rule=self.id,
                        message=f"unguarded {mode} {short}.{attr} "
                                f"(guarded-by: self.{spec.lock}{suffix}); "
                                f"hold {acc.base}.{spec.lock} here")
        # holds-lock contracts at call sites
        for base, meth, line, held, display in sorted(
                rep.calls, key=lambda c: (c[4], c[2])):
            fq = cls.methods.get(meth)
            if fq is None or fq not in graph.functions:
                continue
            for lk in sorted(holds_locks(graph.functions[fq])):
                if (base, lk) not in held:
                    yield Finding(
                        path=display, line=line, col=1, rule=self.id,
                        message=f"call to {short}.{meth}() requires "
                                f"holding {base}.{lk} "
                                f"(# holds-lock contract)")

    def _infer(self, short: str, attr: str,
               accesses: list[_Access]) -> Iterable[Finding]:
        """No annotation: every access must agree on one held lock."""
        candidate: set[tuple[str, str]] | None = None
        for acc in accesses:
            held = {("self" if a == acc.base else a, lk)
                    for a, lk in acc.held}
            candidate = held if candidate is None else candidate & held
        if candidate:
            return  # one lock dominates every access: inferred guarded
        for acc in sorted(accesses, key=lambda a: (a.display, a.line)):
            norm_held = {("self" if a == acc.base else a, lk)
                         for a, lk in acc.held}
            if not norm_held:
                mode = "write to" if acc.write else "read of"
                yield Finding(
                    path=acc.display, line=acc.line, col=1, rule=self.id,
                    message=f"unguarded {mode} {short}.{attr}, which is "
                            f"written outside __init__; annotate it in "
                            f"__init__ (# guarded-by: self.<lock> or "
                            f"none — <reason>) or hold the dominating "
                            f"lock here")


@register
class AsyncBlockingRule(Rule):
    id = "async-blocking"
    description = ("async defs in the serve plane must not block the event "
                   "loop: no sync sleeps/HTTP/subprocess, no bare "
                   "lock.acquire(), no await while holding a lock")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if not module.in_packages(config.CONCURRENCY_PACKAGES):
            return
        graph = get_callgraph(project)
        for fq in sorted(graph.functions):
            fn = graph.functions[fq]
            if fn.module is not module or not fn.is_async:
                continue
            yield from self._check_async(fn, graph)

    def _check_async(self, fn: FunctionNode,
                     graph: CallGraph) -> Iterable[Finding]:
        for site in graph.calls.get(fn.qualname, ()):
            name = site.external
            if name is None:
                continue
            if name in config.ASYNC_BLOCKING_CALLS or any(
                    name.startswith(p)
                    for p in config.ASYNC_BLOCKING_PREFIXES):
                yield self.finding(
                    fn.module, _node_at(fn, site.line),
                    f"blocking call {name}() inside async def "
                    f"{fn.node.name}; it stalls every coroutine on the "
                    f"loop — use the asyncio equivalent or a thread")
        self_name = fn.params[0] if fn.params else "self"
        scanner = _AccessScanner(frozenset({self_name}), frozenset(),
                                 fn.module.display)
        scanner.scan(fn.node.body)
        for line, held in scanner.awaits:
            for base, lk in sorted(held):
                yield Finding(
                    path=fn.module.display, line=line, col=1, rule=self.id,
                    message=f"await while holding {base}.{lk} in async def "
                            f"{fn.node.name}: the lock blocks other "
                            f"threads for the whole suspension — release "
                            f"before awaiting")
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "acquire":
                r = root_of(node.func.value)
                if r is None or not any("lock" in seg.lower()
                                        for seg in (r.base, *r.chain)):
                    continue
                if not {kw.arg for kw in node.keywords} & \
                        {"timeout", "blocking"}:
                    yield self.finding(
                        fn.module, node,
                        f"unbounded lock.acquire() inside async def "
                        f"{fn.node.name}; pass timeout= (or use a with "
                        f"block outside the coroutine)")


class _Loc:
    def __init__(self, line: int) -> None:
        self.lineno = line
        self.col_offset = 0


def _node_at(fn: FunctionNode, line: int) -> ast.AST:
    for node in ast.walk(fn.node):
        if getattr(node, "lineno", None) == line and \
                isinstance(node, ast.Call):
            return node
    return _Loc(line)  # type: ignore[return-value]
