"""Text and JSON renderings of a :class:`LintResult`.

The text form is one ``path:line:col: severity: message [rule-id]`` line
per finding plus a one-line summary — grep- and editor-jump-friendly. The
JSON form is a single object (``findings``/``checked``/``exit_code``)
whose findings round-trip through :meth:`Finding.from_dict`; CI uploads
it as an artifact.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.findings import Finding

__all__ = ["render_text", "render_json", "render_github", "parse_json"]


def render_text(result: LintResult) -> str:
    lines = [
        f"{f.location}: {f.severity}: {f.message} [{f.rule}]"
        for f in result.findings
    ]
    n_err = len(result.errors)
    n_warn = len(result.findings) - n_err
    lines.append(
        f"checked {result.checked} module(s): "
        f"{n_err} error(s), {n_warn} warning(s)")
    return "\n".join(lines) + "\n"


def _gh_escape(value: str, *, property: bool = False) -> str:
    """GitHub Actions workflow-command escaping (their own rules: ``%``,
    CR and LF everywhere; ``:`` and ``,`` additionally in properties)."""
    out = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property:
        out = out.replace(":", "%3A").replace(",", "%2C")
    return out


def render_github(result: LintResult) -> str:
    """One ``::error``/``::warning`` workflow command per finding, so a
    CI step's findings annotate the PR diff inline. The trailing summary
    line is plain text (GitHub ignores non-command lines)."""
    lines = []
    for f in result.findings:
        level = "error" if f.severity == "error" else "warning"
        lines.append(
            f"::{level} file={_gh_escape(f.path, property=True)},"
            f"line={f.line},col={f.col},"
            f"title={_gh_escape(f'repro-lint {f.rule}', property=True)}"
            f"::{_gh_escape(f.message)}")
    n_err = len(result.errors)
    n_warn = len(result.findings) - n_err
    lines.append(
        f"checked {result.checked} module(s): "
        f"{n_err} error(s), {n_warn} warning(s)")
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    payload = {
        "findings": [f.to_dict() for f in result.findings],
        "checked": result.checked,
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def parse_json(text: str) -> list[Finding]:
    """Findings back out of :func:`render_json` output (the CI artifact)."""
    payload = json.loads(text)
    return [Finding.from_dict(d) for d in payload["findings"]]
