"""Float-equality rule for the numeric kernel.

``float-eq`` forbids ``==``/``!=`` where either side is statically
float-valued — a float literal, a true division, a ``float(...)``/
``math.*`` call — in the modules listed in
:data:`repro.lint.config.FLOAT_EQ_MODULES`: the IF model and its
predictors. There, an exact-equality guard is either a masked domain
check (write the inequality it means, e.g. ``cov <= 0.0``) or a latent
platform-dependence bug; ``math.isclose`` is the sanctioned escape hatch
when closeness really is the question.
"""

from __future__ import annotations

import ast
import pathlib
from collections.abc import Iterable

from repro.lint.config import FLOAT_EQ_MODULES
from repro.lint.engine import (
    ModuleInfo,
    Project,
    Rule,
    import_alias_map,
    register,
    resolve_call_name,
)
from repro.lint.findings import Finding

__all__ = ["FloatEqRule"]

_FLOAT_CALLS = ("float", "math.", "abs")


def _in_scope(module: ModuleInfo) -> bool:
    parts = module.path.parts
    for suffix in FLOAT_EQ_MODULES:
        want = pathlib.PurePosixPath(suffix).parts
        if parts[-len(want):] == want:
            return True
    return False


def _is_floatish(node: ast.expr, aliases: dict[str, str]) -> bool:
    """Statically float-valued: literal, true division, float()/math.*."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return (_is_floatish(node.left, aliases)
                or _is_floatish(node.right, aliases))
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand, aliases)
    if isinstance(node, ast.Call):
        name = resolve_call_name(node.func, aliases)
        if name is None:
            return False
        return (name == "float" or name.startswith("math.")
                or (name == "abs" and any(_is_floatish(a, aliases)
                                          for a in node.args)))
    return False


@register
class FloatEqRule(Rule):
    id = "float-eq"
    description = ("no ==/!= against float expressions in the numeric "
                   "kernel (if_model, mindex, regression)")

    def check_module(self, module: ModuleInfo,
                     project: Project) -> Iterable[Finding]:
        if not _in_scope(module):
            return
        aliases = import_alias_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_floatish(left, aliases) or _is_floatish(right, aliases):
                    tok = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        module, node,
                        f"{tok} against a float expression; write the "
                        f"inequality the guard means (e.g. <= 0.0) or use "
                        f"math.isclose")
