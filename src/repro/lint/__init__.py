"""repro lint: AST-based invariant linting for the reproduction.

The engine (:mod:`repro.lint.engine`) walks Python sources and runs every
registered :class:`~repro.lint.engine.Rule`; the shipped rules enforce
the determinism contract, the layer DAG, the trace/metric schema closure
and float-equality hygiene (see ``docs/STATIC_ANALYSIS.md``). Entry
points: ``repro lint [PATHS]`` on the command line, or
:func:`repro.lint.engine.lint_paths` from code.
"""

from repro.lint.baseline import (
    check_baseline,
    fix_suppressions,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    LintResult,
    all_rules,
    build_project,
    lint_paths,
    rule_ids,
)
from repro.lint.findings import ERROR, WARNING, Finding, Severity
from repro.lint.reporters import (
    parse_json,
    render_github,
    render_json,
    render_text,
)

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "Severity",
    "LintResult",
    "all_rules",
    "build_project",
    "lint_paths",
    "rule_ids",
    "parse_json",
    "render_github",
    "render_json",
    "render_text",
    "check_baseline",
    "fix_suppressions",
    "load_baseline",
    "write_baseline",
]
