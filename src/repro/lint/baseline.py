"""Findings baseline ratchet and stale-suppression autofix.

New rule families land strict without a mass of inline suppressions: the
baseline file (``repro lint --baseline write``, committed as
``lint-baseline.json``) records today's accepted findings, and CI runs
``repro lint --baseline check``, which fails only on findings *not* in
the baseline. Fixing an accepted finding shrinks the next ``write`` —
the file only ever ratchets downward in review.

Baseline entries are keyed ``(path, rule, message)`` with a count, **no
line numbers**: unrelated edits that shift a finding up or down the file
do not invalidate the baseline, while any change to what the finding
says (or a second instance of it) does.

:func:`fix_suppressions` is the other half of keeping the tree honest:
it deletes inline ``# repro-lint: disable=`` comments the engine
reported as matching nothing (see
``LintResult.unused_suppressions``).
"""

from __future__ import annotations

import json
import pathlib
import re
from collections import Counter

from repro.lint.engine import LintResult
from repro.lint.findings import Finding

__all__ = [
    "baseline_key",
    "write_baseline",
    "load_baseline",
    "check_baseline",
    "fix_suppressions",
]

BASELINE_VERSION = 1
DEFAULT_BASELINE = "lint-baseline.json"


def baseline_key(f: Finding) -> tuple[str, str, str]:
    """Line-number-free identity of a finding for ratcheting."""
    return (f.path, f.rule, f.message)


def write_baseline(result: LintResult, path: str | pathlib.Path) -> int:
    """Persist the result's findings as the accepted baseline; returns
    the number of distinct entries written."""
    counts = Counter(baseline_key(f) for f in result.findings)
    entries = [
        {"path": p, "rule": r, "message": m, "count": n}
        for (p, r, m), n in sorted(counts.items())
    ]
    doc = {"version": BASELINE_VERSION, "findings": entries}
    pathlib.Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return len(entries)


def load_baseline(path: str | pathlib.Path) -> Counter:
    """The committed baseline as a key -> accepted-count Counter."""
    doc = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {doc.get('version')!r}; this "
            f"linter reads version {BASELINE_VERSION} — regenerate with "
            f"'repro lint --baseline write'")
    counts: Counter = Counter()
    for entry in doc.get("findings", []):
        counts[(entry["path"], entry["rule"], entry["message"])] = \
            int(entry["count"])
    return counts


def check_baseline(result: LintResult, path: str | pathlib.Path,
                   ) -> tuple[list[Finding], list[tuple[str, str, str]]]:
    """Split the result against the baseline.

    Returns ``(new, stale)``: findings beyond the accepted counts (these
    fail the run), and baseline keys the tree no longer produces (these
    only suggest a fresh ``--baseline write``)."""
    accepted = load_baseline(path)
    budget = Counter(accepted)
    new: list[Finding] = []
    for f in sorted(result.findings):
        key = baseline_key(f)
        if budget[key] > 0:
            budget[key] -= 1
        else:
            new.append(f)
    seen = Counter(baseline_key(f) for f in result.findings)
    stale = sorted(k for k, n in accepted.items() if seen[k] < n)
    return new, stale


# ------------------------------------------------------------ suppression fix
_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>[A-Za-z0-9_\-]+"
    r"(?:\s*,\s*[A-Za-z0-9_\-]+)*)")


def fix_suppressions(
        unused: list[tuple[pathlib.Path, int, str]]) -> int:
    """Delete unused rule ids from inline suppression comments in place.

    A directive left with no ids loses the whole comment; a line left
    holding nothing but whitespace is removed. Returns the number of ids
    deleted. Entries are grouped per file and applied bottom-up so line
    numbers stay valid during editing."""
    by_file: dict[pathlib.Path, list[tuple[int, str]]] = {}
    for path, line, rule_id in unused:
        by_file.setdefault(path, []).append((line, rule_id))
    removed = 0
    for path in sorted(by_file):
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        for line_no, rule_id in sorted(by_file[path], reverse=True):
            if not 1 <= line_no <= len(lines):
                continue
            text = lines[line_no - 1]
            m = _DIRECTIVE_RE.search(text)
            if m is None:
                continue
            ids = [i.strip() for i in m.group("ids").split(",")]
            if rule_id not in ids:
                continue
            ids.remove(rule_id)
            removed += 1
            if ids:
                new_text = (text[:m.start()]
                            + f"# repro-lint: disable={','.join(ids)}"
                            + text[m.end():])
            else:
                # drop from the directive's own '#' to end of line; any
                # trailing justification goes with it
                eol = "\n" if text.endswith("\n") else ""
                new_text = text[:m.start()].rstrip() + eol
                if not new_text.strip():
                    del lines[line_no - 1]
                    continue
            lines[line_no - 1] = new_text
        path.write_text("".join(lines), encoding="utf-8")
    return removed
