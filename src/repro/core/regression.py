"""Future-load prediction for importers (paper §3.2, Algorithm 1 ``fld``).

A short linear regression over the recent epoch-load history predicts the
next epoch's load. Algorithm 1 refuses to assign the importer role — or
shrinks the import amount — when the importer's *own* load is already
trending up enough to close its gap to the mean.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.util.stats import linear_regression_predict

__all__ = ["predict_future_load", "DEFAULT_HISTORY"]

DEFAULT_HISTORY = 5


def predict_future_load(history: Sequence[float], window: int = DEFAULT_HISTORY) -> float:
    """Predicted next-epoch load from the last ``window`` observations."""
    if window < 1:
        raise ValueError("window must be >= 1")
    recent = list(history)[-window:]
    return linear_regression_predict(recent, steps_ahead=1)
