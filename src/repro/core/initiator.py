"""The Migration Initiator: trigger + role/amount decision (paper §3.2).

Per epoch the initiator receives each MDS's load (the N-to-1
``ImbalanceState`` message), computes the cluster IF, and — only when IF
exceeds the trigger threshold — runs Algorithm 1 to partition MDSs into
exporters and importers and pair their demands into the export matrix ``E``.

Two anti-over-migration mechanisms come straight from the paper:

- per-epoch migration capacity ``Cap`` bounds each MDS's export and import
  demand (``eld``/``ild``),
- an importer's predicted future load (``fld``, linear regression) shrinks
  its import capacity: load that is coming anyway must not be migrated in.

One addition the paper describes in prose ("the lag effects of metadata
migration have not been taken into consideration [by vanilla], leading to
over-migration"): loads are adjusted by migrations already planned or in
flight before roles are decided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.messages import ImbalanceState, MigrationDecision, wire_size
from repro.core.if_model import imbalance_factor
from repro.core.regression import predict_future_load
from repro.obs.events import NO_DECISION, EpochSkipped, IfComputed, RoleAssigned
from repro.obs.registry import MetricsRegistry
from repro.obs.tracelog import TraceSink
from repro.util.stats import coefficient_of_variation

__all__ = ["MdsLoad", "decide_roles", "MigrationInitiator", "InitiatorConfig"]


@dataclass
class MdsLoad:
    """Per-MDS input/output record of Algorithm 1."""

    rank: int
    cld: float  # current load (IOPS)
    fld: float  # predicted next-epoch load
    eld: float = 0.0  # export demand (set for exporters)
    ild: float = 0.0  # import capacity (set for importers)


def decide_roles(stats: list[MdsLoad], threshold: float, cap: float,
                 caps: dict[int, float] | None = None) -> np.ndarray:
    """Paper Algorithm 1: returns the export matrix ``E``.

    ``E[i, j]`` is the load amount MDS ``i`` must ship to MDS ``j``, indexed
    by *rank* (the matrix is sized to the highest participating rank, so a
    stats list with gaps — failed ranks sit out the round — still indexes
    correctly). ``threshold`` is the squared relative-deviation gate ``L``;
    ``cap`` is the per-epoch migration capacity in load units. For
    heterogeneous clusters ``caps`` overrides the capacity per rank (the
    paper assumes homogeneity; a big MDS can absorb proportionally more
    per epoch than a small one).
    """
    n = len(stats)
    dim = max((m.rank for m in stats), default=-1) + 1
    E = np.zeros((dim, dim))
    if n < 2 or cap <= 0:
        return E
    mean = sum(m.cld for m in stats) / n
    if mean <= 0:
        return E
    exporters: list[MdsLoad] = []
    importers: list[MdsLoad] = []
    for m in stats:
        m_cap = cap if caps is None else caps.get(m.rank, cap)
        delta = abs(m.cld - mean)
        if (delta / mean) ** 2 <= threshold:
            continue
        if m.cld > mean:
            exporters.append(m)
            m.eld = min(m_cap, delta)
        elif m.fld - m.cld < delta:
            importers.append(m)
            m.ild = min(m_cap, delta - (m.fld - m.cld))
    # Pair the heaviest exporters with the roomiest importers first so the
    # largest gaps close in one epoch when possible.
    exporters.sort(key=lambda m: m.eld, reverse=True)
    importers.sort(key=lambda m: m.ild, reverse=True)
    for ex in exporters:
        for im in importers:
            if ex.eld > 0 and im.ild > 0:
                amount = min(ex.eld, im.ild)
                E[ex.rank, im.rank] = amount
                ex.eld -= amount
                im.ild -= amount
    return E


@dataclass
class InitiatorConfig:
    """Tunables of the initiator (defaults follow the paper where given)."""

    if_threshold: float = 0.075
    #: squared relative-deviation gate L of Algorithm 1
    deviation_threshold: float = 0.01
    #: per-epoch migration capacity as a fraction of the MDS capacity C
    cap_fraction: float = 1.0
    regression_window: int = 5
    urgency_smoothness: float = 0.2
    #: ablation switch: False degrades IF to plain normalized CoV (Eq. 1
    #: without Eq. 2), re-balancing benign imbalance too
    use_urgency: bool = True


class MigrationInitiator:
    """Centralized decision maker residing on one MDS (rank 0 by default)."""

    def __init__(self, capacity: float, config: InitiatorConfig | None = None,
                 *, trace: TraceSink | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self.config = config or InitiatorConfig()
        self.last_if = 0.0
        self.triggers = 0
        #: §3.4 overhead accounting: control-plane bytes in/out of the initiator
        self.bytes_received = 0
        self.bytes_sent = 0
        #: optional decision-trace / metrics sinks (the simulator's)
        self.trace = trace
        self.metrics = metrics

    def plan(
        self,
        epoch: int,
        loads: list[float],
        histories: list[list[float]],
        pending_out: list[float] | None = None,
        pending_in: list[float] | None = None,
        exclude: set[int] | frozenset[int] = frozenset(),
        capacities: list[float] | None = None,
    ) -> list[MigrationDecision]:
        """One epoch of decision making; returns per-exporter decisions.

        ``pending_out``/``pending_in`` are load amounts already queued or in
        flight by the migrator, subtracted from / added to the measured
        loads so the initiator plans against the post-migration picture.
        ``exclude`` ranks (failed MDSs) neither report load nor receive a
        role: their zero IOPS would otherwise read as import headroom and
        Algorithm 1 would ship subtrees to a dead daemon. ``capacities``
        optionally gives per-rank capacities for heterogeneous clusters;
        the IF normalizes by the largest and Algorithm 1's per-epoch cap
        scales per rank. Homogeneous capacities reproduce the default path
        exactly.
        """
        n = len(loads)
        alive = [i for i in range(n) if i not in exclude]
        for rank in alive:
            self.bytes_received += wire_size(ImbalanceState(rank, epoch, loads[rank]))
        cfg = self.config
        alive_loads = [loads[i] for i in alive]
        if capacities is not None and alive:
            cap_ref = max(capacities[i] for i in alive)
            caps = {i: cfg.cap_fraction * capacities[i] for i in alive}
        else:
            cap_ref = self.capacity
            caps = None
        plain_if = (coefficient_of_variation(alive_loads)
                    / math.sqrt(max(1, len(alive))))
        if cfg.use_urgency:
            self.last_if = imbalance_factor(alive_loads, cap_ref,
                                            cfg.urgency_smoothness)
        else:
            self.last_if = plain_if
        if_id = NO_DECISION
        if self.trace is not None:
            if_id = self.trace.next_decision_id()
            self.trace.emit(IfComputed(epoch=epoch, value=self.last_if,
                                       loads=tuple(loads), source="initiator",
                                       did=if_id))
        if self.metrics is not None:
            self.metrics.gauge("initiator.if").set(self.last_if)
        if self.last_if <= cfg.if_threshold:
            # "Why not": benign imbalance the urgency term (Eq. 2-3)
            # deliberately tolerated, or plain not-enough imbalance.
            reason = ("urgency_low"
                      if cfg.use_urgency and plain_if > cfg.if_threshold
                      else "if_below_threshold")
            self._skip(epoch, reason, parent=if_id)
            return []
        self.triggers += 1
        if self.metrics is not None:
            self.metrics.counter("initiator.triggers").inc()

        out = pending_out or [0.0] * n
        inn = pending_in or [0.0] * n
        stats = [
            MdsLoad(
                rank=i,
                cld=max(0.0, loads[i] - out[i] + inn[i]),
                fld=predict_future_load(histories[i], cfg.regression_window),
            )
            for i in alive
        ]
        E = decide_roles(stats, cfg.deviation_threshold,
                         cfg.cap_fraction * cap_ref, caps=caps)
        dim = E.shape[0]
        role_ids: dict[int, int] = {}  # exporter rank -> role_assigned did
        if self.trace is not None:
            for i in alive:
                if i >= dim:
                    continue
                exported = float(E[i].sum())
                imported = float(E[:, i].sum())
                if exported > 0:
                    role_ids[i] = self.trace.next_decision_id()
                    self.trace.emit(RoleAssigned(epoch=epoch, rank=i,
                                                 role="exporter", amount=exported,
                                                 did=role_ids[i], parent=if_id))
                if imported > 0:
                    self.trace.emit(RoleAssigned(
                        epoch=epoch, rank=i, role="importer", amount=imported,
                        did=self.trace.next_decision_id(), parent=if_id))
        decisions: list[MigrationDecision] = []
        for i in alive:
            if i >= dim:
                continue
            assignments = {j: float(E[i, j]) for j in range(dim) if E[i, j] > 0}
            if assignments:
                msg = MigrationDecision(i, epoch, assignments,
                                        decision_id=role_ids.get(i, NO_DECISION))
                self.bytes_sent += wire_size(msg)
                decisions.append(msg)
        if not decisions:
            # Trigger fired but Algorithm 1 produced an empty export matrix
            # (e.g. every deviation under gate L, or no viable importer).
            self._skip(epoch, "no_exporters", parent=if_id)
        return decisions

    def _skip(self, epoch: int, reason: str, parent: int) -> None:
        """Record the "why not" for an epoch the initiator declined to act."""
        if self.trace is not None:
            self.trace.emit(EpochSkipped(
                epoch=epoch, reason=reason, value=self.last_if,
                threshold=self.config.if_threshold,
                did=self.trace.next_decision_id(), parent=parent))
        if self.metrics is not None:
            self.metrics.counter("initiator.epoch_skipped", reason=reason).inc()
