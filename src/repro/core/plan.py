"""Declarative epoch plans: what a policy decided, not yet applied.

Balancers are pure policies: they consume a :class:`~repro.core.view.ClusterView`
snapshot and return an :class:`EpochPlan` — an *ordered* stream of actions
the mechanism layer (``Simulator``/``Migrator``/``AuthorityMap``) replays.
The ordering matters: trace events interleave with exports exactly the way
they would if the policy acted directly, which is what keeps the golden
decision traces byte-identical across the policy/mechanism split.

Planning may need to mutate authority state *speculatively* — the subtree
selector fragments a directory and then selects some of the resulting
frags. :class:`PlanningNamespace` provides that: a detached copy of the
authority map whose mutators both update the local overlay and record the
corresponding action, so the real map replays the same mutation at apply
time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.namespace.dirfrag import FragId
from repro.obs.events import NO_DECISION, DecisionIds
from repro.namespace.subtree import AuthorityMap
from repro.namespace.tree import NamespaceTree

__all__ = [
    "EmitEvent",
    "SplitDir",
    "PinSubtree",
    "ExportUnit",
    "PlanningNamespace",
    "EpochPlan",
]


@dataclass(frozen=True)
class EmitEvent:
    """Record one decision event on the simulator's trace."""

    event: object


@dataclass(frozen=True)
class SplitDir:
    """Fragment a directory into ``2**bits`` dirfrags."""

    dir_id: int
    bits: int


@dataclass(frozen=True)
class PinSubtree:
    """Delegate the subtree rooted at ``dir_id`` to ``rank``."""

    dir_id: int
    rank: int


@dataclass(frozen=True)
class ExportUnit:
    """Ship one subtree or dirfrag from ``src`` to ``dst``.

    ``did``/``parent`` carry decision provenance across the plan/apply
    seam: ``did`` is the pre-allocated id the migrator will stamp on the
    resulting ``migration_planned`` event, ``parent`` the selection (or
    role) decision this export fulfils.
    """

    src: int
    dst: int
    unit: int | FragId
    load: float
    did: int = NO_DECISION
    parent: int = NO_DECISION


class PlanningNamespace(AuthorityMap):
    """A plan-local authority overlay.

    Read methods (``subtree_roots``, ``frag_state``, ``extent``, ...) are
    inherited unchanged from :class:`AuthorityMap` and operate on detached
    copies, so planning never touches live cluster state. The two mutators
    a policy may use — :meth:`split_dir` and :meth:`set_subtree_auth` —
    update the overlay *and* append the matching action to the owning
    :class:`EpochPlan`, preserving exact mutation order for replay.
    """

    def __init__(self, tree: NamespaceTree, subtree_auth: dict[int, int],
                 frags: dict[int, tuple[int, dict[int, int]]],
                 plan: EpochPlan) -> None:
        super().__init__(tree)
        self._subtree_auth = dict(subtree_auth)
        self._frags = {d: (bits, dict(owners)) for d, (bits, owners) in frags.items()}
        self._plan = plan

    def split_dir(self, dir_id: int, bits: int) -> list[FragId]:
        frags = super().split_dir(dir_id, bits)
        self._plan.actions.append(SplitDir(dir_id, bits))
        return frags

    def set_subtree_auth(self, dir_id: int, mds: int) -> None:
        super().set_subtree_auth(dir_id, mds)
        self._plan.actions.append(PinSubtree(dir_id, mds))


class EpochPlan:
    """Ordered action stream produced by one policy invocation.

    Duck-compatible with :class:`~repro.obs.tracelog.TraceLog` on the
    ``emit`` side, so components written against a trace sink (e.g. the
    migration initiator) can write decision events straight into the plan.
    """

    def __init__(self, *, epoch: int, tree: NamespaceTree,
                 subtree_auth: dict[int, int],
                 frags: dict[int, tuple[int, dict[int, int]]],
                 queue_depths: dict[int, int] | None = None,
                 decision_ids: DecisionIds | None = None) -> None:
        self.epoch = epoch
        self.actions: list[object] = []
        self.namespace = PlanningNamespace(tree, subtree_auth, frags, self)
        self._queue_base = dict(queue_depths or {})
        self._planned_exports: dict[int, int] = {}
        #: decision-id allocator shared with the simulator's trace log (the
        #: view threads it through), so policy-side ids stay monotone with
        #: mechanism-side ones; standalone plans get their own sequence
        self.ids = decision_ids if decision_ids is not None else DecisionIds()

    @classmethod
    def from_authority(cls, authority: AuthorityMap, *, epoch: int = 0,
                       queue_depths: dict[int, int] | None = None,
                       decision_ids: DecisionIds | None = None) -> EpochPlan:
        """Plan against a live authority map (unit tests, standalone use)."""
        subtree_auth, frags = authority.snapshot_state()
        return cls(epoch=epoch, tree=authority.tree, subtree_auth=subtree_auth,
                   frags=frags, queue_depths=queue_depths,
                   decision_ids=decision_ids)

    # -------------------------------------------------------------- recording
    def emit(self, event: object) -> None:
        """Append a decision event (replayed onto the trace in order)."""
        self.actions.append(EmitEvent(event))

    def next_decision_id(self) -> int:
        """Mint the next decision id (see :class:`~repro.obs.tracelog.TraceSink`)."""
        return self.ids.next()

    def export(self, src: int, dst: int, unit: int | FragId, load: float,
               parent: int = NO_DECISION) -> int:
        """Append one export; replayed as ``Migrator.submit_export``.

        Pre-allocates the ``migration_planned`` decision id here, at
        planning time, so trace ids stay monotone in trace order even
        though the event itself is emitted at apply time. Returns the id.
        """
        did = self.next_decision_id()
        self.actions.append(ExportUnit(src, dst, unit, load, did=did,
                                       parent=parent))
        self._planned_exports[src] = self._planned_exports.get(src, 0) + 1
        return did

    # ------------------------------------------------------------- inspection
    def queue_depth(self, rank: int) -> int:
        """Snapshot queue depth plus exports planned for ``rank`` so far.

        Matches what ``Migrator.queue_depth`` would report mid-epoch if the
        policy were submitting directly, so queue-bounding policies behave
        identically under planning.
        """
        return self._queue_base.get(rank, 0) + self._planned_exports.get(rank, 0)

    @property
    def exports(self) -> list[ExportUnit]:
        return [a for a in self.actions if isinstance(a, ExportUnit)]

    def __len__(self) -> int:
        return len(self.actions)

    def __bool__(self) -> bool:
        # An empty plan is still a plan; application of either is a no-op.
        return True
