"""Lunule — the paper's contribution.

- :mod:`repro.core.if_model` — imbalance factor (paper Eq. 1-3),
- :mod:`repro.core.initiator` — migration trigger + role/amount decision
  (paper Algorithm 1),
- :mod:`repro.core.pattern` — the Pattern Analyzer: cutting-window
  temporal/spatial locality factors alpha/beta and loads l_t/l_s,
- :mod:`repro.core.mindex` — per-subtree migration index (paper Eq. 4),
- :mod:`repro.core.selector` — the three-path subtree selection,
- :mod:`repro.core.view` — the immutable per-epoch :class:`ClusterView`
  snapshot every policy plans from,
- :mod:`repro.core.plan` — the declarative :class:`EpochPlan` the
  mechanism layer replays,
- :mod:`repro.core.balancer` — Lunule and Lunule-Light orchestration.
"""

from repro.core.if_model import coefficient_of_variation, imbalance_factor, urgency
from repro.core.initiator import MdsLoad, MigrationInitiator, decide_roles


def __getattr__(name: str) -> object:
    # Lazy: repro.core.balancer builds on repro.balancers.base, which in
    # turn imports repro.core.plan/.view — an eager import here would make
    # that a cycle through this package's own initialization.
    if name in ("LunuleBalancer", "LunuleLightBalancer"):
        from repro.core import balancer

        return getattr(balancer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "coefficient_of_variation",
    "imbalance_factor",
    "urgency",
    "MdsLoad",
    "MigrationInitiator",
    "decide_roles",
    "LunuleBalancer",
    "LunuleLightBalancer",
]
