"""Lunule — the paper's contribution.

- :mod:`repro.core.if_model` — imbalance factor (paper Eq. 1-3),
- :mod:`repro.core.initiator` — migration trigger + role/amount decision
  (paper Algorithm 1),
- :mod:`repro.core.pattern` — the Pattern Analyzer: cutting-window
  temporal/spatial locality factors alpha/beta and loads l_t/l_s,
- :mod:`repro.core.mindex` — per-subtree migration index (paper Eq. 4),
- :mod:`repro.core.selector` — the three-path subtree selection,
- :mod:`repro.core.balancer` — Lunule and Lunule-Light orchestration.
"""

from repro.core.if_model import coefficient_of_variation, imbalance_factor, urgency
from repro.core.initiator import MdsLoad, MigrationInitiator, decide_roles
from repro.core.balancer import LunuleBalancer, LunuleLightBalancer

__all__ = [
    "coefficient_of_variation",
    "imbalance_factor",
    "urgency",
    "MdsLoad",
    "MigrationInitiator",
    "decide_roles",
    "LunuleBalancer",
    "LunuleLightBalancer",
]
