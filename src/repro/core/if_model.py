"""The Imbalance Factor model (paper §3.2, Equations 1-3).

``IF = (CoV / sqrt(n)) * U`` where

- ``CoV`` is the Bessel-corrected coefficient of variation of per-MDS IOPS.
  Its range is (0, sqrt(n)]; dividing by sqrt(n) — the value reached when
  exactly one of n MDSs carries all load — normalizes IF into [0, 1].
- ``U = 1 / (1 + e^((1 - 2u)/S))`` with ``u = l_max / C`` is the *urgency*:
  a logistic gate that suppresses re-balancing when even the busiest MDS is
  far below its capacity ``C`` (benign imbalance). ``S`` (paper: 0.2)
  controls the steepness around the ``u = 0.5`` midpoint.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.util.stats import coefficient_of_variation

__all__ = ["coefficient_of_variation", "urgency", "imbalance_factor"]


def urgency(l_max: float, capacity: float, smoothness: float = 0.2) -> float:
    """Paper Eq. 2: logistic urgency of the current imbalance.

    ``l_max`` is the busiest MDS's IOPS this epoch; ``capacity`` the
    theoretical per-MDS maximum. ``u`` is clamped into [0, 1] — a transient
    measurement above the nominal capacity is maximal urgency, not an error.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if not 0.0 < smoothness <= 1.0:
        raise ValueError("smoothness S must be in (0, 1]")
    u = min(max(l_max / capacity, 0.0), 1.0)
    return 1.0 / (1.0 + math.exp((1.0 - 2.0 * u) / smoothness))


def imbalance_factor(loads: Sequence[float], capacity: float,
                     smoothness: float = 0.2) -> float:
    """Paper Eq. 3: normalized CoV gated by urgency, in [0, 1].

    Returns 0.0 for an idle or single-MDS cluster (nothing to balance).
    """
    n = len(loads)
    if n < 2:
        return 0.0
    cov = coefficient_of_variation(loads)
    if cov <= 0.0:
        return 0.0
    u = urgency(max(loads), capacity, smoothness)
    return (cov / math.sqrt(n)) * u
