"""Per-directory migration index (paper Eq. 4) and helpers.

``mIndex = alpha * l_t + beta * l_s`` estimates each directory's *future*
load: temporal recurrence predicts re-visits; spatial inclination predicts
first visits into unvisited (or newly created) territory. Subtree-level
values are produced by aggregating the per-directory array through
:func:`repro.balancers.candidates.candidates_for`.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.stats import AccessStats
from repro.core.pattern import analyze

__all__ = ["mindex_per_dir"]


def mindex_per_dir(stats: AccessStats) -> np.ndarray:
    """The migration index of every directory's own files."""
    return analyze(stats).mindex
