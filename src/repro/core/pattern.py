"""The Pattern Analyzer (paper §3.3): per-directory locality factors.

From the cutting-window counters maintained by
:class:`repro.cluster.stats.AccessStats` it derives, per directory:

- ``alpha`` — temporal-locality inclination: the recurrent-visit ratio in
  the recent windows,
- ``beta`` — spatial-locality inclination: unvisited stock (plus freshly
  created inodes, which were unvisited until the instant of creation)
  relative to recent visit volume, capped at 1,
- ``l_t`` — predicted temporally-driven load: visits in the last N windows,
- ``l_s`` — predicted spatially-driven load: first visits plus the sibling
  correlation bonus.

The per-directory migration index is ``alpha * l_t + beta * l_s`` (Eq. 4);
subtree-level aggregation lives in :mod:`repro.core.mindex`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.stats import AccessStats

__all__ = ["PatternSnapshot", "analyze"]


@dataclass
class PatternSnapshot:
    """Vectorized per-directory locality view for one epoch."""

    alpha: np.ndarray
    beta: np.ndarray
    l_t: np.ndarray
    l_s: np.ndarray

    @property
    def mindex(self) -> np.ndarray:
        """Paper Eq. 4, per directory (own files only, not descendants)."""
        return self.alpha * self.l_t + self.beta * self.l_s


def analyze(stats: AccessStats) -> PatternSnapshot:
    """Compute alpha/beta/l_t/l_s for every directory from window sums."""
    arrays = stats.pattern_arrays()
    visits = arrays["visits"]
    denom = np.maximum(visits, 1.0)

    alpha = arrays["recurrent"] / denom
    # Spatial inclination: how much unvisited (or newly created) territory
    # this directory exposes relative to its recent traffic. A directory
    # with unvisited stock but no traffic yet gets beta = 1 — its sibling
    # bonus l_s is then its entire predicted load.
    spatial_stock = arrays["unvisited"] + arrays["created"]
    beta = np.minimum(1.0, spatial_stock / denom)
    # Fully-scanned directories (no unvisited stock, no creates) must decay
    # to zero even if their visit window still remembers first visits.
    beta[spatial_stock <= 0.0] = 0.0

    return PatternSnapshot(alpha=alpha, beta=beta, l_t=visits.copy(),
                           l_s=arrays["ls"].copy())
