"""The Subtree Selector (paper §3.3 / §4.1 "Subtree selection").

For each migration decision ``<exporter, importer, amount>`` the exporter
scans its candidates ranked by migration index and picks a set whose
predicted load matches ``amount``, via three search paths:

1. a single subtree whose load is within 10% of ``amount``;
2. otherwise, the smallest subtree larger than ``amount`` is *split* —
   when its load sits in its own (flat) files, by fragmenting the directory
   and taking just enough frags; when it sits in descendants, the greedy
   path below naturally picks those descendants instead;
3. otherwise, a minimal set of subtrees is accumulated greedily,
   largest-first, never overshooting the remaining demand by more than the
   tolerance.

Selections made for one importer stay blocked for subsequent importers in
the same epoch (no unit is exported twice), as are ancestors/descendants of
selected units (exporting both a directory and its parent would double-ship
the child).

The selector is pure policy: it operates on an
:class:`~repro.core.plan.EpochPlan`, splitting directories through the
plan's namespace overlay and recording selections as trace events on the
plan — nothing happens to the live cluster until the plan is applied.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.balancers.candidates import Candidate
from repro.core.plan import EpochPlan
from repro.namespace.dirfrag import MAX_FRAG_BITS, FragId
from repro.obs.events import NO_DECISION, SubtreeSelected, encode_unit

__all__ = ["ExportPlan", "SubtreeSelector"]


@dataclass
class ExportPlan:
    """One unit chosen for export, with its predicted load."""

    unit: int | FragId
    load: float
    #: the ``subtree_selected`` decision id behind this unit (provenance;
    #: ``NO_DECISION`` for untraced selections)
    decision_id: int = NO_DECISION


class SubtreeSelector:
    """Stateful per-epoch selector for one exporter MDS."""

    def __init__(self, plan: EpochPlan, candidates: list[Candidate], *,
                 tolerance: float = 0.1, min_load: float = 1e-9,
                 exporter: int | None = None,
                 parent: int = NO_DECISION) -> None:
        self.plan = plan
        self.ns = plan.namespace
        self.tolerance = tolerance
        self.min_load = min_load
        #: rank this selector plans for; selections are traced when known
        self.exporter = exporter
        #: the exporter's ``role_assigned`` decision id selections hang under
        self.parent = parent
        self.candidates = [c for c in candidates if c.load > min_load]
        self._selected_dirs: set[int] = set()
        self._blocked_dirs: set[int] = set()
        self._taken_units: set[object] = set()

    # ------------------------------------------------------------- blocking
    def _usable(self, c: Candidate) -> bool:
        key = c.unit if c.is_frag else ("dir", c.unit)
        if key in self._taken_units:
            return False
        if not c.is_frag and c.dir_id in self._blocked_dirs:
            return False
        return all(a not in self._selected_dirs
                   for a in self.ns.tree.ancestors(c.dir_id))

    def _take(self, c: Candidate) -> ExportPlan:
        if c.is_frag:
            self._taken_units.add(c.unit)
            # The containing dir can no longer be exported wholesale — its
            # file ownership is now mixed.
            self._blocked_dirs.add(c.dir_id)
        else:
            self._taken_units.add(("dir", c.unit))
            self._selected_dirs.add(c.dir_id)
            for a in self.ns.tree.ancestors(c.dir_id):
                if a != c.dir_id:
                    self._blocked_dirs.add(a)
        return ExportPlan(c.unit, c.load)

    # ------------------------------------------------------------- selection
    def select(self, amount: float, importer: int | None = None) -> list[ExportPlan]:
        """Choose export units predicted to carry ``amount`` load.

        When the selector knows which decision it fulfils (``exporter`` set
        at construction, ``importer`` passed here) each chosen unit is
        recorded on the plan's decision-event stream.
        """
        plans = self._select(amount)
        if plans and self.exporter is not None:
            epoch = self.plan.epoch
            for p in plans:
                p.decision_id = self.plan.next_decision_id()
                self.plan.emit(SubtreeSelected(
                    epoch=epoch, exporter=self.exporter,
                    importer=-1 if importer is None else importer,
                    unit=encode_unit(p.unit), load=p.load,
                    did=p.decision_id, parent=self.parent))
        return plans

    def _select(self, amount: float) -> list[ExportPlan]:
        if amount <= self.min_load:
            return []
        tol = self.tolerance

        usable = [c for c in self.candidates if self._usable(c)]
        if not usable:
            return []

        # Path 1 — a single subtree within the tolerance band.
        for c in usable:
            if abs(c.load - amount) <= tol * amount:
                return [self._take(c)]

        plans: list[ExportPlan] = []
        remaining = amount

        # Path 2 — split the smallest too-big *splittable* candidate when
        # its load is concentrated in its own flat files (a dirfrag split is
        # the only way to move part of one huge directory). Oversized
        # candidates whose load sits in descendants are left alone: their
        # children are separate candidates the greedy path picks up.
        over = sorted((c for c in usable if c.load > amount), key=lambda x: x.load)
        for c in over:
            if (not c.is_frag and c.self_files >= 2
                    and c.self_load >= 0.5 * c.load
                    and self.ns.frag_state(c.dir_id) is None):
                plans.extend(self._split_and_take(c, amount))
            elif c.is_frag and c.unit.bits < MAX_FRAG_BITS:
                plans.extend(self._resplit_and_take(c, amount))
            else:
                continue
            break
        if plans:
            got = sum(p.load for p in plans)
            remaining = amount - got
            if remaining <= tol * amount:
                return plans

        # Path 3 — greedy minimal set, largest-first, no overshoot.
        for c in self.candidates:
            if remaining <= tol * amount:
                break
            if c.load <= remaining * (1.0 + tol) and self._usable(c):
                plans.append(self._take(c))
                remaining -= c.load
        return plans

    def _split_and_take(self, c: Candidate, amount: float) -> list[ExportPlan]:
        """Fragment ``c``'s directory and take ~``amount`` worth of frags."""
        ratio = c.self_load / amount if amount > 0 else 2.0
        bits = min(MAX_FRAG_BITS, max(1, math.ceil(math.log2(max(ratio, 2.0)))))
        frags = self.ns.split_dir(c.dir_id, bits)
        per_frag_load = c.self_load / (1 << bits)
        if per_frag_load <= self.min_load:
            return []
        # floor, not round: over-shipping is exactly the vanilla failure
        # mode Lunule avoids; a shortfall is covered by the greedy path or
        # by the next epoch's decision
        k = max(1, min(len(frags) - 1, int(amount // per_frag_load)))
        self._blocked_dirs.add(c.dir_id)
        for a in self.ns.tree.ancestors(c.dir_id):
            self._blocked_dirs.add(a)
        plans = []
        for frag in frags[:k]:
            self._taken_units.add(frag)
            plans.append(ExportPlan(frag, per_frag_load))
        return plans

    def _resplit_and_take(self, c: Candidate, amount: float) -> list[ExportPlan]:
        """A single frag is still too big: double the dir's frag count and
        take just enough of the resulting sub-frags.

        Re-splitting preserves every other frag's ownership (sub-frags
        inherit from their containing coarser frag), so only this frag's
        granularity changes.
        """
        old: FragId = c.unit  # type: ignore[assignment]
        new_bits = old.bits + 1
        self.ns.split_dir(old.dir_id, new_bits)
        subs = [FragId(old.dir_id, new_bits, old.frag_no),
                FragId(old.dir_id, new_bits, old.frag_no + (1 << old.bits))]
        per_sub = c.load / 2.0
        self._taken_units.add(old)
        self._blocked_dirs.add(old.dir_id)
        k = 1 if amount < c.load else 2
        plans = []
        for frag in subs[:k]:
            self._taken_units.add(frag)
            plans.append(ExportPlan(frag, per_sub))
        return plans
