"""The typed, immutable cluster snapshot every policy plans from.

This is the repository's version of the paper's N-to-1 message passing
(§3.1): once per epoch the simulator assembles a :class:`ClusterView` —
per-rank loads, capacities, failure flags and histories, pending
import/export loads, the heat and migration-index arrays, and the
subtree-authority state — and hands it to the balancer. The balancer
returns a declarative :class:`~repro.core.plan.EpochPlan`; it never sees
the simulator itself (enforced by an architecture test: nothing under
``balancers/`` or ``core/`` imports ``repro.cluster.simulator``).

The view is built from duck-typed components (``mdss``, ``stats``,
``authmap``, ``migrator``) so this module has no dependency on the
simulator either.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.namespace.subtree import AuthorityMap
from repro.obs.events import NO_DECISION, DecisionIds

if TYPE_CHECKING:
    from repro.core.plan import EpochPlan

__all__ = ["RankView", "ClusterView", "build_cluster_view"]


@dataclass(frozen=True)
class RankView:
    """One MDS as the load monitors report it (paper's ImbalanceState)."""

    rank: int
    #: most recent completed epoch's IOPS
    load: float
    #: max metadata ops per tick (the paper's per-MDS capacity C)
    capacity: float
    failed: bool
    #: per-epoch IOPS history, most recent last
    history: tuple[float, ...]
    #: load already queued/in flight away from this rank
    pending_out: float
    #: load already queued/in flight toward this rank
    pending_in: float
    #: export tasks queued or active on this rank
    queue_depth: int


@dataclass(frozen=True)
class ClusterView:
    """Immutable per-epoch snapshot of everything a policy may read."""

    epoch: int
    ranks: tuple[RankView, ...]
    #: the homogeneous per-MDS capacity C from the config (per-rank values,
    #: which may differ in heterogeneous clusters, live on the RankViews)
    default_capacity: float
    tree: object
    #: subtree-root -> rank snapshot (detached copy, insertion-ordered)
    subtree_auth: dict[int, int]
    #: dir -> (bits, {frag_no: rank}) snapshot for fragmented directories
    frags: dict[int, tuple[int, dict[int, int]]]
    #: decayed per-directory popularity (heat) at the epoch boundary
    heat: np.ndarray
    #: access-stats handle for lazily derived arrays (mindex); read-only by
    #: convention — stats do not change between snapshot and planning
    stats: object | None = None
    #: the simulator's metrics registry (a sink; optional)
    metrics: object | None = None
    #: run-wide decision-id allocator, threaded into plans built from this
    #: view so policy events share the trace log's id sequence
    decision_ids: DecisionIds | None = None
    #: the ``did`` of the simulator's reporting ``if_computed`` event for
    #: this epoch — policies parent their role decisions under it
    if_decision_id: int = NO_DECISION
    _lazy: dict = field(default_factory=dict, repr=False, compare=False)

    # --------------------------------------------------------------- per-rank
    @property
    def n_mds(self) -> int:
        return len(self.ranks)

    def loads(self) -> list[float]:
        """Most recent epoch IOPS per MDS."""
        return [r.load for r in self.ranks]

    def capacities(self) -> list[float]:
        return [r.capacity for r in self.ranks]

    def histories(self) -> list[list[float]]:
        return [list(r.history) for r in self.ranks]

    def failed_ranks(self) -> set[int]:
        """Ranks currently down; no policy should plan exports to or from
        them — a dead importer cannot receive and a replayed exporter will
        not resume pre-failure plans."""
        return {r.rank for r in self.ranks if r.failed}

    def pending_out(self) -> list[float]:
        return [r.pending_out for r in self.ranks]

    def pending_in(self) -> list[float]:
        return [r.pending_in for r in self.ranks]

    def queue_depths(self) -> dict[int, int]:
        return {r.rank: r.queue_depth for r in self.ranks}

    # -------------------------------------------------------------- namespace
    @property
    def authority(self) -> AuthorityMap:
        """Read-only authority snapshot (detached from the live map)."""
        ns = self._lazy.get("authority")
        if ns is None:
            ns = AuthorityMap.from_state(self.tree, self.subtree_auth, self.frags)
            self._lazy["authority"] = ns
        return ns

    def heat_loads(self) -> list[float]:
        """Per-MDS load as CephFS-Vanilla sees it: decayed popularity.

        CephFS's ``mds_load`` derives from the pop counters of the subtrees
        an MDS *owns*, not from the requests it serves. For recurrent
        workloads the two agree; for scans an MDS holding freshly scanned
        (dead) subtrees looks loaded while serving nothing — the root cause
        of the paper's first inefficiency. Lunule's contribution is exactly
        to replace this with observed IOPS (paper §3.2).
        """
        cached = self._lazy.get("heat_loads")
        if cached is None:
            cached = self._lazy["heat_loads"] = self._heat_loads_sparse()
        return list(cached)

    def _heat_loads_sparse(self) -> list[float]:
        # Equivalent to summing ``heat`` over every root's full extent, but
        # visiting only directories with live heat: zero addends are exact
        # identities (x + 0.0 == x for the non-negative heat values), so
        # skipping them cannot move a bit — *provided* the live dirs are
        # summed in extent order. ``subtree_extent``'s stack visits children
        # in descending child-list order, which the sort key below (negated
        # child positions along the path from the owning root, parents
        # first) reproduces exactly.
        heat = self.heat
        authmap = self.authority
        tree = authmap.tree
        roots = authmap.subtree_roots()
        root_set = set(roots)
        parent = tree.parent

        owner_memo: dict[int, int] = {r: r for r in root_set}

        def owning_root(d: int) -> int:
            chain: list[int] = []
            while d not in owner_memo:
                chain.append(d)
                d = parent[d]
            r = owner_memo[d]
            for c in chain:
                owner_memo[c] = r
            return r

        by_root: dict[int, list[int]] = {}
        for d in np.nonzero(heat)[0]:
            by_root.setdefault(owning_root(int(d)), []).append(int(d))

        pos_memo: dict[int, dict[int, int]] = {}

        def extent_key(d: int, root: int) -> tuple[int, ...]:
            path: list[int] = []
            while d != root:
                p = parent[d]
                pos = pos_memo.get(p)
                if pos is None:
                    pos = pos_memo[p] = {
                        c: i for i, c in enumerate(tree.children[p])}
                path.append(-pos[d])
                d = p
            return tuple(reversed(path))

        out = [0.0] * self.n_mds
        for root, auth in roots.items():
            members = by_root.get(root)
            if not members:
                continue
            members.sort(key=lambda d, _root=root: extent_key(d, _root))
            out[auth] += float(sum(heat[d] for d in members))
        return out

    @property
    def mindex(self) -> np.ndarray:
        """Per-directory migration index (paper Eq. 4), computed on demand."""
        cached = self._lazy.get("mindex")
        if cached is None:
            from repro.core.mindex import mindex_per_dir

            if self.stats is None:
                raise ValueError("this view was built without access stats")
            cached = self._lazy["mindex"] = mindex_per_dir(self.stats)
        return cached

    # --------------------------------------------------------------- planning
    def new_plan(self) -> EpochPlan:
        """A fresh :class:`~repro.core.plan.EpochPlan` against this view."""
        from repro.core.plan import EpochPlan

        return EpochPlan(epoch=self.epoch, tree=self.tree,
                         subtree_auth=self.subtree_auth, frags=self.frags,
                         queue_depths=self.queue_depths(),
                         decision_ids=self.decision_ids)


def build_cluster_view(*, epoch: int, mdss: Iterable[Any], stats: Any,
                       authmap: AuthorityMap, migrator: Any,
                       default_capacity: float,
                       metrics: object | None = None,
                       decision_ids: DecisionIds | None = None,
                       if_decision_id: int = NO_DECISION) -> ClusterView:
    """Assemble a :class:`ClusterView` from duck-typed cluster components.

    ``mdss`` is a sequence of :class:`~repro.cluster.mds.MDS`-likes,
    ``stats`` an :class:`~repro.cluster.stats.AccessStats`-like, ``authmap``
    an :class:`~repro.namespace.subtree.AuthorityMap` and ``migrator`` a
    :class:`~repro.cluster.migration.Migrator`-like. Everything mutable is
    copied; the tree and stats are shared read-only.
    """
    ranks = tuple(
        RankView(
            rank=m.rank,
            load=m.current_load,
            capacity=m.capacity,
            failed=m.failed,
            history=tuple(m.load_history),
            pending_out=migrator.pending_export_load(m.rank),
            pending_in=migrator.pending_import_load(m.rank),
            queue_depth=migrator.queue_depth(m.rank),
        )
        for m in mdss
    )
    subtree_auth, frags = authmap.snapshot_state()
    return ClusterView(
        epoch=epoch,
        ranks=ranks,
        default_capacity=float(default_capacity),
        tree=authmap.tree,
        subtree_auth=subtree_auth,
        frags=frags,
        heat=stats.heat_array(),
        stats=stats,
        metrics=metrics,
        decision_ids=decision_ids,
        if_decision_id=if_decision_id,
    )
