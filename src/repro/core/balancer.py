"""Lunule and Lunule-Light balancer orchestration (paper §3.1 workflow).

Per epoch: Load Monitors report per-MDS IOPS to the Migration Initiator
(N-to-1); the initiator computes the IF and — above the threshold — runs
Algorithm 1 to produce per-exporter migration decisions; each exporter's
Workload-aware Migration Planner ranks its subtrees by migration index and
the Subtree Selector fulfils the decision; chosen units go to the Migrator.

*Lunule-Light* is the paper's ablation variant: same IF-model trigger and
Algorithm 1 amounts, but the default (decayed-heat) candidate ranking
instead of the migration index.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.balancers.base import Balancer
from repro.balancers.candidates import candidates_for, scale_to_load
from repro.core.initiator import InitiatorConfig, MigrationInitiator
from repro.core.mindex import mindex_per_dir
from repro.core.selector import SubtreeSelector

__all__ = ["LunuleBalancer", "LunuleLightBalancer"]


class LunuleBalancer(Balancer):
    name = "lunule"

    def __init__(self, config: InitiatorConfig | None = None, *,
                 tolerance: float = 0.1) -> None:
        super().__init__()
        self.initiator_config = config or InitiatorConfig()
        self.tolerance = tolerance
        self.initiator: MigrationInitiator | None = None

    def attach(self, sim) -> None:
        super().attach(sim)
        self.initiator = MigrationInitiator(
            sim.config.mds_capacity, self.initiator_config,
            trace=getattr(sim, "trace", None),
            metrics=getattr(sim, "metrics", None))

    # What the Pattern Analyzer feeds the selector (overridden by -Light).
    def per_dir_load(self) -> np.ndarray:
        return mindex_per_dir(self.sim.stats)

    def on_epoch(self, epoch: int) -> None:
        sim = self.sim
        n = self.n_mds
        migrator = sim.migrator
        pending_out = [migrator.pending_export_load(i) for i in range(n)]
        pending_in = [migrator.pending_import_load(i) for i in range(n)]
        decisions = self.initiator.plan(
            epoch, self.loads(), self.histories(), pending_out, pending_in,
            exclude=self.failed_ranks(),
        )
        if not decisions:
            return
        per_dir = self.per_dir_load()
        loads = self.loads()
        for msg in decisions:
            src = msg.exporter
            raw = candidates_for(sim, src, per_dir)
            scale = scale_to_load(raw, loads[src])
            if scale <= 0.0:
                continue
            scaled = [replace(c, load=c.load * scale, self_load=c.self_load * scale)
                      for c in raw]
            selector = SubtreeSelector(sim, scaled, tolerance=self.tolerance,
                                       exporter=src)
            for dst, amount in sorted(msg.assignments.items(),
                                      key=lambda kv: kv[1], reverse=True):
                for plan in selector.select(amount, importer=dst):
                    migrator.submit_export(src, dst, plan.unit, plan.load)


class LunuleLightBalancer(LunuleBalancer):
    """Lunule's trigger and amounts with the default heat-based selection."""

    name = "lunule-light"

    def per_dir_load(self) -> np.ndarray:
        return self.sim.stats.heat_array()
