"""Lunule and Lunule-Light balancer orchestration (paper §3.1 workflow).

Per epoch: Load Monitors report per-MDS IOPS to the Migration Initiator
(N-to-1); the initiator computes the IF and — above the threshold — runs
Algorithm 1 to produce per-exporter migration decisions; each exporter's
Workload-aware Migration Planner ranks its subtrees by migration index and
the Subtree Selector fulfils the decision; chosen units become export
actions on the returned :class:`~repro.core.plan.EpochPlan`.

*Lunule-Light* is the paper's ablation variant: same IF-model trigger and
Algorithm 1 amounts, but the default (decayed-heat) candidate ranking
instead of the migration index.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.balancers.base import Balancer
from repro.balancers.candidates import candidates_for, scale_to_load
from repro.core.initiator import InitiatorConfig, MigrationInitiator
from repro.core.plan import EpochPlan
from repro.core.selector import SubtreeSelector
from repro.core.view import ClusterView

__all__ = ["LunuleBalancer", "LunuleLightBalancer"]


class LunuleBalancer(Balancer):
    name = "lunule"

    def __init__(self, config: InitiatorConfig | None = None, *,
                 tolerance: float = 0.1) -> None:
        self.initiator_config = config or InitiatorConfig()
        self.tolerance = tolerance
        #: created on first use — the capacity C comes from the first view
        self.initiator: MigrationInitiator | None = None

    # What the Pattern Analyzer feeds the selector (overridden by -Light).
    def per_dir_load(self, view: ClusterView) -> np.ndarray:
        return view.mindex

    def on_epoch(self, view: ClusterView) -> EpochPlan | None:
        plan = view.new_plan()
        if self.initiator is None:
            self.initiator = MigrationInitiator(
                view.default_capacity, self.initiator_config,
                trace=plan, metrics=view.metrics)
        else:
            # The initiator writes its decision events into this epoch's plan.
            self.initiator.trace = plan
            self.initiator.metrics = view.metrics
        loads = view.loads()
        decisions = self.initiator.plan(
            view.epoch, loads, view.histories(),
            view.pending_out(), view.pending_in(),
            exclude=view.failed_ranks(),
            capacities=view.capacities(),
        )
        if not decisions:
            return plan
        per_dir = self.per_dir_load(view)
        for msg in decisions:
            src = msg.exporter
            raw = candidates_for(plan.namespace, src, per_dir)
            scale = scale_to_load(raw, loads[src])
            if scale <= 0.0:
                continue
            scaled = [replace(c, load=c.load * scale, self_load=c.self_load * scale)
                      for c in raw]
            selector = SubtreeSelector(plan, scaled, tolerance=self.tolerance,
                                       exporter=src, parent=msg.decision_id)
            for dst, amount in sorted(msg.assignments.items(),
                                      key=lambda kv: kv[1], reverse=True):
                for export in selector.select(amount, importer=dst):
                    plan.export(src, dst, export.unit, export.load,
                                parent=export.decision_id)
        return plan


class LunuleLightBalancer(LunuleBalancer):
    """Lunule's trigger and amounts with the default heat-based selection."""

    name = "lunule-light"

    def per_dir_load(self, view: ClusterView) -> np.ndarray:
        return view.heat
