"""The long-running simulator service behind ``repro serve``.

:class:`SimulatorService` wraps the incremental simulator protocol
(``Simulator.start`` / ``step_tick`` / ``finish``) in a
start/pause/step/stop lifecycle plus an asyncio driver (:meth:`drive`)
that advances the simulation in bounded tick slices, yielding to the
event loop between slices so the HTTP control plane stays responsive.

Determinism contract: driving a service to completion with zero config
mutations executes exactly the statement sequence of a batch
``Simulator.run`` — same seed, same decisions, byte-identical decision
trace (``tests/test_serve_service.py`` golden-gates this).

Live reconfiguration: mutations arrive from any thread via
:meth:`queue_mutations` (validated immediately) and are applied at the
next epoch boundary — the only point where the balancing interval, the
initiator tunables or the balancer itself can change without tearing an
epoch in progress. Every applied mutation is minted as a
``config_changed`` trace event with its own decision id, so
``repro explain`` shows which knob change preceded which migration.

Thread model: one lock guards the simulator; the driver holds it for one
tick slice at a time, HTTP handlers take it briefly to snapshot status,
metrics or the time series. Trace events cross to streaming consumers
through the bounded :class:`~repro.serve.bus.EventBus` (drop-on-slow,
never blocking the simulation thread).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.balancers import make_balancer
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_simulator
from repro.obs.events import OUTCOME_VERDICTS, ConfigChanged
from repro.obs.outcomes import build_ledger
from repro.obs.prom import render_openmetrics
from repro.serve.bus import EventBus
from repro.serve.sanitizer import guard_writes, sanitize_lock

__all__ = ["MutationError", "SimulatorService", "STATES"]

#: service lifecycle: created -> running <-> paused -> done | stopped
STATES = ("created", "running", "paused", "done", "stopped")

#: initiator tunables settable via POST /config, with their coercions
_INITIATOR_KEYS: dict[str, type] = {
    "if_threshold": float,
    "deviation_threshold": float,
    "cap_fraction": float,
    "regression_window": int,
    "use_urgency": bool,
}


class MutationError(ValueError):
    """A ``POST /config`` mutation that can never be applied (bad key,
    uncoercible value, unknown balancer, or a knob the running balancer
    does not have)."""


class SimulatorService:
    """One simulator, driven incrementally, observable and pokeable."""

    def __init__(self, cfg: ExperimentConfig, *,
                 balancer_kwargs: dict | None = None, chaos: Any = None,
                 tick_slice: int = 64, rate: float | None = None,
                 bus_capacity: int = 1024) -> None:
        if tick_slice <= 0:
            raise ValueError("tick_slice must be positive")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive ticks/second (or None)")
        self.cfg = cfg
        self.sim = build_simulator(cfg, balancer_kwargs=balancer_kwargs,
                                   chaos=chaos)
        self.tick_slice = tick_slice
        self.rate = rate
        self.state = "created"  # guarded-by: self.lock
        self.result = None  # guarded-by: self.lock
        self.lock = sanitize_lock(threading.RLock(), "service.lock")
        self.bus = EventBus(
            capacity=bus_capacity,
            drop_counter=self.sim.metrics.counter("serve.events_dropped"))
        self.sim.trace.add_listener(self._tap)
        self._pending: list[tuple[str, object]] = []  # guarded-by: self.lock
        self.mutations_applied = 0  # guarded-by: self.lock
        self._stop_requested = False  # guarded-by: self.lock
        #: ticks granted to :meth:`step` while paused
        self._step_budget = 0  # guarded-by: self.lock
        #: live cost/benefit ledger summary, rebuilt at epoch boundaries
        #: from the retained trace (``repro.obs.outcomes``)
        self._ledger_cache: dict | None = None  # guarded-by: self.lock
        # under REPRO_SANITIZE=1 the runtime checks the same discipline
        # the guarded-by lint proves statically
        guard_writes(self, self.lock,
                     ("state", "result", "_pending", "mutations_applied",
                      "_stop_requested", "_step_budget", "_ledger_cache"))

    # ------------------------------------------------------------- event tap
    def _tap(self, event: object) -> None:
        # runs inside TraceLog.emit on the simulation thread; the bus
        # contract (bounded, drop-on-full) keeps this non-blocking
        self.bus.publish(event)

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Apply the balancer's setup plan; the service becomes runnable."""
        with self.lock:
            if self.state != "created":
                return
            self.sim.start()
            self.state = "running"

    def pause(self) -> None:
        with self.lock:
            if self.state == "running":
                self.state = "paused"

    def resume(self) -> None:
        with self.lock:
            if self.state == "paused":
                self.state = "running"
                self._step_budget = 0

    def step(self, ticks: int = 1) -> None:
        """Grant ``ticks`` single-step ticks to a paused service."""
        if ticks <= 0:
            raise ValueError("step ticks must be positive")
        with self.lock:
            if self.state != "paused":
                raise MutationError("step requires a paused service")
            self._step_budget += ticks

    def request_stop(self) -> None:
        """Ask the driver to wind down (graceful shutdown path)."""
        with self.lock:
            self._stop_requested = True

    @property
    def finished(self) -> bool:
        with self.lock:
            return self.state in ("done", "stopped")

    def current_state(self) -> str:
        """The lifecycle state, snapshotted under the lock (HTTP handler
        threads must not read :attr:`state` bare)."""
        with self.lock:
            return self.state

    # --------------------------------------------------------------- driving
    def _advance(self, ticks: int) -> bool:  # holds-lock: self.lock
        """Advance up to ``ticks``; False once the simulation is over.

        Caller must hold :attr:`lock`. Epoch boundaries are detected by
        watching ``sim.epoch`` move, and queued mutations are applied
        right there — after the closed epoch's plan, before the next
        epoch serves a single tick.
        """
        sim = self.sim
        for _ in range(ticks):
            epoch_before = sim.epoch
            alive = sim.step_tick()
            if sim.epoch != epoch_before:
                if self._pending:
                    self._apply_pending()
                self._refresh_ledger()
            if not alive:
                return False
        return True

    def _refresh_ledger(self) -> None:  # holds-lock: self.lock
        """Rebuild the outcome-ledger summary from the retained trace.

        Runs at epoch boundaries only: the ledger is post-hoc analysis of
        the trace the epoch just extended, and never feeds back into the
        simulation (the served decision trace stays byte-identical to the
        batch run's). Publishes ``outcome.*`` gauges so ``/metrics``
        carries the verdict counters, and caches per-rank migrations
        in/out for ``/status`` and ``repro top``. On a ring-buffered
        trace the summary covers retained history only.
        """
        sim = self.sim
        events = sim.trace.events()
        ledger = build_ledger(events)
        counts = ledger.verdict_counts()
        totals = ledger.totals()
        n_mds = len(sim.mdss)
        moved_in = [0] * n_mds
        moved_out = [0] * n_mds
        for e in events:
            if e.etype == "migration_committed":
                if e.src < n_mds:  # type: ignore[attr-defined]
                    moved_out[e.src] += 1  # type: ignore[attr-defined]
                if e.dst < n_mds:  # type: ignore[attr-defined]
                    moved_in[e.dst] += 1  # type: ignore[attr-defined]
        m = sim.metrics
        for verdict in sorted(OUTCOME_VERDICTS):
            m.gauge("outcome.migrations", verdict=verdict).set(
                counts.get(verdict, 0))
        m.gauge("outcome.benefit_efficiency").set(totals["efficiency"])
        m.gauge("outcome.aborted_inodes").set(totals["aborted_inodes"])
        self._ledger_cache = {
            "verdicts": {v: counts.get(v, 0)
                         for v in sorted(OUTCOME_VERDICTS)},
            "judged": len(ledger),
            "efficiency": totals["efficiency"],
            "moved_inodes": int(totals["moved_inodes"]),
            "aborted_inodes": int(totals["aborted_inodes"]),
            "migrations_in": moved_in,
            "migrations_out": moved_out,
        }

    def _finish(self) -> None:
        with self.lock:
            if self.result is None:
                self.result = self.sim.finish()
            self._refresh_ledger()  # judge the tail the last boundary missed
            self.state = "stopped" if self._stop_requested else "done"

    def run_to_completion(self) -> None:
        """Synchronous drive (tests, ``--sync``): no pauses, no throttle."""
        self.start()
        with self.lock:
            while not self._stop_requested and self._advance(self.tick_slice):
                pass
        self._finish()

    async def drive(self, poll_interval: float = 0.05) -> None:
        """The asyncio driver: tick slices interleaved with the event loop.

        Between slices control returns to the loop (throttled to
        :attr:`rate` ticks/second when set), so HTTP handler threads
        waiting on :attr:`lock` and coroutines sharing the loop make
        progress. A paused service polls for :meth:`resume`/:meth:`step`
        every ``poll_interval`` seconds.
        """
        self.start()
        try:
            while True:
                with self.lock:
                    if self._stop_requested:
                        break
                    if self.state == "paused":
                        budget = min(self._step_budget, self.tick_slice)
                        if budget:
                            self._step_budget -= budget
                            if not self._advance(budget):
                                break
                        paused = True
                    else:
                        paused = False
                        if not self._advance(self.tick_slice):
                            break
                if paused:
                    await asyncio.sleep(poll_interval)
                elif self.rate is not None:
                    await asyncio.sleep(self.tick_slice / self.rate)
                else:
                    await asyncio.sleep(0)
        finally:
            self._finish()

    # ------------------------------------------------------------- mutations
    def queue_mutations(self, changes: dict) -> int:
        """Validate and queue config mutations; returns the queue depth.

        Accepted keys: the initiator tunables (``if_threshold``,
        ``deviation_threshold``, ``cap_fraction``, ``regression_window``,
        ``use_urgency``), the urgency smoothness ``urgency_smoothness``
        (the paper's S — applied to both the trigger and the reporting
        IF), the balancing interval ``epoch_len``, and ``balancer`` (swap
        the policy; its ``setup`` plan is applied at the boundary).
        Raises :class:`MutationError` on anything unappliable, leaving
        the queue untouched.
        """
        if not isinstance(changes, dict) or not changes:
            raise MutationError("expected a non-empty JSON object of "
                                "{knob: value} pairs")
        staged: list[tuple[str, object]] = []
        for key, raw in changes.items():
            staged.append((key, self._coerce(key, raw)))
        with self.lock:
            self._pending.extend(staged)
            return len(self._pending)

    def _coerce(self, key: str, raw: Any) -> object:
        try:
            if key in _INITIATOR_KEYS:
                if not hasattr(self.sim.balancer, "initiator_config"):
                    raise MutationError(
                        f"balancer {self.sim.result.balancer!r} has no "
                        f"initiator config; {key!r} is not tunable here")
                return _INITIATOR_KEYS[key](raw)
            if key == "urgency_smoothness":
                value = float(raw)
                if value <= 0:
                    raise MutationError("urgency_smoothness must be positive")
                return value
            if key == "epoch_len":
                value = int(raw)
                if value <= 0:
                    raise MutationError("epoch_len must be positive")
                return value
            if key == "balancer":
                make_balancer(str(raw))  # raises ValueError on unknown names
                return str(raw)
        except MutationError:
            raise
        except (TypeError, ValueError) as exc:
            raise MutationError(f"bad value for {key!r}: {exc}") from None
        raise MutationError(
            f"unknown config key {key!r}; settable: "
            f"{sorted([*_INITIATOR_KEYS, 'urgency_smoothness', 'epoch_len', 'balancer'])}")

    def _apply_pending(self) -> None:  # holds-lock: self.lock
        """Apply queued mutations at an epoch boundary (lock held)."""
        pending, self._pending = self._pending, []
        sim = self.sim
        for key, value in pending:
            old = self._apply_one(key, value)
            sim.trace.emit(ConfigChanged(
                epoch=sim.epoch, tick=sim.tick, key=key, value=str(value),
                old=str(old), did=sim.trace.next_decision_id()))
            sim.metrics.counter("serve.config_changes").inc()
            self.mutations_applied += 1

    def _apply_one(self, key: str, value: Any) -> object:  # holds-lock: self.lock
        sim = self.sim
        if key in _INITIATOR_KEYS:
            icfg = sim.balancer.initiator_config
            old = getattr(icfg, key)
            setattr(icfg, key, value)
            return old
        if key == "urgency_smoothness":
            old = sim.config.urgency_smoothness
            sim.config = sim.config.with_(urgency_smoothness=value)
            icfg = getattr(sim.balancer, "initiator_config", None)
            if icfg is not None:
                icfg.urgency_smoothness = value
            return old
        if key == "epoch_len":
            old = sim.config.epoch_len
            sim.set_epoch_len(value)
            return old
        if key == "balancer":
            old = getattr(sim.balancer, "name", type(sim.balancer).__name__)
            sim.balancer = make_balancer(value)
            sim.apply_plan(sim.balancer.setup(sim.snapshot_view()))
            return old
        raise AssertionError(f"unvalidated mutation key {key!r}")

    # ------------------------------------------------------------- snapshots
    def metrics_text(self) -> str:
        """The OpenMetrics exposition of the live registry."""
        with self.lock:
            return render_openmetrics(self.sim.metrics)

    def timeseries(self) -> dict:
        with self.lock:
            rec = self.sim.recorder
            if rec is None:
                return {"columns": [], "rows": [], "appended": 0}
            return rec.timeseries.snapshot()

    def status(self) -> dict:
        """The JSON document behind ``GET /status`` (and ``repro top``)."""
        with self.lock:
            sim = self.sim
            r = sim.result
            m = sim.metrics
            loads = list(r.per_mds_iops[-1]) if r.per_mds_iops else \
                [0.0] * len(sim.mdss)
            return {
                "schema": 1,
                "state": self.state,
                "tick": sim.tick,
                "max_ticks": sim.config.max_ticks,
                "epoch": sim.epoch,
                "epoch_len": sim.config.epoch_len,
                "workload": r.workload,
                "balancer": getattr(sim.balancer, "name",
                                    type(sim.balancer).__name__),
                "n_mds": len(sim.mdss),
                "loads": loads,
                "capacities": [mds.capacity for mds in sim.mdss],
                "failed": [mds.rank for mds in sim.mdss if mds.failed],
                "if": r.if_series[-1] if r.if_series else 0.0,
                "if_series": list(r.if_series[-60:]),
                "migrated_inodes": sim.migrator.migrated_inodes,
                "committed_tasks": sim.migrator.committed_tasks,
                "aborted_tasks": sim.migrator.aborted_tasks,
                "forwards": sim.router.total_forwards,
                "clients": len(sim.clients),
                "clients_done": sum(1 for c in sim.clients if c.done),
                "epochs_per_second": m.get_value("sim.epochs_per_second"),
                "ops_per_second": m.get_value("serve.ops_per_second"),
                "trace": {"emitted": sim.trace.emitted,
                          "retained": len(sim.trace),
                          "dropped": sim.trace.dropped},
                "bus": {"subscribers": self.bus.subscribers,
                        "published": self.bus.published,
                        "dropped": self.bus.dropped},
                "mutations": {"queued": len(self._pending),
                              "applied": self.mutations_applied},
                "outcomes": self._ledger_cache,
                "workload_profile": (
                    None if sim.last_workload_profile is None else {
                        "epoch": sim.last_workload_profile.epoch,
                        "heat_gini": sim.last_workload_profile.heat_gini,
                        "heat_entropy": sim.last_workload_profile.heat_entropy,
                        "load_gini": sim.last_workload_profile.load_gini,
                        "top1_share": sim.last_workload_profile.top1_share,
                        "topk_share": sim.last_workload_profile.topk_share,
                        "churn": sim.last_workload_profile.churn,
                        "op_mix": sim.last_workload_profile.op_mix,
                    }),
            }
