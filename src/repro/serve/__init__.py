"""Live telemetry plane: the ``repro serve`` service mode.

Turns the batch simulator into a long-running, observable, pokeable
service (the ROADMAP's "long-running service mode with live
reconfiguration"):

- :mod:`repro.serve.service` — :class:`SimulatorService`, the asyncio
  driver around the incremental ``Simulator.start``/``step_tick``/
  ``finish`` protocol, with start/pause/step/stop lifecycle and
  epoch-boundary config mutation (``config_changed`` trace events);
- :mod:`repro.serve.bus` — the bounded fan-out :class:`EventBus` between
  the decision trace and streaming consumers (drop-on-slow, never
  blocking the simulation);
- :mod:`repro.serve.http` — the stdlib HTTP :class:`ControlPlane`
  (``/metrics``, ``/status``, ``/timeseries``, ``/events``, ``/config``,
  lifecycle and shutdown);
- :mod:`repro.serve.dashboard` — ``repro top``, the curses-free terminal
  dashboard polling ``/status``;
- :mod:`repro.serve.sanitizer` — the ``REPRO_SANITIZE=1`` runtime lock
  sanitizer (acquisition-order graph, unguarded-write detection).

Determinism contract: a served run with zero mutations reproduces the
batch run's decision trace byte-for-byte (golden-gated). See
``docs/OBSERVABILITY.md`` ("Live service mode").
"""

from repro.serve.bus import EventBus, Subscription
from repro.serve.dashboard import fetch_status, render_top, top
from repro.serve.http import OPENMETRICS_CONTENT_TYPE, ControlPlane
from repro.serve.sanitizer import (
    MonitoredLock,
    SanitizerReport,
    guard_writes,
    sanitize_lock,
)
from repro.serve.service import MutationError, SimulatorService

__all__ = [
    "EventBus",
    "Subscription",
    "ControlPlane",
    "OPENMETRICS_CONTENT_TYPE",
    "MutationError",
    "SimulatorService",
    "render_top",
    "fetch_status",
    "top",
    "MonitoredLock",
    "SanitizerReport",
    "guard_writes",
    "sanitize_lock",
]
