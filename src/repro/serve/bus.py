"""Bounded fan-out event bus between the decision trace and HTTP streams.

The serve control plane taps the simulator's :class:`TraceLog` (see
``TraceLog.add_listener``) and publishes every event onto this bus; each
``GET /events`` stream holds one :class:`Subscription`. The contract the
tap demands — *never block and never raise in the simulator's thread* —
is met by giving every subscription its own bounded ``queue.Queue`` and
dropping on overflow: a slow or stalled consumer loses its own events
(counted, per subscription and bus-wide on the
``serve_events_dropped_total`` counter) while the simulation and every
other subscriber proceed at full speed.

Publishing with zero subscribers is one attribute load and a falsy
check, so an unwatched service pays nothing for the tap.
"""

from __future__ import annotations

import queue
import threading
from typing import Any

from repro.serve.sanitizer import guard_writes, sanitize_lock

__all__ = ["Subscription", "EventBus"]


class Subscription:
    """One consumer's bounded view of the bus."""

    __slots__ = ("_bus", "_queue", "dropped")

    def __init__(self, bus: EventBus, capacity: int) -> None:
        self._bus = bus
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        #: items this subscription lost to overflow
        # guarded-by: none — written only by the publisher thread; readers
        # tolerate a stale count (monitoring, not control flow)
        self.dropped = 0

    def get(self, timeout: float | None = None) -> Any:
        """Next item; raises :class:`queue.Empty` on timeout."""
        return self._queue.get(timeout=timeout)

    def qsize(self) -> int:
        return self._queue.qsize()

    def close(self) -> None:
        self._bus.unsubscribe(self)


class EventBus:
    """Fan-out with per-subscriber bounded queues; overflow drops.

    ``drop_counter`` (anything with ``.inc()``, typically the registry's
    ``serve.events_dropped`` counter) is bumped once per dropped item so
    loss is visible in ``/metrics`` and the report warning banner.
    """

    def __init__(self, capacity: int = 1024,
                 drop_counter: Any = None) -> None:
        if capacity <= 0:
            raise ValueError("bus capacity must be positive")
        self.capacity = capacity
        self.drop_counter = drop_counter
        #: bus-wide dropped-item count across all subscriptions, lifetime
        self.dropped = 0  # guarded-by: none — single writer (publish thread)
        self.published = 0  # guarded-by: none — single writer, approx reads
        # the subscription tuple is replaced atomically under the lock and
        # read without it in publish() — the hot path stays lock-free
        self._subs: tuple[Subscription, ...] = ()  # guarded-by: self._lock (writes)
        self._lock = sanitize_lock(threading.Lock(), "bus._lock")
        guard_writes(self, self._lock, ("_subs",))

    @property
    def subscribers(self) -> int:
        return len(self._subs)

    def subscribe(self, capacity: int | None = None) -> Subscription:
        sub = Subscription(self, capacity or self.capacity)
        with self._lock:
            self._subs = (*self._subs, sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            self._subs = tuple(s for s in self._subs if s is not sub)

    def publish(self, item: object) -> None:
        """Offer ``item`` to every subscriber; never blocks, never raises."""
        subs = self._subs
        if not subs:
            return
        self.published += 1
        for sub in subs:
            try:
                sub._queue.put_nowait(item)
            except queue.Full:
                sub.dropped += 1
                self.dropped += 1
                if self.drop_counter is not None:
                    self.drop_counter.inc()
