"""Opt-in runtime sanitizer for the serve plane's locks and shared state.

Enabled by ``REPRO_SANITIZE=1`` in the environment; with the variable
unset every hook in this module is an identity function and the serve
plane runs on bare stdlib locks. Under the flag:

- :func:`sanitize_lock` wraps a lock in a :class:`MonitoredLock` that
  maintains a per-thread stack of held locks and a global acquisition-
  order graph. Acquiring ``B`` while holding ``A`` records the edge
  ``A → B``; if ``B → … → A`` was ever observed, the two orders can
  deadlock under the right interleaving and a ``lock-order`` report is
  filed *at acquire time* — no actual deadlock needed.
- :func:`guard_writes` registers instance attributes with their guarding
  MonitoredLock and swaps the instance's class for a subclass whose
  ``__setattr__`` files an ``unguarded-write`` report whenever a
  registered attribute is written by a thread not holding the lock.

Reports accumulate in a process-global list — :func:`reports` /
:func:`reset` — and the serve/chaos test suites assert it stays empty
(``tests/conftest.py``); CI runs them under the flag in the
``sanitize-smoke`` job. The static ``guarded-by`` lint rule and this
sanitizer check the same contract from both sides: the lint proves the
discipline on every path it can see, the sanitizer catches what runtime
composition (threads, chaos schedules, HTTP clients) actually does.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any

__all__ = [
    "enabled",
    "sanitize_lock",
    "guard_writes",
    "reports",
    "reset",
    "MonitoredLock",
    "SanitizerReport",
]


def enabled() -> bool:
    """True when ``REPRO_SANITIZE=1`` (checked per call: tests toggle it)."""
    return os.environ.get("REPRO_SANITIZE") == "1"


@dataclass(frozen=True)
class SanitizerReport:
    #: ``lock-order`` or ``unguarded-write``
    kind: str
    message: str


# Internal bookkeeping locks are bare on purpose: the sanitizer must not
# observe itself.
_state_lock = threading.Lock()
_reports: list[SanitizerReport] = []
#: acquisition-order edges observed so far: held-lock name -> names
#: acquired while holding it
_order_edges: dict[str, set[str]] = {}
_reported_pairs: set[tuple[str, str]] = set()

_held = threading.local()  # per-thread stack of MonitoredLock names


def _held_stack() -> list[str]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = _held.stack = []
    return stack


def _file_report(kind: str, message: str) -> None:
    with _state_lock:
        _reports.append(SanitizerReport(kind=kind, message=message))


def reports() -> list[SanitizerReport]:
    """Snapshot of everything filed since the last :func:`reset`."""
    with _state_lock:
        return list(_reports)


def reset() -> None:
    """Clear reports and the order graph (test isolation)."""
    with _state_lock:
        _reports.clear()
        _order_edges.clear()
        _reported_pairs.clear()


def _path_between(src: str, dst: str) -> list[str] | None:
    """A path ``src → … → dst`` in the order graph, if one exists.
    Caller holds ``_state_lock``."""
    stack = [(src, [src])]
    seen = {src}
    while stack:
        node, path = stack.pop()
        if node == dst:
            return path
        for nxt in sorted(_order_edges.get(node, ())):
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, [*path, nxt]))
    return None


class MonitoredLock:
    """A lock wrapper recording acquisition order and per-thread holds.

    Wraps any lock with ``acquire``/``release`` (Lock, RLock). Reentrant
    acquires of the same name do not re-record edges.
    """

    def __init__(self, lock: Any, name: str) -> None:
        self._lock = lock
        self.name = name

    # ------------------------------------------------------------- protocol
    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        self._before_acquire()
        got = self._lock.acquire(*args, **kwargs)
        if got:
            _held_stack().append(self.name)
        return got

    def release(self) -> None:
        stack = _held_stack()
        if self.name in stack:
            # remove the innermost hold (reentrant locks release in pairs)
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] == self.name:
                    del stack[i]
                    break
        self._lock.release()

    def __enter__(self) -> MonitoredLock:
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    # ------------------------------------------------------------- checking
    def held_by_current_thread(self) -> bool:
        return self.name in _held_stack()

    def _before_acquire(self) -> None:
        stack = _held_stack()
        if not stack or self.name in stack:
            return  # first lock, or a reentrant acquire
        holding = stack[-1]
        with _state_lock:
            _order_edges.setdefault(holding, set()).add(self.name)
            inverse = _path_between(self.name, holding)
            if inverse is not None:
                pair = (min(holding, self.name), max(holding, self.name))
                if pair not in _reported_pairs:
                    _reported_pairs.add(pair)
                    _reports.append(SanitizerReport(
                        kind="lock-order",
                        message=(
                            f"lock-order inversion: acquiring "
                            f"{self.name!r} while holding {holding!r}, "
                            f"but the opposite order "
                            f"{' -> '.join(inverse)} was also observed — "
                            f"these threads can deadlock")))


def sanitize_lock(lock: Any, name: str) -> Any:
    """Wrap ``lock`` for monitoring when the sanitizer is enabled; return
    it untouched otherwise."""
    if not enabled():
        return lock
    return MonitoredLock(lock, name)


_GUARD_ATTR = "_repro_sanitizer_guards"
_guard_classes: dict[type, type] = {}


def _guarded_class(cls: type) -> type:
    sub = _guard_classes.get(cls)
    if sub is not None:
        return sub

    class _Guarded(cls):  # type: ignore[misc, valid-type]
        def __setattr__(self, name: str, value: Any) -> None:
            guards = self.__dict__.get(_GUARD_ATTR)
            if guards is not None:
                lock = guards.get(name)
                if lock is not None and not lock.held_by_current_thread():
                    _file_report(
                        "unguarded-write",
                        f"unguarded write to "
                        f"{cls.__name__}.{name} from thread "
                        f"{threading.current_thread().name!r} without "
                        f"holding {lock.name!r}")
            super().__setattr__(name, value)

    _Guarded.__name__ = cls.__name__
    _Guarded.__qualname__ = cls.__qualname__
    _Guarded._repro_sanitizer_guarded = True  # type: ignore[attr-defined]
    _guard_classes[cls] = _Guarded
    return _Guarded


def guard_writes(obj: Any, lock: Any, attrs: tuple[str, ...]) -> None:
    """Register ``attrs`` of ``obj`` as guarded by ``lock`` (a
    :class:`MonitoredLock`); writes without the lock held are reported.
    No-op when the sanitizer is disabled or ``lock`` is a bare stdlib
    lock (i.e. came from :func:`sanitize_lock` while disabled)."""
    if not enabled() or not isinstance(lock, MonitoredLock):
        return
    guards = obj.__dict__.setdefault(_GUARD_ATTR, {})
    for attr in attrs:
        guards[attr] = lock
    cls = type(obj)
    if not getattr(cls, "_repro_sanitizer_guarded", False):
        obj.__class__ = _guarded_class(cls)
