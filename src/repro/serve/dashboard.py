"""``repro top``: a curses-free terminal dashboard over ``GET /status``.

Pure rendering (:func:`render_top`: status dict in, text out — what the
tests cover) plus a small poll loop (:func:`top`) that repaints with ANSI
clear-screen between samples. No dependencies beyond the stdlib.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import TextIO

from repro.obs.report import sparkline

__all__ = ["render_top", "fetch_status", "top"]

_CLEAR = "\x1b[2J\x1b[H"


def _bar(value: float, full: float, width: int) -> str:
    full = max(full, 1e-9)
    filled = max(0, min(width, round(width * value / full)))
    return "█" * filled + "·" * (width - filled)


def render_top(status: dict, width: int = 72) -> str:
    """One dashboard frame from a ``/status`` document."""
    lines: list[str] = []
    state = status.get("state", "?")
    lines.append(
        f"repro top — {status.get('workload', '?')} x "
        f"{status.get('balancer', '?')} [{state}]  "
        f"tick {status.get('tick', 0)}/{status.get('max_ticks', 0)}  "
        f"epoch {status.get('epoch', 0)} (len {status.get('epoch_len', 0)})")

    eps = status.get("epochs_per_second")
    ops = status.get("ops_per_second")
    rate = []
    if eps is not None:
        rate.append(f"{eps:,.1f} epochs/s")
    if ops is not None:
        rate.append(f"{ops:,.0f} ops/s")
    clients = f"{status.get('clients_done', 0)}/{status.get('clients', 0)}"
    lines.append(f"clients done {clients}"
                 + (f"  |  {'  '.join(rate)}" if rate else ""))

    series = status.get("if_series") or []
    lines.append(f"IF {status.get('if', 0.0):6.3f}  {sparkline(series)}")

    profile = status.get("workload_profile") or {}
    if profile:
        lines.append(
            f"workload {profile.get('op_mix', '?')}  "
            f"heat gini {profile.get('heat_gini', 0.0):.3f}  "
            f"top1 {profile.get('top1_share', 0.0):.0%}  "
            f"churn {profile.get('churn', 0.0):.2f}")

    loads = status.get("loads") or []
    caps = status.get("capacities") or [1.0] * len(loads)
    failed = set(status.get("failed") or [])
    outcomes = status.get("outcomes") or {}
    mig_in = outcomes.get("migrations_in") or []
    mig_out = outcomes.get("migrations_out") or []
    bar_w = max(10, width - 42 if outcomes else width - 30)
    for rank, load in enumerate(loads):
        cap = caps[rank] if rank < len(caps) else 1.0
        tag = " DOWN" if rank in failed else ""
        inout = ""
        if outcomes:
            n_in = mig_in[rank] if rank < len(mig_in) else 0
            n_out = mig_out[rank] if rank < len(mig_out) else 0
            inout = f"  in {n_in:3d} out {n_out:3d}"
        lines.append(f"mds.{rank} [{_bar(load, cap, bar_w)}] "
                     f"{load:8.1f}/{cap:.0f}{inout}{tag}")

    lines.append(
        f"migrated {status.get('migrated_inodes', 0):,} inodes  |  exports "
        f"{status.get('committed_tasks', 0)} committed / "
        f"{status.get('aborted_tasks', 0)} aborted  |  "
        f"forwards {status.get('forwards', 0):,}")

    if outcomes:
        verdicts = outcomes.get("verdicts") or {}
        tally = "  ".join(
            f"{v}={verdicts.get(v, 0)}"
            for v in ("paid_off", "neutral", "wasted", "ping_pong"))
        lines.append(
            f"ledger {outcomes.get('judged', 0)} judged: {tally}  |  "
            f"benefit {outcomes.get('efficiency', 0.0):.0%}  |  "
            f"waste {outcomes.get('aborted_inodes', 0):,} inodes")

    trace = status.get("trace") or {}
    bus = status.get("bus") or {}
    mut = status.get("mutations") or {}
    drops = []
    if trace.get("dropped"):
        drops.append(f"trace ring dropped {trace['dropped']}")
    if bus.get("dropped"):
        drops.append(f"event bus dropped {bus['dropped']}")
    lines.append(
        f"trace {trace.get('emitted', 0)} events  |  "
        f"bus {bus.get('subscribers', 0)} stream(s)  |  "
        f"config changes {mut.get('applied', 0)} applied, "
        f"{mut.get('queued', 0)} queued"
        + ("  |  ! " + ", ".join(drops) if drops else ""))
    return "\n".join(lines)


def fetch_status(url: str, timeout: float = 5.0) -> dict:
    with urllib.request.urlopen(f"{url}/status", timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def top(url: str, *, interval: float = 1.0, iterations: int | None = None,
        out: TextIO | None = None) -> int:
    """Poll ``url``/status and repaint until the service finishes.

    ``iterations`` bounds the number of frames (``1`` = print once and
    exit — the CI smoke mode); ``None`` runs until the service reports a
    terminal state or the connection drops.
    """
    out = out if out is not None else sys.stdout
    frames = 0
    while True:
        try:
            status = fetch_status(url)
        except (urllib.error.URLError, OSError) as exc:
            print(f"repro top: cannot reach {url}: {exc}", file=sys.stderr)
            return 1
        frames += 1
        if iterations is not None and frames == 1 and iterations == 1:
            print(render_top(status), file=out)
        else:
            print(_CLEAR + render_top(status), file=out, flush=True)
        if status.get("state") in ("done", "stopped"):
            return 0
        if iterations is not None and frames >= iterations:
            return 0
        time.sleep(interval)
    # unreachable
