"""The stdlib HTTP control plane of ``repro serve``.

No third-party dependencies: a ``ThreadingHTTPServer`` (one daemon thread
per connection) in front of a :class:`~repro.serve.service.SimulatorService`.

Endpoints (all bodies JSON unless noted):

==============  =========================================================
``GET /metrics``     OpenMetrics exposition of the live registry
                     (``obs/prom.py``; scrape-compatible, self-check
                     parseable)
``GET /status``      service/cluster snapshot (``repro top`` polls this)
``GET /timeseries``  the flight recorder's per-epoch table
``GET /events``      NDJSON stream of decision-trace events as they are
                     emitted (``?sse=1`` switches to Server-Sent Events
                     framing); slow consumers drop, never block the sim
``POST /config``     queue config mutations ``{knob: value, ...}``;
                     applied at the next epoch boundary, each minted as
                     a ``config_changed`` trace event
``POST /pause`` / ``POST /resume`` / ``POST /step``  lifecycle control
``POST /shutdown``   graceful stop: the driver winds down, artifacts
                     flush, the process exits 0
==============  =========================================================
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.events import event_to_json
from repro.serve.service import MutationError, SimulatorService

__all__ = ["ControlPlane", "OPENMETRICS_CONTENT_TYPE"]

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8")
_JSON = "application/json; charset=utf-8"
#: how long an /events stream waits for the next event before checking
#: whether the client or the service went away
_STREAM_POLL_S = 0.5


class ControlPlane:
    """Own the HTTP server; bind with ``port=0`` for an ephemeral port."""

    def __init__(self, service: SimulatorService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        handler = _make_handler(service)
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]
        # guarded-by: none — start()/stop() are main-thread lifecycle
        # calls; no handler thread ever touches the server thread handle
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve-http",
            daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


def _make_handler(service: SimulatorService) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args: object) -> None:  # noqa: A002
            pass  # the access log would interleave with the CLI's output

        # ------------------------------------------------------------ plumbing
        def _send(self, code: int, body: bytes, content_type: str) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, code: int, doc: dict) -> None:
            body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
            self._send(code, body, _JSON)

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise ValueError("empty request body; expected JSON")
            return json.loads(raw)

        # ------------------------------------------------------------- routes
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                body = service.metrics_text().encode("utf-8")
                self._send(200, body, OPENMETRICS_CONTENT_TYPE)
            elif path == "/status":
                self._send_json(200, service.status())
            elif path == "/timeseries":
                self._send_json(200, service.timeseries())
            elif path == "/events":
                self._stream_events(sse="sse=1" in self.path)
            else:
                self._send_json(404, {"error": f"no such endpoint {path!r}"})

        def do_POST(self) -> None:  # noqa: N802
            path = self.path.split("?", 1)[0]
            try:
                if path == "/config":
                    queued = service.queue_mutations(self._read_json())
                    self._send_json(202, {
                        "queued": queued,
                        "applies": "at the next epoch boundary"})
                elif path == "/pause":
                    service.pause()
                    self._send_json(200, {"state": service.current_state()})
                elif path == "/resume":
                    service.resume()
                    self._send_json(200, {"state": service.current_state()})
                elif path == "/step":
                    doc = self._read_json()
                    service.step(int(doc.get("ticks", 1)))
                    self._send_json(200, {"state": service.current_state()})
                elif path == "/shutdown":
                    service.request_stop()
                    self._send_json(200, {"stopping": True})
                else:
                    self._send_json(404, {"error": f"no such endpoint {path!r}"})
            except (MutationError, ValueError) as exc:
                self._send_json(400, {"error": str(exc)})

        # ------------------------------------------------------------ streaming
        def _stream_events(self, sse: bool) -> None:
            sub = service.bus.subscribe()
            try:
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/event-stream" if sse else "application/x-ndjson")
                self.send_header("Cache-Control", "no-cache")
                # stream until either side goes away; length is unknowable
                self.send_header("Connection", "close")
                self.end_headers()
                while True:
                    try:
                        event = sub.get(timeout=_STREAM_POLL_S)
                    except queue.Empty:
                        if service.finished:
                            break
                        continue
                    line = event_to_json(event)
                    chunk = (f"data: {line}\n\n" if sse else f"{line}\n")
                    self.wfile.write(chunk.encode("utf-8"))
                    self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                pass  # consumer hung up; the subscription dies with it
            finally:
                sub.close()
                self.close_connection = True

    return Handler
