"""Columnar serve-path kernel.

The simulator's per-tick hot path, rewritten over batched state: a
precomputed dir→authority table (:mod:`repro.kernel.authtable`) replaces
per-request dict walks, and a run-batching engine
(:mod:`repro.kernel.engine`) serves whole same-directory op runs per
client per quantum round instead of iterating Python op tuples one at a
time. Decision equivalence with the scalar reference path is the
contract — see ``docs/PERFORMANCE.md``.
"""

from repro.kernel.authtable import AuthTable
from repro.kernel.engine import ColumnarEngine

__all__ = ["AuthTable", "ColumnarEngine"]
