"""The columnar serve engine: run-batched, decision-equivalent serving.

One tick of the scalar reference path drains clients round-robin, one op
at a time: every op pays a ``Router.route`` dict walk, a per-op stats
update and a generator ``next``. This engine serves *runs* — maximal
same-directory, same-class op prefixes — in single batched steps, while
producing byte-identical decision traces:

- authority comes from the :class:`~repro.kernel.authtable.AuthTable`
  (rebuilt only on authority-map version bumps) instead of per-request
  resolution; an op is *pure* when the client's cached authority matches
  the table (no hops, no cache mutation — ``route`` would be a no-op);
- any op that could have routing side effects (cold or stale cache, a
  fragment redirect, a data-path stall) falls back to a scalar
  ``_serve_op`` that mirrors the reference loop statement for statement;
- per-client effects of a pure run are applied in one step each:
  :meth:`~repro.cluster.mds.MDS.serve_batch` (exact — integer
  subtraction below 1.0 never rounds), batched stats recording (heat by
  repeated ``+= 1.0``; tallies are commutative), and
  :meth:`~repro.workloads.base.Client.advance_run` (op buffer + RNG
  stall-block lookahead, value-identical by per-client substreams).

Round-robin structure is preserved exactly: clients take at most
``serve_quantum`` ops per round, so cross-client interleaving — the only
thing capacity contention and shared-directory creates can observe — is
unchanged. A tick's sole surviving client is drained without round
bookkeeping (interleaving is vacuous then), which removes the quantum
cap from long single-client tails.

On top of the run-batched round loop sits a tick-level fast path
(:meth:`ColumnarEngine._turbo_tick`) for the homogeneous regime — every
active client a pure warm-cache create stream into its own directory (an
mdtest-style create storm, the serve path's worst case). There the whole
tick collapses to integer arithmetic: client cuts come from the
pre-scanned stall queue, round-robin capacity contention is emulated
over per-directory fragment-owner cycles without touching an op, and
each client gets exactly one batched apply (MDS credits, stats, stream
skip) per tick. Any client that breaks the regime — cold or stale
cache, a fragment whose owner would redirect, a data op, a rate limit,
a shared directory — sends the tick down the general round loop.
"""

from __future__ import annotations

import math
from bisect import bisect_right

import numpy as np

from repro.cluster.mds import MDS
from repro.cluster.osd import OsdPool
from repro.cluster.router import Router
from repro.cluster.stats import AccessStats
from repro.kernel.authtable import AuthTable
from repro.namespace.tree import NamespaceTree
from repro.workloads.base import OP_CREATE, OP_READDIR, Client

__all__ = ["ColumnarEngine"]

# outcome of one client's turn in a round
_SURVIVE = 0  # quantum exhausted while still ready: rejoin next round
_OUT = 1  # out for the rest of this tick (stall/done/rate/data/capacity)

# outcome of a single scalar-fallback op
_OP_SERVED = 0
_OP_OUT = 1
_OP_BLOCKED = 2

# run classes (must match the scalar stats dispatch exactly)
_CREATE = 0
_DIR = 1
_FILE = 2


class ColumnarEngine:
    """Drop-in replacement for ``Simulator._serve_tick``'s body."""

    def __init__(self, *, clients: list[Client], mdss: list[MDS],
                 router: Router, tree: NamespaceTree, stats: AccessStats,
                 osd: OsdPool | None, data_busy: set[int],
                 serve_quantum: int, forward_charge: float,
                 data_window: float) -> None:
        # live references — the simulator mutates these lists/sets in place
        self.clients = clients
        self.mdss = mdss
        self.router = router
        self.tree = tree
        self.stats = stats
        self.osd = osd
        self.data_busy = data_busy
        self.serve_quantum = serve_quantum
        self.forward_charge = forward_charge
        self.data_window = data_window
        self.table = AuthTable(router.authmap)
        self._wait = 0
        # cid -> ((dir, frag generation, lease expiry), lo, hi): fragment
        # keys for create indices in [lo, hi) verified warm; lets the fast
        # path probe each key once instead of re-probing every tick
        self._warm: dict[int, tuple[tuple[int, int, int], int, int]] = {}

    # ------------------------------------------------------------------ tick
    def serve_tick(self, now: int) -> int:
        """Serve one tick; returns the tick's queueing-delay count."""
        data_busy = self.data_busy
        active = [
            c for c in self.clients
            if c.done_at is None and c.ready_at <= now and c.cid not in data_busy
        ]
        if not active:
            return 0
        auth = self.table.refresh()
        frag_info = self.table.frag_info
        router = self.router
        if router.lease_ttl > 0:
            # The scalar path expires leases inside every active client's
            # first route() of the tick; hoisting the (idempotent) check
            # here lets pure runs skip route() entirely.
            for c in active:
                router.check_lease(c.routing, now)
        self._wait = 0
        if self._turbo_tick(active, now, auth):
            return self._wait
        quantum = self.serve_quantum
        while active:
            survivors: list[Client] = []
            # a lone client's rounds cannot interleave with anyone: drain
            # it in one turn instead of quantum-sized slices
            budget = quantum if len(active) > 1 else (1 << 30)
            for c in active:
                if c.rate is not None:
                    if c.rate_tick != now:
                        c.rate_tick = now
                        c.rate_served = 0
                    elif c.rate_served >= c.rate:
                        continue
                if self._serve_client(c, now, budget, auth, frag_info) == _SURVIVE:
                    survivors.append(c)
            active = survivors
        return self._wait

    # ------------------------------------------------------------- turbo tick
    def _turbo_tick(self, active: list[Client], now: int,
                    auth: list[int]) -> bool:
        """Serve a homogeneous pure tick without materializing any op.

        Eligible when every active client is an unlimited-rate create
        stream (:class:`~repro.workloads.base.RepeatOps`) into its own
        directory, with no data path in play. Warm-cache clients — dir
        cache current, every touched fragment key cached at its live
        owner — have a proven no-op ``route`` for every op of the tick,
        so their only cross-client coupling is MDS capacity: their turns
        are emulated in exact round-robin order against the live credit
        columns, and every per-client side effect is applied once, in a
        single batched step after the race. Clients whose cache is cold
        or stale (the first post-migration tick) take their turns through
        the general round path in the same round-robin sequence — credits
        stay live precisely so both kinds of turn observe each other.
        Returns False — with no simulation state touched — if any client
        breaks the regime (rate limits, data ops, shared or non-stream
        directories).
        """
        if self.osd is not None:
            return False
        table = self.table
        frag_seq = table.frag_seq
        frag_rle = table.frag_rle
        frag_info = table.frag_info
        frag_gen = table.frag_gen
        n_files = self.tree.n_files
        k = len(active)
        dirs: set[int] = set()
        ds = [0] * k  # target directory per client
        nfs = [0] * k  # its file count at tick start (first create index)
        n_cs = [0] * k  # tick cut: ops until stall / stream end
        #: owner cycle RLE ``(P, starts, lens, owners)`` for multi-owner dirs
        cycles: list[tuple[int, list[int], list[int], list[int]] | None] = [None] * k
        owners1 = [0] * k  # the single owner when cycles[i] is None
        slow = [False] * k  # cold/stale cache: serve live via the round path
        for i, c in enumerate(active):
            if c.rate is not None:
                return False
            left = c.stream_left()
            if left is None:
                return False
            kind, d, _idx, nb = c.current  # type: ignore[misc]
            if kind != OP_CREATE or nb != 0:
                return False
            if d in dirs:
                return False
            dirs.add(d)
            ds[i] = d
            if c.routing.auth_cache.get(d) != auth[d]:
                slow[i] = True
                continue
            cut = c.stall_scan(left - 1)
            n_c = left if cut < 0 else cut + 1
            nf = n_files[d]
            seq = frag_seq.get(d)
            if seq is None:
                owners1[i] = auth[d]
            else:
                if not self._frag_window_warm(c, d, nf, n_c, seq, frag_gen[d]):
                    slow[i] = True
                    continue
                uniform = frag_info[d][2]
                if uniform is not None:
                    owners1[i] = uniform
                else:
                    starts, lens, sowners = frag_rle[d]
                    cycles[i] = (len(seq), starts, lens, sowners)
            nfs[i] = nf
            n_cs[i] = n_c
        # -- the round-robin capacity race against live credit columns ------
        # Emulated turns debit MDS.remaining in place (exact: stepwise and
        # batched subtraction of integer credits agree in IEEE-754), so
        # interleaved slow-client turns — which route, forward-charge and
        # serve against the same columns — observe them and vice versa.
        mdss = self.mdss
        cnt = [0] * len(mdss)
        served = [0] * k
        wait = 0
        order = list(range(k))
        if not any(slow):
            # capacity pre-check: when every MDS can absorb this tick's
            # whole demand (remaining >= demand, i.e. no op ever finds its
            # owner below one credit), no client blocks — round-robin
            # interleaving is unobservable and the race collapses to one
            # batched debit per MDS
            demand = [0] * len(mdss)
            frag_tot = table.frag_tot
            for i in range(k):
                n_c = n_cs[i]
                cyc = cycles[i]
                if cyc is None:
                    demand[owners1[i]] += n_c
                else:
                    P, starts, lens, sowners = cyc
                    full, rem_n = divmod(n_c, P)
                    if full:
                        for m, tno in frag_tot[ds[i]].items():
                            demand[m] += full * tno
                    if rem_n:
                        pos = nfs[i] % P
                        si = bisect_right(starts, pos) - 1
                        off = pos - starts[si]
                        nseg = len(starts)
                        while rem_n > 0:
                            take = lens[si] - off
                            if take > rem_n:
                                take = rem_n
                            demand[sowners[si]] += take
                            rem_n -= take
                            off = 0
                            si += 1
                            if si == nseg:
                                si = 0
            if all(n <= int(mdss[m].remaining)
                   for m, n in enumerate(demand) if n):
                for m, n in enumerate(demand):
                    if n:
                        mdss[m].remaining -= n
                        cnt[m] = n
                served = n_cs
                order = []
        quantum = self.serve_quantum
        while order:
            nxt: list[int] = []
            single = len(order) == 1
            budget = (1 << 30) if single else quantum
            for i in order:
                if slow[i]:
                    c = active[i]
                    if self._serve_client(c, now, budget, auth,
                                          frag_info) == _SURVIVE:
                        nxt.append(i)
                    continue
                left = n_cs[i] - served[i]
                slice_n = left if single or left < quantum else quantum
                cyc = cycles[i]
                if cyc is None:
                    m = owners1[i]
                    md = mdss[m]
                    r = md.remaining
                    if r < 1.0:
                        wait += 1
                        continue
                    t = slice_n if r >= slice_n else int(r)
                    md.remaining = r - t
                    cnt[m] += t
                    served[i] += t
                    if t < slice_n:
                        wait += 1
                        continue
                else:
                    # walk same-owner segments of the fragment cycle; ops
                    # within a segment debit one MDS, so a whole segment
                    # (or the owner's credit floor) advances in one step
                    P, starts, lens, sowners = cyc
                    pos = (nfs[i] + served[i]) % P
                    si = bisect_right(starts, pos) - 1
                    off = pos - starts[si]
                    nseg = len(starts)
                    t = 0
                    blocked = False
                    while t < slice_n:
                        m = sowners[si]
                        md = mdss[m]
                        r = md.remaining
                        if r < 1.0:
                            blocked = True
                            break
                        need = slice_n - t
                        seg_avail = lens[si] - off
                        take = seg_avail if seg_avail < need else need
                        if r < take:
                            # the owner's credits run dry inside this
                            # segment: its next op blocks the client
                            take = int(r)
                            md.remaining = r - take
                            cnt[m] += take
                            t += take
                            blocked = True
                            break
                        md.remaining = r - take
                        cnt[m] += take
                        t += take
                        off += take
                        if off == lens[si]:
                            off = 0
                            si += 1
                            if si == nseg:
                                si = 0
                    served[i] += t
                    if blocked:
                        wait += 1
                        continue
                if served[i] < n_cs[i]:
                    nxt.append(i)
            order = nxt
        # -- apply: one batched step per MDS and per client ------------------
        for m, n in enumerate(cnt):
            if n:
                md = mdss[m]
                md.served_epoch += n
                md.served_total += n
        tree = self.tree
        stats = self.stats
        for i, c in enumerate(active):
            srv = served[i]
            if srv == 0:
                continue
            c.meta_ops += srv
            d = ds[i]
            first = tree.add_files(d, srv)
            assert first == nfs[i]
            stats.record_create_batch(d, first, srv)
            c.advance_bulk(srv, now)
        self._wait += wait
        return True

    def _frag_window_warm(self, c: Client, d: int, nf: int, n_c: int,
                          seq: list[int], gen: int) -> bool:
        """Is every fragment key this tick's create window can touch warm?

        Warm means *present and equal to the live owner*: ``route`` would
        neither hop nor change the cached value. Verified coverage is
        remembered per client as an absolute create-index interval — keys
        repeat every cycle, so a covered interval one cycle long means
        every key of the dir is warm — and extended incrementally: each
        tick probes only the indices past the previous high-water mark,
        amortizing verification to one probe per created file. Coverage
        resets when the dir's fragment-ownership generation or the
        client's lease arming moves (a lease expiry clears the whole
        cache; a migration can silently re-own fragments).
        """
        routing = c.routing
        key = (d, gen, routing.lease_expiry)
        P = len(seq)
        st = self._warm.get(c.cid)
        if st is not None and st[0] == key and st[1] <= nf <= st[2]:
            lo, hi = st[1], st[2]
            if hi - lo >= P or nf + n_c <= hi:
                return True
            start = hi
        else:
            lo = start = nf
        cache = routing.auth_cache
        mask = P - 1
        end = nf + n_c
        if end > lo + P:  # one full cycle of coverage checks every key
            end = lo + P
        fn = start & mask
        for j in range(start, end):
            if cache.get((d, fn)) != seq[fn]:
                self._warm[c.cid] = (key, lo, j)
                return False
            fn = (fn + 1) & mask
        self._warm[c.cid] = (key, lo, end)
        return True

    # ------------------------------------------------------------ client turn
    def _serve_client(self, c: Client, now: int, budget: int,
                      auth: list[int], frag_info: dict) -> int:
        mdss = self.mdss
        tree = self.tree
        stats = self.stats
        osd = self.osd
        cache = c.routing.auth_cache
        rate = c.rate
        while budget > 0:
            kind, d, idx, nb = c.current  # type: ignore[misc]
            serving = auth[d]
            if cache.get(d) != serving:
                # cold or stale cache: route() resolves/redirects with
                # side effects — replay the reference path for this op
                status = self._serve_op(c, now)
                if status == _OP_BLOCKED:
                    self._wait += 1
                    return _OUT
                if status == _OP_OUT:
                    return _OUT
                budget -= 1
                continue
            frag = frag_info.get(d)
            # head-op class (mirrors the scalar stats dispatch)
            if kind == OP_CREATE:
                cls = _CREATE
            elif kind == OP_READDIR or idx < 0:
                cls = _DIR
            else:
                cls = _FILE
            nf0 = tree.n_files[d]
            head_ridx = nf0 if cls == _CREATE else idx
            if nb > 0 and osd is not None:
                status = self._serve_op(c, now)
                if status == _OP_BLOCKED:
                    self._wait += 1
                    return _OUT
                if status == _OP_OUT:
                    return _OUT
                budget -= 1
                continue
            serving_op = serving
            multi = False
            if frag is not None:
                if head_ridx >= 0:
                    fa = self._head_frag_owner(frag, cache, d, head_ridx,
                                               serving)
                    if fa < 0:
                        # cold or stale fragment key: route() hops — replay
                        # the reference path for this op
                        status = self._serve_op(c, now)
                        if status == _OP_BLOCKED:
                            self._wait += 1
                            return _OUT
                        if status == _OP_OUT:
                            return _OUT
                        budget -= 1
                        continue
                    serving_op = fa
                uniform = frag[2]
                # a run serves at one MDS only if every op resolves to one
                # owner: non-uniform frag cycles never do, and dir-class
                # runs mix unfragged (dir-auth) ops with fragment owners
                multi = uniform is None or (cls == _DIR and uniform != serving)
            # pure head: route() would return (serving_op, []) with no side
            # effects beyond a value-preserving (or fresh same-owner) frag
            # cache write — capacity is now the only gate, exactly as in
            # the reference order (route first, then the remaining<1.0
            # check)
            mds = mdss[serving_op]
            rem = mds.remaining
            if rem < 1.0:
                self._wait += 1
                return _OUT
            if multi:
                # capacity is emulated inside the run, but total cluster
                # credits still bound how far it can go — without this a
                # lone-survivor drain would scan (and buffer) the whole
                # remaining stream just to serve a tick's worth
                cap = 1
                for md2 in mdss:
                    cap += int(md2.remaining)
                t_limit = budget if budget < cap else cap
            else:
                t_limit = min(budget, int(rem))
            if rate is not None:
                # rates may be fractional: the scalar loop serves until
                # rate_served >= rate, i.e. ceil(rate - served) more ops
                t_limit = min(t_limit, math.ceil(rate - c.rate_served))
            t = self._serve_run(c, now, t_limit, cls, d, nf0, frag, serving,
                                cache, mds, stats, tree, osd, multi)
            budget -= t
            if c.done_at is not None:
                if osd is not None and osd.outstanding(c.cid) > 0.0:
                    self.data_busy.add(c.cid)
                return _OUT
            if c.ready_at > now:
                return _OUT
            if rate is not None and c.rate_served >= rate:
                return _OUT
        return _SURVIVE

    @staticmethod
    def _head_frag_owner(frag: tuple[int, dict[int, int], int | None],
                         cache: dict, d: int, ridx: int, serving: int) -> int:
        """The fragment owner route() would serve at, or -1 if impure.

        Pure means route() takes no hop and any frag-cache write it makes
        is replicated by the batch path: the cached entry equals the live
        owner (warm — the write rewrites its value), or the key is cold
        *and* the owner is the directory authority (the fresh write the
        batch path performs; a cold key whose owner differs would hop).
        """
        bits, owners, _uniform = frag
        frag_no = ridx & ((1 << bits) - 1)
        fa = owners.get(frag_no, serving)
        cached = cache.get((d, frag_no))
        if cached is None:
            if fa != serving:
                return -1
        elif cached != fa:
            return -1
        return fa

    # ------------------------------------------------------------------- run
    def _serve_run(self, c: Client, now: int, t_limit: int, cls: int, d: int,
                   nf0: int, frag: tuple[int, dict[int, int], int | None] | None,
                   serving: int, cache: dict, mds: MDS, stats: AccessStats,
                   tree: NamespaceTree, osd: OsdPool | None,
                   multi: bool) -> int:
        """Serve up to ``t_limit`` ops of the pure run at the stream head.

        Returns the number of ops actually served (>= 1: the head op is
        known pure and capacity-admitted by the caller). With ``multi``
        the run's ops may resolve to different fragment owners; the
        caller's ``t_limit`` then excludes capacity, which is emulated
        here per op in stream order against a local credit view.
        """
        buf, start, avail = c.buffered_ops(t_limit)
        scan_lim = min(t_limit, 1 + avail)
        mdss = self.mdss
        # -- scan: maximal same-dir same-class pure prefix ------------------
        idxs: list[int] | None = [] if cls == _FILE else None
        frag_keys: list[tuple[tuple[int, int], int]] | None = (
            [] if frag is not None else None)
        ows: list[int] | None = [] if multi else None
        nbs: list[int] | None = None
        t_scan = 1  # the head op, vetted by the caller
        if frag is not None:
            assert frag_keys is not None
            bits, owners, _uniform = frag
            mask = (1 << bits) - 1
            head_ridx = nf0 if cls == _CREATE else c.current[2]  # type: ignore[index]
            if head_ridx >= 0:
                fn = head_ridx & mask
                fa = owners.get(fn, serving)
                frag_keys.append(((d, fn), fa))
                if ows is not None:
                    ows.append(fa)
            elif ows is not None:
                ows.append(serving)
        head_nb = c.current[3]  # type: ignore[index]
        if cls == _FILE:
            assert idxs is not None
            idxs.append(c.current[2])  # type: ignore[index]
        if head_nb > 0:
            nbs = [head_nb]
        for i in range(1, scan_lim):
            kind2, d2, idx2, nb2 = buf[start + i - 1]
            if d2 != d:
                break
            if kind2 == OP_CREATE:
                cls2 = _CREATE
            elif kind2 == OP_READDIR or idx2 < 0:
                cls2 = _DIR
            else:
                cls2 = _FILE
            if cls2 != cls:
                break
            if nb2 > 0 and osd is not None:
                break
            if frag is not None:
                ridx2 = nf0 + i if cls == _CREATE else idx2
                if ridx2 >= 0:
                    # inline _head_frag_owner: pure iff warm (cached ==
                    # live owner) or cold with owner == dir authority
                    fn = ridx2 & mask
                    fa = owners.get(fn, serving)
                    cached = cache.get((d, fn))
                    if cached is None:
                        if fa != serving:
                            break
                    elif cached != fa:
                        break
                    assert frag_keys is not None
                    frag_keys.append(((d, fn), fa))
                    if ows is not None:
                        ows.append(fa)
                elif ows is not None:
                    ows.append(serving)
            if cls == _FILE:
                assert idxs is not None
                idxs.append(idx2)
            if nb2 > 0 and nbs is None:
                nbs = [0] * i
            if nbs is not None:
                nbs.append(nb2)
            t_scan += 1
        # -- cut: capacity (multi-owner runs), then the first stalling
        # think-time draw --------------------------------------------------
        if ows is not None:
            # walk owners in stream order against a local credit view; the
            # first op whose owner is below one credit ends the run there
            # (the blocked op stays at the head: the next round's head
            # check attributes the wait tick, exactly as the scalar loop)
            remloc: dict[int, float] = {}
            t_cap = t_scan
            for p in range(t_scan):
                m = ows[p]
                r = remloc.get(m)
                if r is None:
                    r = mdss[m].remaining
                if r < 1.0:
                    t_cap = p
                    break
                remloc[m] = r - 1.0
        else:
            t_cap = t_scan
        # the advance onto a missing (stream-final) op never draws, so a
        # run that ends the stream scans one fewer draw than it has ops
        n_draws = t_cap if t_cap <= avail else t_cap - 1
        s = c.stall_scan(n_draws)
        t = s + 1 if s >= 0 else t_cap
        # -- apply: one batched step per side effect ------------------------
        if ows is None:
            mds.serve_batch(t)
        else:
            counts: dict[int, int] = {}
            for m in ows[:t]:
                counts[m] = counts.get(m, 0) + 1
            for m, n in counts.items():
                mdss[m].serve_batch(n)
        c.meta_ops += t
        if c.rate is not None:
            c.rate_served += t
        if cls == _CREATE:
            first = tree.add_files(d, t)
            stats.record_create_batch(d, first, t)
        elif cls == _DIR:
            stats.record_dir_batch(d, t)
        else:
            assert idxs is not None
            stats.record_file_batch(d, np.asarray(idxs[:t], dtype=np.int64))
        if nbs is not None:
            served_nbs = nbs[:t]
            n_data = sum(1 for b in served_nbs if b > 0)
            if n_data:
                c.data_ops += n_data
                c.data_bytes += sum(served_nbs)
        if frag_keys:
            for key, owner in frag_keys[:t]:
                cache[key] = owner
        c.advance_run(t, now)
        return t

    # --------------------------------------------------------- scalar fallback
    def _serve_op(self, c: Client, now: int) -> int:
        """One op exactly as the scalar reference loop serves it."""
        tree = self.tree
        kind, d, idx, nb = c.current  # type: ignore[misc]
        ridx = tree.n_files[d] if kind == OP_CREATE else idx
        serving, hops = self.router.route(c.routing, d, ridx, now)
        mdss = self.mdss
        mds = mdss[serving]
        if mds.remaining < 1.0:
            return _OP_BLOCKED
        forward_charge = self.forward_charge
        for h in hops:
            hop = mdss[h]
            hop.remaining -= forward_charge
            hop.forwards_handled += 1
        mds.serve()
        c.meta_ops += 1
        if c.rate is not None:
            c.rate_served += 1
        stats = self.stats
        if kind == OP_CREATE:
            new_idx = tree.add_files(d, 1)
            stats.record_file_access(d, new_idx, created=True)
        elif kind == OP_READDIR or idx < 0:
            stats.record_dir_access(d)
        else:
            stats.record_file_access(d, idx)
        osd = self.osd
        if nb > 0:
            c.data_ops += 1
            c.data_bytes += nb
            if osd is not None:
                osd.start(c.cid, float(nb))
                if osd.outstanding(c.cid) > self.data_window:
                    self.data_busy.add(c.cid)
                    c.advance(now)
                    return _OP_OUT
        c.advance(now)
        if c.done_at is not None:
            if osd is not None and osd.outstanding(c.cid) > 0.0:
                self.data_busy.add(c.cid)
            return _OP_OUT
        if c.ready_at > now or (c.rate is not None and c.rate_served >= c.rate):
            return _OP_OUT
        return _OP_SERVED
