"""Vectorized authority resolution: dir → auth MDS as a flat array.

:class:`~repro.namespace.subtree.AuthorityMap.resolve_dir` walks ancestor
chains per request with a per-version dict cache. The columnar engine
instead resolves against a dense array rebuilt only when the authority
map's version counter moves (migration commits, splits, pins, merges) —
during a serve phase authority is constant by construction (the migrator
and the balancer both run outside ``_serve_tick``), so one rebuild
amortizes over every op of every tick until the next authority event.

The rebuild is a parent-pointer propagation: seed the array with the
subtree roots' ranks, then repeatedly pull each unresolved directory's
value from its parent. Directory ids are assigned child-after-parent, so
the loop terminates in at most tree-depth iterations, all vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.namespace.subtree import AuthorityMap

__all__ = ["AuthTable"]

#: per-directory fragment info: ``(bits, owners, uniform_owner_or_None)``
FragInfo = dict[int, tuple[int, dict[int, int], int | None]]


class AuthTable:
    """Dense dir→auth array + fragment summary, keyed to the map version."""

    def __init__(self, authmap: AuthorityMap) -> None:
        self.authmap = authmap
        self._version = -1
        self._n_dirs = -1
        self._parent: np.ndarray | None = None
        self._auth_arr: np.ndarray = np.empty(0, dtype=np.int64)
        #: plain-list mirror of the array — Python list indexing is what
        #: the engine's per-run scalar lookups actually pay for
        self.auth: list[int] = []
        #: fragmented dirs with their live owner maps and, when every frag
        #: shares one owner, that owner (the uniform fast-path predicate)
        self.frag_info: FragInfo = {}
        #: dir -> dense owner-per-frag_no list (``len == 2**bits``, holes
        #: filled with the dir authority). The tick-level fast path walks
        #: this cyclically — create streams visit frag_no ``(n_files + i)
        #: & mask`` — instead of two dict gets per op.
        self.frag_seq: dict[int, list[int]] = {}
        #: dir -> run-length encoding of :attr:`frag_seq`:
        #: ``(starts, lens, owners)`` parallel lists over the cycle.
        #: Exported fragments cluster, so capacity emulation walks a few
        #: same-owner segments per quantum slice instead of every op.
        self.frag_rle: dict[int, tuple[list[int], list[int], list[int]]] = {}
        #: dir -> owner -> fragments owned per full cycle (column sums of
        #: :attr:`frag_seq`; lets per-tick demand accounting charge whole
        #: cycles at once)
        self.frag_tot: dict[int, dict[int, int]] = {}
        #: dir -> generation counter, bumped only when the dir's fragment
        #: ownership (or its defaulting authority) actually changes — the
        #: authority-map version moves on every migration commit, which
        #: would needlessly invalidate warm-cache stamps for every dir
        self.frag_gen: dict[int, int] = {}
        #: dir -> (bits, owners snapshot, base) the tables were built from
        self._frag_src: dict[int, tuple[int, dict[int, int], int]] = {}
        #: the subtree roots the auth array was propagated from
        self._roots: dict[int, int] = {}

    def refresh(self) -> list[int]:
        """Return the dir→auth list, rebuilding if authority changed."""
        authmap = self.authmap
        tree = authmap.tree
        n = tree.n_dirs
        if authmap.version == self._version and n == self._n_dirs:
            return self.auth
        if self._parent is None or self._n_dirs != n:
            parent = np.asarray(tree.parent, dtype=np.int64)
            parent[0] = 0  # the root is its own fixpoint
            self._parent = parent
        roots = authmap.subtree_roots()
        if n != self._n_dirs or roots != self._roots:
            auth = np.full(n, -1, dtype=np.int64)
            for d, mds in roots.items():
                auth[d] = mds
            unresolved = auth < 0
            while bool(unresolved.any()):
                auth[unresolved] = auth[self._parent[unresolved]]
                unresolved = auth < 0
            self._auth_arr = auth
            self.auth = auth.tolist()
            self._roots = dict(roots)
        auth_l = self.auth
        frag_src = self._frag_src
        seen: set[int] = set()
        for d in authmap.fragmented_dirs():
            seen.add(d)
            frag = authmap.frag_owners(d)
            assert frag is not None
            bits, owners = frag
            base = auth_l[d]
            prev = frag_src.get(d)
            if (prev is not None and prev[0] == bits and prev[2] == base
                    and prev[1] == owners):
                continue  # ownership content unchanged: keep the tables
            frag_src[d] = (bits, dict(owners), base)
            self.frag_gen[d] = self.frag_gen.get(d, 0) + 1
            distinct = set(owners.values())
            if len(owners) < (1 << bits):
                distinct.add(base)  # absent frags default to the dir auth
            uniform = distinct.pop() if len(distinct) == 1 else None
            self.frag_info[d] = (bits, owners, uniform)
            seq = [owners.get(fn, base) for fn in range(1 << bits)]
            self.frag_seq[d] = seq
            starts: list[int] = [0]
            lens: list[int] = []
            rle_owners: list[int] = [seq[0]]
            run = 1
            for fn in range(1, len(seq)):
                if seq[fn] == rle_owners[-1]:
                    run += 1
                else:
                    lens.append(run)
                    starts.append(fn)
                    rle_owners.append(seq[fn])
                    run = 1
            lens.append(run)
            self.frag_rle[d] = (starts, lens, rle_owners)
            tot: dict[int, int] = {}
            for owner, fcount in zip(rle_owners, lens):
                tot[owner] = tot.get(owner, 0) + fcount
            self.frag_tot[d] = tot
        if len(seen) != len(self.frag_info):
            for d in [x for x in self.frag_info if x not in seen]:
                del self.frag_info[d], self.frag_seq[d]
                del self.frag_rle[d], self.frag_tot[d], frag_src[d]
                self.frag_gen[d] = self.frag_gen.get(d, 0) + 1
        self._version = authmap.version
        self._n_dirs = n
        return self.auth

    def auth_array(self) -> np.ndarray:
        """The dense dir→auth array behind :attr:`auth` (refreshed copy)."""
        self.refresh()
        return self._auth_arr.copy()
