"""The :class:`ChaosController`: compiled fault windows onto a simulator.

``bind(sim)`` expands the schedule against the simulator's cluster size,
then returns ordinary ``(tick, fn)`` schedule entries — the same seam
tests already use for ad-hoc ``fail_mds`` injection — so the simulator
needs no knowledge of the chaos layer. Each window becomes an *inject*
callback at its start epoch and a *clear* callback at its end epoch.

Tick placement: events emitted at tick ``k * epoch_len`` attribute to the
*closing* epoch ``k - 1`` (the boundary tick belongs to the epoch it
ends), so faults fire at ``epoch * epoch_len + 1`` — the first tick
*inside* the target epoch. That keeps three views consistent: the
``fault_injected`` event, the ``mds_failed``/aborts it causes, and the
first behavioural divergence from a fault-free twin all land in the same
epoch, which is what ``repro diff`` reports and the provenance tests pin.

Provenance: each injection mints a decision id for its
``fault_injected`` event and passes it as ``cause`` into
``sim.fail_mds`` so every ``mds_failed`` abort records which fault killed
it; the matching ``fault_cleared`` parents to the injection, closing the
window in the DAG.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.chaos.schedule import ChaosSchedule, FaultWindow
from repro.obs.events import NO_DECISION, FaultCleared, FaultInjected

# the chaos layer drives the simulator by protocol, never by import (the
# simulator binds the controller, not the reverse) — hence the Any seam
SimLike = Any

__all__ = ["ChaosController"]


class ChaosController:
    """Applies and reverts a schedule's faults through simulator seams."""

    def __init__(self, schedule: ChaosSchedule, *,
                 seed: int | None = None) -> None:
        self.schedule = schedule
        self.seed = schedule.seed if seed is None else int(seed)
        #: filled by :meth:`bind`
        self.windows: list[FaultWindow] = []
        #: window -> did of its fault_injected event (after injection)
        self._inject_ids: dict[FaultWindow, int] = {}
        #: rank -> pre-fault capacity saved across a slow window
        self._saved_capacity: dict[int, float] = {}
        self.faults_injected = 0
        self.faults_cleared = 0

    # ---------------------------------------------------------------- binding
    def bind(self, sim: SimLike) -> list[tuple[int, object]]:
        """Compile the schedule into ``(tick, fn)`` entries for ``sim``.

        Raises the schedule's typed errors (unknown rank, overlap, bad
        epochs) before the run starts, never mid-run. At a shared tick,
        clears are ordered before injects so a back-to-back window pair
        (flapping) reverts the old fault before applying the new one.
        """
        self.windows = self.schedule.expand(sim.n_mds, self.seed)
        epoch_len = sim.config.epoch_len

        def tick_of(epoch: int) -> int:
            # first tick inside the epoch (see module docstring)
            return epoch * epoch_len + 1

        entries: list[tuple[int, int, object]] = []
        for w in self.windows:
            entries.append((tick_of(w.end_epoch), 0, self._clear_fn(w)))
            entries.append((tick_of(w.start_epoch), 1, self._inject_fn(w)))
        entries.sort(key=lambda e: (e[0], e[1]))
        return [(tick, fn) for tick, _, fn in entries]

    def _inject_fn(self, window: FaultWindow) -> Callable[[SimLike], None]:
        def inject(sim: SimLike, w: FaultWindow = window) -> None:
            self._inject(sim, w)
        return inject

    def _clear_fn(self, window: FaultWindow) -> Callable[[SimLike], None]:
        def clear(sim: SimLike, w: FaultWindow = window) -> None:
            self._clear(sim, w)
        return clear

    # -------------------------------------------------------------- faulting
    def _inject(self, sim: SimLike, w: FaultWindow) -> None:
        did = sim.trace.next_decision_id()
        self._inject_ids[w] = did
        sim.trace.emit(FaultInjected(
            epoch=sim.epoch, tick=sim.tick, kind=w.kind, rank=w.rank,
            factor=w.factor if w.kind == "slow" else 1.0, did=did))
        sim.metrics.counter("chaos.faults_injected", kind=w.kind).inc()
        self.faults_injected += 1
        if w.kind == "fail":
            sim.fail_mds(w.rank, cause=did)
        else:  # "slow": brownout, the rank keeps serving at reduced capacity
            mds = sim.mdss[w.rank]
            self._saved_capacity[w.rank] = mds.capacity
            mds.capacity = mds.capacity * w.factor

    def _clear(self, sim: SimLike, w: FaultWindow) -> None:
        parent = self._inject_ids.get(w, NO_DECISION)
        sim.trace.emit(FaultCleared(
            epoch=sim.epoch, tick=sim.tick, kind=w.kind, rank=w.rank,
            did=sim.trace.next_decision_id(), parent=parent))
        sim.metrics.counter("chaos.faults_cleared", kind=w.kind).inc()
        self.faults_cleared += 1
        if w.kind == "fail":
            sim.recover_mds(w.rank)
        else:
            # restore the exact saved float — no drift from re-multiplying
            sim.mdss[w.rank].capacity = self._saved_capacity.pop(w.rank)

    # ------------------------------------------------------------ inspection
    def first_fault_epoch(self) -> int | None:
        return self.windows[0].start_epoch if self.windows else None

    def inject_id(self, window: FaultWindow) -> int:
        """The ``fault_injected`` did of a window (after it fired)."""
        return self._inject_ids.get(window, NO_DECISION)
