"""The declarative fault-schedule DSL and its TOML/JSON loaders.

A schedule is a small, validated description of *when the cluster gets
hurt*: a list of event dataclasses (:class:`FailMds`, :class:`SlowMds`,
:class:`FlapMds`, :class:`CorrelatedFailure`, :class:`RandomFailures`)
with epoch-granular timing. ``ChaosSchedule.expand`` compiles the events
into a flat, sorted list of :class:`FaultWindow` records — one per
contiguous fault interval per rank — after validating ranks, epochs and
overlap freedom; the controller then turns windows into simulator
callbacks.

Determinism: stochastic events (:class:`RandomFailures`) draw from
:func:`repro.util.rng.substream` keyed on ``(seed, "chaos", name)``, so
the same ``(schedule, seed)`` pair always expands to the same windows —
the property the byte-identical-trace tests pin.

Validation failures raise typed errors, all subclasses of
:class:`ScheduleError` (itself a ``ValueError``): :class:`UnknownRankError`
for out-of-range ranks, :class:`EpochRangeError` for negative/zero-length
timing, :class:`OverlapError` for two windows touching the same rank at
the same epoch (a second fault on an already-faulted rank has no physical
meaning in the model — the rank is already down or already slowed).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.util.rng import substream

if TYPE_CHECKING:
    import numpy as np

__all__ = [
    "ChaosError",
    "ScheduleError",
    "UnknownRankError",
    "OverlapError",
    "EpochRangeError",
    "FailMds",
    "SlowMds",
    "FlapMds",
    "CorrelatedFailure",
    "RandomFailures",
    "FaultWindow",
    "ChaosSchedule",
    "schedule_from_dict",
    "load_schedule",
    "loads_toml",
    "bundled_scenarios",
    "SCENARIO_DIR",
]

#: where the bundled scenario files live (``repro chaos --list``)
SCENARIO_DIR = pathlib.Path(__file__).parent / "scenarios"


class ChaosError(Exception):
    """Base of every chaos-engine error."""


class ScheduleError(ChaosError, ValueError):
    """A schedule failed validation (malformed event or composition)."""


class UnknownRankError(ScheduleError):
    """An event names a rank the cluster does not have."""


class OverlapError(ScheduleError):
    """Two fault windows touch the same rank in the same epoch."""


class EpochRangeError(ScheduleError):
    """An event's timing is negative, zero-length, or inverted."""


def _check_epoch(value: int, what: str) -> int:
    value = int(value)
    if value < 0:
        raise EpochRangeError(f"{what} must be >= 0, got {value}")
    return value


def _check_duration(value: int, what: str) -> int:
    value = int(value)
    if value <= 0:
        raise EpochRangeError(f"{what} must be >= 1 epoch, got {value}")
    return value


@dataclass(frozen=True)
class FailMds:
    """Rank ``rank`` fails at ``at_epoch`` and recovers ``duration`` later.

    The recovery models a standby daemon replaying the journal and taking
    over the rank (subtree authority is rank-based and survives).
    """

    rank: int
    at_epoch: int
    duration: int = 2

    def __post_init__(self) -> None:
        _check_epoch(self.at_epoch, "at_epoch")
        _check_duration(self.duration, "duration")

    def windows(self, rng: np.random.Generator,
                all_ranks: tuple[int, ...]) -> list[FaultWindow]:
        return [FaultWindow(self.at_epoch, self.at_epoch + self.duration,
                            self.rank, "fail", source="fail_mds")]


@dataclass(frozen=True)
class SlowMds:
    """Rank ``rank`` serves at ``factor`` × capacity for ``duration`` epochs.

    Models brownout rather than blackout: a daemon stalled by heartbeat
    storms, recovery I/O or a co-located noisy neighbour keeps answering,
    just slower — the disturbance MIDAS-style hotspot studies care about.
    """

    rank: int
    at_epoch: int
    duration: int = 2
    factor: float = 0.5

    def __post_init__(self) -> None:
        _check_epoch(self.at_epoch, "at_epoch")
        _check_duration(self.duration, "duration")
        if not 0.0 < self.factor < 1.0:
            raise ScheduleError(
                f"slow_mds factor must be in (0, 1), got {self.factor}")

    def windows(self, rng: np.random.Generator,
                all_ranks: tuple[int, ...]) -> list[FaultWindow]:
        return [FaultWindow(self.at_epoch, self.at_epoch + self.duration,
                            self.rank, "slow", factor=self.factor,
                            source="slow_mds")]


@dataclass(frozen=True)
class FlapMds:
    """Rank ``rank`` restarts repeatedly: ``cycles`` × (down, then up).

    Each cycle fails the rank for ``down`` epochs then lets it serve for
    ``up`` epochs — the flapping-daemon pattern cephci's MDS-ops system
    test drives in a loop against live clusters.
    """

    rank: int
    at_epoch: int
    cycles: int = 3
    down: int = 1
    up: int = 1

    def __post_init__(self) -> None:
        _check_epoch(self.at_epoch, "at_epoch")
        _check_duration(self.cycles, "cycles")
        _check_duration(self.down, "down")
        _check_duration(self.up, "up")

    def windows(self, rng: np.random.Generator,
                all_ranks: tuple[int, ...]) -> list[FaultWindow]:
        out = []
        start = self.at_epoch
        for _ in range(self.cycles):
            out.append(FaultWindow(start, start + self.down, self.rank,
                                   "fail", source="flap_mds"))
            start += self.down + self.up
        return out


@dataclass(frozen=True)
class CorrelatedFailure:
    """Several ranks fail together (shared rack / power domain / switch)."""

    ranks: tuple[int, ...]
    at_epoch: int
    duration: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "ranks", tuple(int(r) for r in self.ranks))
        if not self.ranks:
            raise ScheduleError("correlated_failure needs at least one rank")
        if len(set(self.ranks)) != len(self.ranks):
            raise ScheduleError(
                f"correlated_failure lists rank(s) twice: {self.ranks}")
        _check_epoch(self.at_epoch, "at_epoch")
        _check_duration(self.duration, "duration")

    def windows(self, rng: np.random.Generator,
                all_ranks: tuple[int, ...]) -> list[FaultWindow]:
        return [FaultWindow(self.at_epoch, self.at_epoch + self.duration,
                            r, "fail", source="correlated_failure")
                for r in self.ranks]


@dataclass(frozen=True)
class RandomFailures:
    """``count`` seeded-random single-rank failures in an epoch range.

    Start epochs and victim ranks are drawn from the schedule's
    deterministic substream; a draw that would overlap an existing window
    is re-drawn (bounded), so the expansion either satisfies the same
    no-overlap invariant as explicit events or raises
    :class:`OverlapError` when the range is too crowded to place them.
    """

    count: int
    start_epoch: int
    end_epoch: int
    duration: int = 1
    ranks: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        _check_duration(self.count, "count")
        _check_epoch(self.start_epoch, "start_epoch")
        if self.end_epoch <= self.start_epoch:
            raise EpochRangeError(
                f"end_epoch ({self.end_epoch}) must be > start_epoch "
                f"({self.start_epoch})")
        _check_duration(self.duration, "duration")
        if self.ranks is not None:
            object.__setattr__(
                self, "ranks", tuple(int(r) for r in self.ranks))

    def windows(self, rng: np.random.Generator,
                all_ranks: tuple[int, ...]) -> list[FaultWindow]:
        pool = self.ranks if self.ranks is not None else all_ranks
        placed: list[FaultWindow] = []
        # bounded rejection sampling: deterministic under the substream,
        # and a crowded range fails loudly instead of looping forever
        attempts = 0
        limit = 64 * self.count
        while len(placed) < self.count:
            if attempts >= limit:
                raise OverlapError(
                    f"random_failures could not place {self.count} "
                    f"non-overlapping failures in epochs "
                    f"[{self.start_epoch}, {self.end_epoch}) after "
                    f"{limit} draws")
            attempts += 1
            start = int(rng.integers(self.start_epoch, self.end_epoch))
            rank = int(pool[int(rng.integers(0, len(pool)))])
            w = FaultWindow(start, start + self.duration, rank, "fail",
                            source="random_failures")
            if any(w.overlaps(p) for p in placed):
                continue
            placed.append(w)
        return placed


#: event-type tag (in TOML/JSON ``kind`` keys) -> dataclass
EVENT_KINDS = {
    "fail_mds": FailMds,
    "slow_mds": SlowMds,
    "flap_mds": FlapMds,
    "correlated_failure": CorrelatedFailure,
    "random_failures": RandomFailures,
}

ChaosEvent = FailMds | SlowMds | FlapMds | CorrelatedFailure | RandomFailures


@dataclass(frozen=True, order=True)
class FaultWindow:
    """One compiled fault interval: ``[start_epoch, end_epoch)`` on a rank."""

    start_epoch: int
    end_epoch: int
    rank: int
    kind: str  # "fail" | "slow" (FAULT_KINDS)
    factor: float = 1.0
    source: str = ""

    def overlaps(self, other: FaultWindow) -> bool:
        return (self.rank == other.rank
                and self.start_epoch < other.end_epoch
                and other.start_epoch < self.end_epoch)


@dataclass(frozen=True)
class ChaosSchedule:
    """A named, ordered collection of fault events plus its base seed."""

    name: str
    events: tuple[ChaosEvent, ...]
    description: str = ""
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if not self.name:
            raise ScheduleError("schedule needs a non-empty name")

    def expand(self, n_mds: int, seed: int | None = None) -> list[FaultWindow]:
        """Compile events into validated, sorted fault windows.

        ``seed`` overrides the schedule's own base seed (the CLI's
        ``--seed``); stochastic events draw from a substream keyed on it
        and the schedule name, so expansion is a pure function of
        ``(schedule, n_mds, seed)``.
        """
        if n_mds <= 0:
            raise ScheduleError(f"n_mds must be positive, got {n_mds}")
        effective = self.seed if seed is None else int(seed)
        rng = substream(effective, "chaos", self.name)
        all_ranks = tuple(range(n_mds))
        windows: list[FaultWindow] = []
        for ev in self.events:
            windows.extend(ev.windows(rng, all_ranks))
        for w in windows:
            if not 0 <= w.rank < n_mds:
                raise UnknownRankError(
                    f"{w.source} names rank {w.rank}; cluster has ranks "
                    f"0..{n_mds - 1}")
        windows.sort()
        by_rank: dict[int, list[FaultWindow]] = {}
        for w in windows:
            by_rank.setdefault(w.rank, []).append(w)
        for ws in by_rank.values():
            for a, b in zip(ws, ws[1:]):
                if a.overlaps(b):
                    raise OverlapError(
                        f"fault windows overlap on rank {a.rank}: "
                        f"{a.source}[{a.start_epoch},{a.end_epoch}) and "
                        f"{b.source}[{b.start_epoch},{b.end_epoch})")
        return windows


# --------------------------------------------------------------- loaders
def schedule_from_dict(data: dict) -> ChaosSchedule:
    """Build a schedule from loaded TOML/JSON data, with typed errors."""
    if not isinstance(data, dict):
        raise ScheduleError(f"schedule document must be a table, got "
                            f"{type(data).__name__}")
    known = {"name", "description", "seed", "events"}
    extra = set(data) - known
    if extra:
        raise ScheduleError(f"unknown schedule keys {sorted(extra)}; "
                            f"expected a subset of {sorted(known)}")
    raw_events = data.get("events", [])
    if not isinstance(raw_events, list) or not raw_events:
        raise ScheduleError("schedule needs a non-empty [[events]] list")
    events = []
    for i, raw in enumerate(raw_events):
        if not isinstance(raw, dict):
            raise ScheduleError(f"events[{i}] must be a table")
        raw = dict(raw)
        kind = raw.pop("kind", None)
        cls = EVENT_KINDS.get(kind)
        if cls is None:
            raise ScheduleError(
                f"events[{i}]: unknown event kind {kind!r}; expected one "
                f"of {sorted(EVENT_KINDS)}")
        for key in ("ranks",):
            if key in raw and isinstance(raw[key], list):
                raw[key] = tuple(raw[key])
        try:
            events.append(cls(**raw))
        except TypeError as exc:
            raise ScheduleError(f"events[{i}] ({kind}): {exc}") from exc
    return ChaosSchedule(
        name=str(data.get("name", "")),
        description=str(data.get("description", "")),
        seed=int(data.get("seed", 0)),
        events=tuple(events),
    )


def loads_toml(text: str) -> dict:
    """Parse the TOML subset schedules use.

    ``tomllib`` exists only on Python >= 3.11 and the CI matrix still
    tests 3.10, so this falls back to a small hand parser covering what
    scenario files need: comments, one level of ``[[events]]``
    array-of-tables, and ``key = value`` pairs with strings, ints,
    floats, booleans and flat int lists.
    """
    try:
        import tomllib
    except ImportError:
        return _parse_toml_subset(text)
    return tomllib.loads(text)


def _parse_toml_value(raw: str, lineno: int) -> object:
    raw = raw.strip()
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        return raw[1:-1]
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        return [_parse_toml_value(p, lineno) for p in inner.split(",")]
    if raw in ("true", "false"):
        return raw == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        raise ScheduleError(
            f"TOML line {lineno}: cannot parse value {raw!r}") from None


def _parse_toml_subset(text: str) -> dict:
    doc: dict = {}
    target = doc
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        if stripped.startswith("[[") and stripped.endswith("]]"):
            key = stripped[2:-2].strip()
            target = {}
            doc.setdefault(key, []).append(target)
            continue
        if stripped.startswith("["):
            raise ScheduleError(
                f"TOML line {lineno}: plain [tables] not supported in the "
                f"schedule subset; use top-level keys and [[events]]")
        if "=" not in stripped:
            raise ScheduleError(f"TOML line {lineno}: expected key = value")
        key, _, raw = stripped.partition("=")
        target[key.strip()] = _parse_toml_value(raw, lineno)
    return doc


def load_schedule(path: str | pathlib.Path) -> ChaosSchedule:
    """Load a schedule from a ``.toml`` or ``.json`` file."""
    path = pathlib.Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScheduleError(f"{path}: invalid JSON: {exc}") from exc
    elif path.suffix == ".toml":
        data = loads_toml(text)
    else:
        raise ScheduleError(
            f"{path}: unknown schedule format {path.suffix!r}; "
            f"expected .toml or .json")
    if isinstance(data, dict) and not data.get("name"):
        data = {**data, "name": path.stem}
    return schedule_from_dict(data)


def bundled_scenarios() -> dict[str, pathlib.Path]:
    """Name -> path of every scenario file shipped with the package."""
    if not SCENARIO_DIR.is_dir():
        return {}
    return {p.stem: p for p in sorted(SCENARIO_DIR.glob("*.toml"))}
