"""Robustness scoring: turn a disturbed run into comparable numbers.

Three metrics, all pure functions of the run's per-epoch IF series, the
compiled fault windows and the decision trace:

- **recovery epochs**: for each fault window, how many epochs after the
  fault cleared the IF took to re-enter its *pre-fault band* (the mean IF
  over the window's lead-in epochs, widened by a tolerance) — the paper's
  Fig. 12 question, "how fast does the balancer re-converge after a
  disturbance";
- **aborted-migration waste**: inodes that were in flight (or queued)
  when a fault killed them — work the balancer paid for and lost, read
  from ``migration_aborted(reason=mds_failed)`` events joined to their
  ``migration_planned`` parents for sizes;
- **IF overshoot area**: the sum of ``max(0, IF - band)`` over all epochs
  from the first fault to the end of the run — how much *extra* imbalance
  the disturbance caused, integrated, so a balancer that spikes hard but
  recovers fast and one that drifts high forever are both penalized in
  proportion.

Scores are plain dataclasses serializing to stable dicts, so the chaos
CLI report and ``bench_chaos_robustness.py`` rankings stay byte-stable
under a fixed seed.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any

from repro.chaos.schedule import FaultWindow
from repro.obs.outcomes import aborted_waste

__all__ = ["FaultRecovery", "RobustnessScore", "score_run",
           "IF_BAND_RATIO", "IF_BAND_SLACK"]

#: the pre-fault band is ``baseline * RATIO + SLACK``: a relative margin
#: for runs that idle at a high IF plus an absolute floor for runs whose
#: baseline IF is ~0 (perfectly balanced before the fault)
IF_BAND_RATIO = 1.25
IF_BAND_SLACK = 0.05

#: how many epochs before a fault feed its baseline estimate
BASELINE_EPOCHS = 5


@dataclass(frozen=True)
class FaultRecovery:
    """Recovery record for one fault window."""

    rank: int
    kind: str
    start_epoch: int
    end_epoch: int
    baseline_if: float
    band: float
    #: epochs after ``end_epoch`` until IF re-entered the band;
    #: ``None`` when the run ended first (never recovered in view)
    recovery_epochs: int | None

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "kind": self.kind,
            "start_epoch": self.start_epoch,
            "end_epoch": self.end_epoch,
            "baseline_if": round(self.baseline_if, 6),
            "band": round(self.band, 6),
            "recovery_epochs": self.recovery_epochs,
        }


@dataclass(frozen=True)
class RobustnessScore:
    """The run-level robustness summary fed to reports and benchmarks."""

    faults: tuple[FaultRecovery, ...]
    #: mean recovery epochs over recovered faults; None when nothing
    #: recovered (or no faults fired)
    mean_recovery_epochs: float | None
    #: windows whose IF never re-entered the band before the run ended
    unrecovered_faults: int
    #: inodes lost to mds_failed aborts (planned size of each dead task)
    aborted_inodes: int
    aborted_tasks: int
    #: sum of max(0, IF - band) per epoch from the first fault onward
    if_overshoot_area: float

    def to_dict(self) -> dict:
        return {
            "mean_recovery_epochs": (
                None if self.mean_recovery_epochs is None
                else round(self.mean_recovery_epochs, 6)),
            "unrecovered_faults": self.unrecovered_faults,
            "aborted_tasks": self.aborted_tasks,
            "aborted_inodes": self.aborted_inodes,
            "if_overshoot_area": round(self.if_overshoot_area, 6),
            "faults": [f.to_dict() for f in self.faults],
        }


def _baseline(if_series: list[float], start_epoch: int) -> float:
    lead_in = if_series[max(0, start_epoch - BASELINE_EPOCHS):start_epoch]
    if not lead_in:
        return 0.0
    return sum(lead_in) / len(lead_in)


def _recovery(if_series: list[float], window: FaultWindow) -> FaultRecovery:
    baseline = _baseline(if_series, window.start_epoch)
    band = baseline * IF_BAND_RATIO + IF_BAND_SLACK
    recovery: int | None = None
    for epoch in range(window.end_epoch, len(if_series)):
        if if_series[epoch] <= band:
            recovery = epoch - window.end_epoch
            break
    return FaultRecovery(
        rank=window.rank, kind=window.kind,
        start_epoch=window.start_epoch, end_epoch=window.end_epoch,
        baseline_if=baseline, band=band, recovery_epochs=recovery)


def _aborted_waste(events: Iterable[Any]) -> tuple[int, int]:
    """(tasks, inodes) lost to ``mds_failed`` aborts.

    Delegates to the cost/benefit ledger's shared join
    (:func:`repro.obs.outcomes.aborted_waste`): task sizes come from each
    abort's ``migration_planned`` parent, an abort without a resolvable
    parent (ring-truncated trace) contributes zero inodes, and the same
    accounting prices waste in ledger verdicts and robustness scores.
    """
    return aborted_waste(events, reason="mds_failed")


def score_run(if_series: Iterable[float], windows: Iterable[FaultWindow],
              events: Iterable[Any]) -> RobustnessScore:
    """Score one disturbed run.

    ``if_series`` is the simulator's per-epoch reporting IF,
    ``windows`` the controller's compiled :class:`FaultWindow` list and
    ``events`` the full decision trace (any iterable of trace events).
    """
    if_series = list(if_series)
    events = list(events)
    windows = sorted(windows)
    recoveries = tuple(_recovery(if_series, w) for w in windows)
    recovered = [r.recovery_epochs for r in recoveries
                 if r.recovery_epochs is not None]
    tasks, inodes = _aborted_waste(events)

    overshoot = 0.0
    if windows:
        first = windows[0].start_epoch
        # one shared band for the integral: the first fault's pre-fault
        # band (per-window bands would double-count overlapping tails)
        band = recoveries[0].band
        for epoch in range(first, len(if_series)):
            overshoot += max(0.0, if_series[epoch] - band)

    return RobustnessScore(
        faults=recoveries,
        mean_recovery_epochs=(
            sum(recovered) / len(recovered) if recovered else None),
        unrecovered_faults=sum(
            1 for r in recoveries if r.recovery_epochs is None),
        aborted_tasks=tasks,
        aborted_inodes=inodes,
        if_overshoot_area=overshoot,
    )
