"""Chaos scenario engine: declarative fault schedules for the simulator.

The paper's agility claims (Fig. 12's dynamics experiments, and the
recovery behaviour cephci exercises against live clusters) only mean
something if the reproduction can disturb a run *reproducibly*. This
package provides that:

- :mod:`repro.chaos.schedule` — a declarative DSL of timed and
  seeded-stochastic fault events (fail/recover, flapping restarts,
  degraded capacity, correlated multi-rank failures) plus TOML/JSON
  loaders, compiling to a validated, deterministic list of fault windows;
- :mod:`repro.chaos.controller` — the :class:`ChaosController` that binds
  a compiled schedule onto a simulator's event timeline, applying and
  reverting faults through the existing ``fail_mds``/capacity seams and
  emitting ``fault_injected``/``fault_cleared`` trace events with
  decision ids, so ``repro explain`` chains an aborted migration back to
  the fault that killed it;
- :mod:`repro.chaos.score` — the robustness scorer (recovery epochs back
  to the pre-fault IF band, aborted-migration waste, IF overshoot area)
  that turns a disturbed run into comparable numbers;
- ``scenarios/`` — bundled scenario files (``repro chaos --list``).

Layering: chaos imports only ``util`` and ``obs``. The controller drives
the simulator through duck-typed public seams (``fail_mds``,
``recover_mds``, ``mdss[r].capacity``, ``trace``); the simulator merges
the controller's ``(tick, fn)`` entries into its ordinary event schedule
and never imports this package.
"""

from repro.chaos.controller import ChaosController
from repro.chaos.schedule import (
    ChaosError,
    ChaosSchedule,
    CorrelatedFailure,
    EpochRangeError,
    FailMds,
    FaultWindow,
    FlapMds,
    OverlapError,
    RandomFailures,
    ScheduleError,
    SlowMds,
    UnknownRankError,
    bundled_scenarios,
    load_schedule,
    schedule_from_dict,
)
from repro.chaos.score import RobustnessScore, score_run

__all__ = [
    "ChaosController",
    "ChaosError",
    "ChaosSchedule",
    "CorrelatedFailure",
    "EpochRangeError",
    "FailMds",
    "FaultWindow",
    "FlapMds",
    "OverlapError",
    "RandomFailures",
    "RobustnessScore",
    "ScheduleError",
    "SlowMds",
    "UnknownRankError",
    "bundled_scenarios",
    "load_schedule",
    "schedule_from_dict",
    "score_run",
]
