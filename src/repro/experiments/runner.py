"""Experiment runner: config in, :class:`SimResult` (and trace) out."""

from __future__ import annotations

import os
from typing import Callable

from repro.balancers import make_balancer
from repro.cluster.simulator import Simulator
from repro.experiments.config import ExperimentConfig

__all__ = ["run_experiment", "run_traced", "run_matrix"]


def run_experiment(cfg: ExperimentConfig, *,
                   schedule: list[tuple[int, Callable]] | None = None,
                   balancer_kwargs: dict | None = None,
                   trace_path: str | os.PathLike | None = None):
    """Materialize the workload, build the balancer, run the simulation.

    ``trace_path`` dumps the run's balancer-decision trace as JSONL next
    to the result, so every benchmark can keep the evidence behind its
    numbers (see ``docs/OBSERVABILITY.md``).
    """
    result, _ = run_traced(cfg, schedule=schedule,
                           balancer_kwargs=balancer_kwargs,
                           trace_path=trace_path)
    return result


def run_traced(cfg: ExperimentConfig, *,
               schedule: list[tuple[int, Callable]] | None = None,
               balancer_kwargs: dict | None = None,
               trace_path: str | os.PathLike | None = None):
    """Like :func:`run_experiment` but returns ``(result, simulator)`` so
    callers can inspect the decision trace and metrics registry."""
    sim_cfg = cfg.sim
    if cfg.data_path and not sim_cfg.data_path:
        sim_cfg = sim_cfg.with_(data_path=True)
    instance = cfg.build_workload().materialize(seed=cfg.seed)
    balancer = make_balancer(cfg.balancer, **(balancer_kwargs or {}))
    sim = Simulator(instance, balancer, sim_cfg, schedule=schedule)
    result = sim.run()
    if trace_path is not None:
        sim.trace.dump_jsonl(trace_path)
    return result, sim


def run_matrix(workloads: list[str], balancers: list[str],
               base: ExperimentConfig | None = None) -> dict[tuple[str, str], object]:
    """Run a workload x balancer cross product (Figures 6 and 7)."""
    base = base or ExperimentConfig()
    out: dict[tuple[str, str], object] = {}
    for w in workloads:
        for b in balancers:
            cfg = ExperimentConfig(workload=w, balancer=b, n_clients=base.n_clients,
                                   seed=base.seed, scale=base.scale,
                                   data_path=base.data_path, sim=base.sim)
            out[(w, b)] = run_experiment(cfg)
    return out
