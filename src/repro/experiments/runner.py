"""Experiment runner: config in, :class:`SimResult` out."""

from __future__ import annotations

from typing import Callable

from repro.balancers import make_balancer
from repro.cluster.simulator import Simulator
from repro.experiments.config import ExperimentConfig

__all__ = ["run_experiment", "run_matrix"]


def run_experiment(cfg: ExperimentConfig, *,
                   schedule: list[tuple[int, Callable]] | None = None,
                   balancer_kwargs: dict | None = None):
    """Materialize the workload, build the balancer, run the simulation."""
    sim_cfg = cfg.sim
    if cfg.data_path and not sim_cfg.data_path:
        sim_cfg = sim_cfg.with_(data_path=True)
    instance = cfg.build_workload().materialize(seed=cfg.seed)
    balancer = make_balancer(cfg.balancer, **(balancer_kwargs or {}))
    sim = Simulator(instance, balancer, sim_cfg, schedule=schedule)
    return sim.run()


def run_matrix(workloads: list[str], balancers: list[str],
               base: ExperimentConfig | None = None) -> dict[tuple[str, str], object]:
    """Run a workload x balancer cross product (Figures 6 and 7)."""
    base = base or ExperimentConfig()
    out: dict[tuple[str, str], object] = {}
    for w in workloads:
        for b in balancers:
            cfg = ExperimentConfig(workload=w, balancer=b, n_clients=base.n_clients,
                                   seed=base.seed, scale=base.scale,
                                   data_path=base.data_path, sim=base.sim)
            out[(w, b)] = run_experiment(cfg)
    return out
