"""Experiment runner: config in, :class:`SimResult` (and trace) out."""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import replace

from repro.balancers import make_balancer
from repro.cluster.simulator import Simulator
from repro.experiments.config import ExperimentConfig

__all__ = ["build_simulator", "run_experiment", "run_traced", "run_matrix"]


def build_simulator(cfg: ExperimentConfig, *,
                    schedule: list[tuple[int, Callable]] | None = None,
                    balancer_kwargs: dict | None = None,
                    chaos=None) -> Simulator:
    """Materialize the workload and build the simulator without running it.

    The construction path behind :func:`run_traced` — and the one
    ``repro serve`` drives incrementally (``start``/``step_tick``/
    ``finish``), which is how a served run with no mutations reproduces a
    batch run's trace byte-for-byte.
    """
    sim_cfg = cfg.sim
    if cfg.data_path and not sim_cfg.data_path:
        sim_cfg = sim_cfg.with_(data_path=True)
    instance = cfg.build_workload().materialize(seed=cfg.seed)
    kwargs = {**(cfg.balancer_kwargs or {}), **(balancer_kwargs or {})}
    balancer = make_balancer(cfg.balancer, **kwargs)
    return Simulator(instance, balancer, sim_cfg, schedule=schedule,
                     chaos=chaos)


def run_experiment(cfg: ExperimentConfig, *,
                   schedule: list[tuple[int, Callable]] | None = None,
                   balancer_kwargs: dict | None = None,
                   trace_path: str | os.PathLike | None = None):
    """Materialize the workload, build the balancer, run the simulation.

    ``trace_path`` dumps the run's balancer-decision trace as JSONL next
    to the result, so every benchmark can keep the evidence behind its
    numbers (see ``docs/OBSERVABILITY.md``).
    """
    result, _ = run_traced(cfg, schedule=schedule,
                           balancer_kwargs=balancer_kwargs,
                           trace_path=trace_path)
    return result


def run_traced(cfg: ExperimentConfig, *,
               schedule: list[tuple[int, Callable]] | None = None,
               balancer_kwargs: dict | None = None,
               trace_path: str | os.PathLike | None = None,
               chaos=None):
    """Like :func:`run_experiment` but returns ``(result, simulator)`` so
    callers can inspect the decision trace and metrics registry.

    Balancer kwargs come from ``cfg.balancer_kwargs`` merged with the
    ``balancer_kwargs`` argument (the argument wins on conflicts).
    ``chaos`` is an optional :class:`~repro.chaos.ChaosController` bound
    onto the simulator's event schedule (fault injection).
    """
    sim = build_simulator(cfg, schedule=schedule,
                          balancer_kwargs=balancer_kwargs, chaos=chaos)
    result = sim.run()
    if trace_path is not None:
        sim.trace.dump_jsonl(trace_path)
    return result, sim


def run_matrix(workloads: list[str], balancers: list[str],
               base: ExperimentConfig | None = None, *,
               workers: int = 1,
               engine=None) -> dict[tuple[str, str], object]:
    """Run a workload x balancer cross product (Figures 6 and 7).

    ``workers`` parallelizes the cells over a process pool; pass an
    existing :class:`~repro.experiments.engine.ExperimentEngine` to share
    its result cache across matrices. Cell order (and therefore the
    returned dict's iteration order) is the same at any worker count.
    """
    from repro.experiments.engine import ExperimentEngine

    base = base or ExperimentConfig()
    cells = [(w, b) for w in workloads for b in balancers]
    cfgs = [replace(base, workload=w, balancer=b) for w, b in cells]
    eng = engine if engine is not None else ExperimentEngine(workers=workers)
    results = eng.run(cfgs)
    return dict(zip(cells, results))
