"""`repro chaos`: run a fault scenario and score the balancer's recovery.

Glue between the chaos engine (:mod:`repro.chaos`) and the experiment
stack: resolve a scenario reference (a path, or the name of a bundled
file under ``repro/chaos/scenarios/``), run the workload with a bound
:class:`~repro.chaos.ChaosController`, score the disturbed run and build
the deterministic JSON robustness report the CLI prints, the CI
chaos-smoke job validates and ``bench_chaos_robustness.py`` aggregates.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.chaos import ChaosController, load_schedule
from repro.chaos.schedule import SCENARIO_DIR, ScheduleError, bundled_scenarios
from repro.chaos.score import score_run
from repro.cluster.simulator import SimConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.recording import CHAOS_ARTIFACT, write_run_artifacts
from repro.experiments.runner import run_traced

__all__ = ["CHAOS_SIM_CONFIG", "CHAOS_REPORT_SCHEMA", "resolve_scenario",
           "run_chaos", "chaos_report"]

#: the chaos bench cluster: small enough to rerun in seconds, with a
#: migration rate slow enough that multi-epoch fault windows reliably
#: catch exports mid-flight (the failure paths this engine exists to test)
CHAOS_SIM_CONFIG = SimConfig(n_mds=3, mds_capacity=60.0, epoch_len=5,
                             max_ticks=6000, migration_rate=20, seed=0)

#: bumped whenever the robustness-report JSON shape changes
CHAOS_REPORT_SCHEMA = 1


def resolve_scenario(ref: str | os.PathLike) -> pathlib.Path:
    """A scenario path, or the name/stem of a bundled scenario file.

    Resolution order: the literal path if it exists, then the bundled
    directory by basename and by stem — so ``repro chaos
    scenarios/flap.toml``, ``repro chaos flap.toml`` and ``repro chaos
    flap`` all find the shipped file from any working directory.
    """
    path = pathlib.Path(ref)
    if path.is_file():
        return path
    candidates = [SCENARIO_DIR / path.name]
    if not path.suffix:
        candidates.append(SCENARIO_DIR / f"{path.name}.toml")
    for cand in candidates:
        if cand.is_file():
            return cand
    known = ", ".join(sorted(bundled_scenarios())) or "none"
    raise ScheduleError(
        f"no scenario file at {ref!r} and no bundled scenario of that "
        f"name (bundled: {known})")


def run_chaos(scenario: str | os.PathLike, *, seed: int = 0,
              balancer: str = "lunule", workload: str = "mdtest",
              n_clients: int = 8, n_mds: int | None = None,
              scale: float = 0.15, engine: str | None = None,
              record_dir: str | os.PathLike | None = None):
    """Run one chaos scenario; returns ``(report, result, sim)``.

    ``seed`` seeds both the experiment (workload draws) and the
    schedule's stochastic events, so one integer pins the entire run.
    ``record_dir`` additionally writes the standard artifact directory
    plus ``chaos.json`` (the robustness report) into it. ``engine``
    overrides the serve-path engine (``"scalar"``/``"columnar"``) for
    equivalence testing.
    """
    path = resolve_scenario(scenario)
    schedule = load_schedule(path)
    controller = ChaosController(schedule, seed=seed)
    sim_cfg = CHAOS_SIM_CONFIG.with_(seed=seed, record=record_dir is not None)
    if n_mds is not None:
        sim_cfg = sim_cfg.with_(n_mds=n_mds)
    if engine is not None:
        sim_cfg = sim_cfg.with_(engine=engine)
    cfg = ExperimentConfig(workload=workload, balancer=balancer,
                           n_clients=n_clients, seed=seed, scale=scale,
                           sim=sim_cfg)
    result, sim = run_traced(cfg, chaos=controller)
    report = chaos_report(schedule, controller, cfg, result, sim,
                          scenario_path=path, seed=seed)
    if record_dir is not None:
        write_run_artifacts(record_dir, sim, result,
                            extra_meta={"seed": seed, "scenario": schedule.name})
        out = pathlib.Path(record_dir) / CHAOS_ARTIFACT
        with open(out, "w", encoding="utf-8", newline="\n") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report, result, sim


def chaos_report(schedule, controller, cfg, result, sim, *,
                 scenario_path=None, seed: int = 0) -> dict:
    """The deterministic JSON robustness report of one chaos run."""
    score = score_run(result.if_series, controller.windows, list(sim.trace))
    counts = sim.trace.counts()
    return {
        "schema": CHAOS_REPORT_SCHEMA,
        "scenario": {
            "name": schedule.name,
            "description": schedule.description,
            "file": scenario_path.name if scenario_path is not None else None,
            "seed": seed,
            "events": len(schedule.events),
        },
        "run": {
            "workload": result.workload,
            "balancer": result.balancer,
            "n_mds": sim.n_mds,
            "n_clients": cfg.n_clients,
            "scale": cfg.scale,
            "epochs": len(result.if_series),
            "finished_tick": result.finished_tick,
            "mean_if": round(sum(result.if_series)
                             / max(1, len(result.if_series)), 6),
            "committed_tasks": result.committed_tasks,
            "aborted_tasks": result.aborted_tasks,
        },
        "faults_injected": controller.faults_injected,
        "faults_cleared": controller.faults_cleared,
        "windows": [
            {"rank": w.rank, "kind": w.kind, "factor": w.factor,
             "start_epoch": w.start_epoch, "end_epoch": w.end_epoch,
             "source": w.source}
            for w in controller.windows
        ],
        "trace": {
            "fault_injected": counts.get("fault_injected", 0),
            "fault_cleared": counts.get("fault_cleared", 0),
            "mds_failed": counts.get("mds_failed", 0),
            "migration_aborted": counts.get("migration_aborted", 0),
        },
        "score": score.to_dict(),
    }
