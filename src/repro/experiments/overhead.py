"""Control-plane overhead accounting (paper §3.4).

The paper claims Lunule's bookkeeping is negligible: each non-primary MDS
sends ~0.94 KB per epoch to the initiator, a 16-MDS cluster costs the
primary ~14.1 KB in-bound per epoch, and the per-MDS memory overhead for
load structures is ~1.37%. This module measures the equivalents in the
simulation: actual message bytes through the
:class:`~repro.core.initiator.MigrationInitiator`, the hypothetical cost of
vanilla's N-to-N heartbeat gossip on the same cluster, and the resident
size of the stats structures relative to the metadata they describe.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.balancers import make_balancer
from repro.cluster.messages import Heartbeat, wire_size
from repro.cluster.simulator import SimConfig, Simulator
from repro.experiments.report import render_table
from repro.workloads import ZipfWorkload

__all__ = ["OverheadReport", "measure_overhead"]


@dataclass
class OverheadReport:
    n_mds: int
    epochs: int
    #: mean bytes received by the initiator per epoch (N-to-1 collection)
    initiator_in_per_epoch: float
    #: mean bytes sent by the initiator per epoch (decisions)
    initiator_out_per_epoch: float
    #: what vanilla's N-to-N heartbeats would cost per epoch on this cluster
    heartbeat_gossip_per_epoch: float
    #: bytes of the per-dir stats structures per metadata inode managed
    stats_bytes_per_inode: float

    def table(self) -> str:
        rows = [
            ["initiator in-bound (B/epoch)", self.initiator_in_per_epoch],
            ["initiator out-bound (B/epoch)", self.initiator_out_per_epoch],
            ["vanilla N-to-N gossip (B/epoch)", self.heartbeat_gossip_per_epoch],
            ["stats bytes per inode", self.stats_bytes_per_inode],
        ]
        return render_table(["metric", "value"], rows,
                            title=f"Overhead accounting — {self.n_mds} MDSs, "
                                  f"{self.epochs} epochs")


def _stats_footprint(stats) -> int:
    """Approximate resident bytes of the balancer bookkeeping structures."""
    total = 0
    for name in ("win_visits", "win_recurrent", "win_first", "win_ls",
                 "win_created"):
        total += getattr(stats, name).nbytes
    total += sys.getsizeof(stats.heat) + 8 * len(stats.heat)
    for arrs in stats._win:
        total += sum(a.nbytes for a in arrs)
    for arr in stats.tree._file_last_access.values():
        total += arr.nbytes
    return total


def measure_overhead(n_mds: int = 5, *, n_clients: int = 16, seed: int = 7,
                     gossip_subtrees: int = 10) -> OverheadReport:
    """Run a Zipf workload under Lunule and account the control plane."""
    wl = ZipfWorkload(n_clients, files_per_dir=150, reads_per_client=1200)
    cfg = SimConfig(n_mds=n_mds, mds_capacity=100, epoch_len=10,
                    max_ticks=20_000)
    balancer = make_balancer("lunule")
    sim = Simulator(wl.materialize(seed=seed), balancer, cfg)
    res = sim.run()
    epochs = max(1, len(res.epoch_ticks))
    init = balancer.initiator

    # Vanilla gossips a heartbeat from every MDS to every other, each
    # carrying per-subtree popularity entries.
    hb = wire_size(Heartbeat(0, 0, 1.0, tuple((i, 1.0) for i in range(gossip_subtrees))))
    gossip = float(hb * n_mds * (n_mds - 1))

    inodes = sim.tree.total_files() + sim.tree.n_dirs
    return OverheadReport(
        n_mds=n_mds,
        epochs=epochs,
        initiator_in_per_epoch=init.bytes_received / epochs,
        initiator_out_per_epoch=init.bytes_sent / epochs,
        heartbeat_gossip_per_epoch=gossip,
        stats_bytes_per_inode=_stats_footprint(sim.stats) / max(1, inodes),
    )
