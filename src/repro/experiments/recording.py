"""Recorded-run artifact directories: write on ``run --record``, read on
``repro report``.

One recorded run becomes one self-describing directory:

====================  ====================================================
``run.json``          run metadata (workload, balancer, seed, clock, ...)
``timeseries.csv``    the per-epoch table, human/golden-friendly
``timeseries.jsonl``  the same rows, loss-lessly reloadable
``trace.jsonl``       the balancer-decision trace (canonical JSONL)
``metrics.json``      the metrics-registry snapshot
``metrics.prom``      the same snapshot as OpenMetrics text
``spans.perfetto.json``  the phase spans, loadable in ui.perfetto.dev
====================  ====================================================

Everything is plain text and deterministic for logical-clock runs, so an
artifact directory can be diffed, archived next to a paper figure, or
uploaded as a CI artifact wholesale.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.obs.prom import write_textfile
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.tracelog import read_jsonl

__all__ = ["ARTIFACT_FILES", "CHAOS_ARTIFACT", "write_run_artifacts",
           "load_run_artifacts"]

ARTIFACT_FILES = {
    "meta": "run.json",
    "timeseries_csv": "timeseries.csv",
    "timeseries": "timeseries.jsonl",
    "trace": "trace.jsonl",
    "metrics": "metrics.json",
    "metrics_prom": "metrics.prom",
    "spans": "spans.perfetto.json",
}

#: optional extra artifact a ``repro chaos --record`` run adds: the JSON
#: robustness report (scenario, fault windows, score)
CHAOS_ARTIFACT = "chaos.json"


def write_run_artifacts(dirpath: str | os.PathLike, sim, result,
                        extra_meta: dict | None = None) -> dict[str, str]:
    """Dump one recorded simulation into ``dirpath``; returns the paths.

    ``sim`` must have run with ``SimConfig(record=True)`` — the flight
    recorder is where the time series and spans live.
    """
    if sim.recorder is None:
        raise ValueError(
            "simulator ran without a flight recorder; use "
            "SimConfig(record=True) (CLI: repro run --record DIR)")
    out = pathlib.Path(dirpath)
    out.mkdir(parents=True, exist_ok=True)
    meta = {
        "schema": 1,
        "workload": result.workload,
        "balancer": result.balancer,
        "epoch_len": result.epoch_len,
        "n_mds": sim.n_mds,
        "epochs": len(result.if_series),
        "finished_tick": result.finished_tick,
        "clock": sim.recorder.clock,
        **(extra_meta or {}),
    }
    paths = {key: str(out / name) for key, name in ARTIFACT_FILES.items()}
    with open(paths["meta"], "w", encoding="utf-8", newline="\n") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    sim.recorder.timeseries.dump_csv(paths["timeseries_csv"])
    sim.recorder.timeseries.dump_jsonl(paths["timeseries"])
    sim.trace.dump_jsonl(paths["trace"])
    with open(paths["metrics"], "w", encoding="utf-8", newline="\n") as fh:
        fh.write(sim.metrics.to_json(indent=2))
        fh.write("\n")
    write_textfile(sim.metrics, paths["metrics_prom"])
    sim.recorder.spans.dump_perfetto(paths["spans"])
    return paths


def load_run_artifacts(dirpath: str | os.PathLike) -> dict:
    """Read an artifact directory back into renderer-ready pieces.

    Returns ``{"meta", "timeseries", "events", "metrics", "span_events"}``
    — exactly the keyword surface of
    :func:`repro.obs.report.render_run_report`. Missing optional files
    load as empty; a directory with no ``run.json`` raises
    :class:`FileNotFoundError` (it is not an artifact directory).
    """
    src = pathlib.Path(dirpath)
    meta_path = src / ARTIFACT_FILES["meta"]
    if not meta_path.exists():
        raise FileNotFoundError(
            f"{src} is not a recorded-run directory (no {ARTIFACT_FILES['meta']}); "
            f"produce one with: repro run --record {src}")
    with open(meta_path, encoding="utf-8") as fh:
        meta = json.load(fh)

    ts_path = src / ARTIFACT_FILES["timeseries"]
    timeseries = (TimeSeriesStore.load_jsonl(ts_path).snapshot()
                  if ts_path.exists() else {})

    trace_path = src / ARTIFACT_FILES["trace"]
    events = list(read_jsonl(trace_path)) if trace_path.exists() else []

    metrics_path = src / ARTIFACT_FILES["metrics"]
    metrics = {}
    if metrics_path.exists():
        with open(metrics_path, encoding="utf-8") as fh:
            metrics = json.load(fh)

    spans_path = src / ARTIFACT_FILES["spans"]
    span_events = []
    if spans_path.exists():
        with open(spans_path, encoding="utf-8") as fh:
            span_events = json.load(fh).get("traceEvents", [])

    chaos = None
    chaos_path = src / CHAOS_ARTIFACT
    if chaos_path.exists():
        with open(chaos_path, encoding="utf-8") as fh:
            chaos = json.load(fh)

    return {"meta": meta, "timeseries": timeseries, "events": events,
            "metrics": metrics, "span_events": span_events, "chaos": chaos}
