"""Plain-text rendering of experiment results, paper-style.

Benches print these tables so a run's output can be eyeballed against the
paper's figures; EXPERIMENTS.md records the comparison permanently.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["render_table", "render_series", "render_kv", "render_trace_summary"]


def _fmt(x) -> str:
    if isinstance(x, float):
        if x != x:  # NaN
            return "nan"
        if abs(x) >= 1000:
            return f"{x:,.0f}"
        if abs(x) >= 10:
            return f"{x:.1f}"
        return f"{x:.3f}"
    return str(x)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width ASCII table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "t", y_label: str = "y") -> str:
    """One time series as two aligned rows (the paper's curves, textually)."""
    header = f"{name} ({x_label} -> {y_label})"
    xs_s = " ".join(f"{_fmt(x):>7s}" for x in xs)
    ys_s = " ".join(f"{_fmt(y):>7s}" for y in ys)
    return f"{header}\n  {x_label:>4s}: {xs_s}\n  {y_label:>4s}: {ys_s}"


def render_kv(title: str, pairs: Sequence[tuple[str, object]]) -> str:
    width = max((len(k) for k, _ in pairs), default=0)
    lines = [title]
    for k, v in pairs:
        lines.append(f"  {k.ljust(width)} : {_fmt(v)}")
    return "\n".join(lines)


def render_trace_summary(events: Iterable, title: str = "Decision trace") -> str:
    """Digest of a balancer-decision trace (see :mod:`repro.obs.events`).

    Counts per event type, plus the headline decision numbers a reviewer
    asks for first: how often the trigger fired, how much was planned vs
    actually committed, and the IF range the run covered.
    """
    events = list(events)
    counts: dict[str, int] = {}
    for e in events:
        counts[e.etype] = counts.get(e.etype, 0) + 1
    table = render_table(("event", "count"), sorted(counts.items()), title=title)

    sim_ifs = [e.value for e in events
               if e.etype == "if_computed" and e.source == "simulator"]
    committed_inodes = sum(e.inodes for e in events
                           if e.etype == "migration_committed")
    pairs: list[tuple[str, object]] = [
        ("epochs traced", counts.get("epoch_start", 0)),
        ("exporter roles", sum(1 for e in events
                               if e.etype == "role_assigned" and e.role == "exporter")),
        ("subtrees selected", counts.get("subtree_selected", 0)),
        ("migrations planned / committed / aborted",
         f"{counts.get('migration_planned', 0)}"
         f" / {counts.get('migration_committed', 0)}"
         f" / {counts.get('migration_aborted', 0)}"),
        ("inodes committed", committed_inodes),
    ]
    if sim_ifs:
        pairs.append(("IF first / peak / last",
                      f"{_fmt(sim_ifs[0])} / {_fmt(max(sim_ifs))} / {_fmt(sim_ifs[-1])}"))
    return table + "\n\n" + render_kv("Decisions", pairs)
