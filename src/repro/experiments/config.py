"""Canonical experiment configuration.

The paper's testbed runs 100 clients against five 2x Xeon MDS servers for
tens of minutes. The canonical *bench scale* here keeps every ratio that
matters (clients per MDS, dataset shape, epoch length vs migration lag) at
a size that reruns in seconds; ``scale`` multiplies per-client op counts
and dataset sizes for users who want longer runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.simulator import SimConfig
from repro.workloads import (
    CnnWorkload,
    MdtestWorkload,
    MixedWorkload,
    NlpWorkload,
    WebWorkload,
    Workload,
    ZipfWorkload,
)

__all__ = ["ExperimentConfig", "default_workload", "BENCH_SIM_CONFIG"]

#: the SimConfig every figure uses unless it overrides something
BENCH_SIM_CONFIG = SimConfig(n_mds=5, mds_capacity=100.0, epoch_len=10,
                             max_ticks=20_000)


def default_workload(name: str, n_clients: int = 20, *, scale: float = 1.0) -> Workload:
    """The calibrated bench-scale instance of each paper workload.

    ``scale`` stretches dataset/op counts linearly (1.0 = the defaults the
    repository's figures are calibrated at).
    """
    if n_clients <= 0:
        raise ValueError("need at least one client")
    if scale <= 0:
        raise ValueError("scale must be positive")

    def s(x: int) -> int:
        return max(1, round(x * scale))

    if name == "cnn":
        return CnnWorkload(n_clients, n_dirs=s(100), files_per_dir=40, jitter=0.05)
    if name == "nlp":
        return NlpWorkload(n_clients, n_folders=14, total_files=s(4000), jitter=0.05)
    if name == "web":
        return WebWorkload(n_clients, total_files=s(2000), n_requests=s(3000))
    if name == "zipf":
        return ZipfWorkload(n_clients, files_per_dir=s(200), reads_per_client=s(1500))
    if name == "mdtest":
        return MdtestWorkload(n_clients, creates_per_client=s(3000))
    if name == "mixed":
        # Paper §4.4: clients split into four groups, one per workload
        # (MDtest excluded in the paper's mixed/end-to-end figures).
        per = max(1, n_clients // 4)
        return MixedWorkload([
            default_workload("cnn", per, scale=scale),
            default_workload("nlp", per, scale=scale),
            default_workload("web", per, scale=scale),
            default_workload("zipf", n_clients - 3 * per, scale=scale),
        ])
    raise ValueError(f"unknown workload {name!r}")


@dataclass
class ExperimentConfig:
    """One simulation run: workload x balancer x cluster.

    The config is a plain picklable dataclass — it is the unit of work the
    process-pool :class:`~repro.experiments.engine.ExperimentEngine` ships
    to workers, and (canonically JSON-serialized) the key its result cache
    hashes. Keep every field picklable and value-comparable.
    """

    workload: str = "zipf"
    balancer: str = "lunule"
    n_clients: int = 20
    seed: int = 7
    scale: float = 1.0
    data_path: bool = False
    sim: SimConfig = field(default_factory=lambda: BENCH_SIM_CONFIG)
    #: attribute overrides applied to the built workload (e.g.
    #: ``{"creates_per_client": 800}``) — lets sweeps express per-point
    #: workload tweaks without bypassing the engine
    workload_overrides: dict | None = None
    #: keyword arguments for the balancer factory (e.g.
    #: ``{"config": InitiatorConfig(if_threshold=0.3)}``)
    balancer_kwargs: dict | None = None

    def build_workload(self) -> Workload:
        wl = default_workload(self.workload, self.n_clients, scale=self.scale)
        for attr, value in (self.workload_overrides or {}).items():
            if not hasattr(wl, attr):
                raise AttributeError(
                    f"workload {self.workload!r} has no attribute {attr!r}")
            setattr(wl, attr, value)
        return wl
