"""Terminal plotting: sparklines, bar charts, multi-series strips.

The harness reports everything as plain text; these helpers make the time
series legible at a glance (benches and examples embed them next to the
numeric tables).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["sparkline", "bar_chart", "series_strip"]

_BLOCKS = " ▁▂▃▄▅▆▇█"
_ASCII_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60, *,
              ascii_only: bool = False, v_max: float | None = None) -> str:
    """One-line graph of a series, resampled to ``width`` characters."""
    arr = np.asarray(list(values), dtype=np.float64)
    blocks = _ASCII_BLOCKS if ascii_only else _BLOCKS
    if arr.size == 0:
        return ""
    if arr.size > width:
        idx = np.linspace(0, arr.size - 1, width).round().astype(int)
        arr = arr[idx]
    top = v_max if v_max is not None else float(arr.max())
    if top <= 0:
        return blocks[0] * arr.size
    scaled = np.clip(arr / top, 0.0, 1.0) * (len(blocks) - 1)
    return "".join(blocks[int(round(v))] for v in scaled)


def bar_chart(labels: Sequence[str], values: Sequence[float], *,
              width: int = 40, unit: str = "") -> str:
    """Horizontal bar chart with aligned labels and values."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return ""
    top = max(max(values), 1e-12)
    label_w = max(len(l) for l in labels)
    lines = []
    for label, v in zip(labels, values):
        bar = "█" * max(0, round(v / top * width))
        lines.append(f"{label.ljust(label_w)} |{bar} {v:,.1f}{unit}")
    return "\n".join(lines)


def series_strip(named_series: dict[str, Sequence[float]], *, width: int = 60,
                 shared_scale: bool = True) -> str:
    """Stacked sparklines for several series, optionally on one y-scale."""
    if not named_series:
        return ""
    v_max = None
    if shared_scale:
        tops = [max(s) for s in named_series.values() if len(list(s))]
        v_max = max(tops) if tops else None
    label_w = max(len(n) for n in named_series)
    lines = []
    for name, series in named_series.items():
        line = sparkline(series, width, v_max=v_max)
        peak = max(series) if len(list(series)) else 0.0
        lines.append(f"{name.ljust(label_w)} |{line}| max {peak:,.1f}")
    return "\n".join(lines)
