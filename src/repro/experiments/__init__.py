"""Experiment harness: configs, runner, metrics, reports, and the paper's
figures.

Every table and figure of the paper's evaluation (§2.2 and §4) has a
corresponding function in :mod:`repro.experiments.figures` that runs the
simulation(s) and returns the rows/series the paper reports; the
``benchmarks/`` directory wraps each in a pytest-benchmark target.
"""

from repro.experiments.config import ExperimentConfig, default_workload
from repro.experiments.runner import run_experiment
from repro.experiments import figures, metrics, report

__all__ = [
    "ExperimentConfig",
    "default_workload",
    "run_experiment",
    "figures",
    "metrics",
    "report",
]
