"""Process-pool experiment engine with config-hash result caching.

The policy/mechanism split makes an :class:`ExperimentConfig` a closed,
picklable description of one run, which is exactly the unit of work a
process pool wants: the engine ships whole configs to worker processes,
runs them with :func:`~repro.experiments.runner.run_traced`, and returns
results **in input order** regardless of completion order — a sweep's
output is byte-for-byte the same at any worker count.

Caching: each config is hashed over its canonical JSON form
(:func:`config_hash`); results are memoized per engine instance, so a
sweep that revisits a configuration (the ablation benchmarks share their
baseline point across sweeps) pays for it once. The cache never changes
results — simulations are deterministic functions of their config.

Workers are plain ``multiprocessing`` children (fork on Linux), so the
engine needs nothing installed beyond the repository itself. If a pool
cannot be created (restricted sandboxes), the engine degrades to serial
execution with identical results.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, is_dataclass

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_traced

__all__ = ["config_hash", "ExperimentEngine"]


def _jsonable(obj):
    """Canonical JSON-compatible form of anything a config may hold."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {k: _jsonable(v) for k, v in asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def config_hash(cfg: ExperimentConfig) -> str:
    """Stable content hash of a config (equal configs -> equal hashes)."""
    canonical = json.dumps(_jsonable(cfg), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _execute(cfg: ExperimentConfig, with_trace: bool):
    """Worker entry point: one full simulation, optionally with its trace.

    Returns ``result`` or ``(result, trace_jsonl)`` — the trace crosses the
    process boundary as its canonical JSONL string, the same bytes
    ``TraceLog.dumps`` yields in-process (what the golden tests compare).
    """
    result, sim = run_traced(cfg, balancer_kwargs=cfg.balancer_kwargs)
    if with_trace:
        return result, sim.trace.dumps()
    return result


class ExperimentEngine:
    """Runs batches of :class:`ExperimentConfig` with caching + parallelism.

    ``workers=None`` or ``1`` runs serially in-process. Results always come
    back in the order configs were given.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers or 1
        self._cache: dict[tuple[str, bool], object] = {}
        self.hits = 0
        self.misses = 0

    # -------------------------------------------------------------- running
    def run(self, cfgs: list[ExperimentConfig], *, with_trace: bool = False):
        """Run every config; returns results in input order.

        With ``with_trace`` each result is ``(SimResult, trace_jsonl)``.
        Duplicate configs (same hash) run once.
        """
        keys = [(config_hash(c), with_trace) for c in cfgs]
        pending: dict[tuple[str, bool], ExperimentConfig] = {}
        for key, cfg in zip(keys, cfgs):
            if key in self._cache:
                self.hits += 1
            elif key not in pending:
                self.misses += 1
                pending[key] = cfg
            else:
                self.hits += 1
        if pending:
            self._cache.update(self._run_pending(pending, with_trace))
        return [self._cache[key] for key in keys]

    def _run_pending(self, pending, with_trace: bool):
        items = list(pending.items())
        if self.workers > 1 and len(items) > 1:
            try:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    results = list(pool.map(
                        _execute, [cfg for _, cfg in items],
                        [with_trace] * len(items)))
                return {key: res for (key, _), res in zip(items, results)}
            except (OSError, PermissionError):
                pass  # no subprocess support here; fall through to serial
        return {key: _execute(cfg, with_trace) for key, cfg in items}

    # ------------------------------------------------------------ inspection
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0
