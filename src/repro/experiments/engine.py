"""Process-pool experiment engine with config-hash result caching.

The policy/mechanism split makes an :class:`ExperimentConfig` a closed,
picklable description of one run, which is exactly the unit of work a
process pool wants: the engine ships whole configs to worker processes,
runs them with :func:`~repro.experiments.runner.run_traced`, and returns
results **in input order** regardless of completion order — a sweep's
output is byte-for-byte the same at any worker count.

Caching: each config is hashed over its canonical JSON form
(:func:`config_hash`); results are memoized per engine instance, so a
sweep that revisits a configuration (the ablation benchmarks share their
baseline point across sweeps) pays for it once. The cache never changes
results — simulations are deterministic functions of their config.

Workers are plain ``multiprocessing`` children (fork on Linux), so the
engine needs nothing installed beyond the repository itself. If a pool
cannot be created (restricted sandboxes), the engine degrades to serial
execution with identical results.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, is_dataclass, replace

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_traced

__all__ = ["config_hash", "ExperimentEngine", "aggregate_obs"]


def _jsonable(obj):
    """Canonical JSON-compatible form of anything a config may hold."""
    if is_dataclass(obj) and not isinstance(obj, type):
        return {k: _jsonable(v) for k, v in asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def config_hash(cfg: ExperimentConfig) -> str:
    """Stable content hash of a config (equal configs -> equal hashes)."""
    canonical = json.dumps(_jsonable(cfg), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _execute(cfg: ExperimentConfig, with_trace: bool, with_obs: bool = False):
    """Worker entry point: one full simulation, optionally with extras.

    The trace crosses the process boundary as its canonical JSONL string,
    the same bytes ``TraceLog.dumps`` yields in-process (what the golden
    tests compare). ``with_obs`` forces the flight recorder on (logical
    clock, unless the config already chose one) and ships back the
    metrics/time-series snapshots and the span stream — all deterministic
    functions of the config, so aggregation in the parent is worker-count
    independent.

    Return shape: ``result``, then the trace if requested, then the obs
    payload if requested.
    """
    if with_obs and not cfg.sim.record:
        cfg = replace(cfg, sim=cfg.sim.with_(record=True))
    result, sim = run_traced(cfg, balancer_kwargs=cfg.balancer_kwargs)
    if not with_trace and not with_obs:
        return result
    out: list = [result]
    if with_trace:
        out.append(sim.trace.dumps())
    if with_obs:
        out.append({
            "metrics": sim.metrics.snapshot(),
            "timeseries": sim.recorder.timeseries.snapshot(),
            "spans": sim.recorder.spans.events(),
        })
    return tuple(out)


class ExperimentEngine:
    """Runs batches of :class:`ExperimentConfig` with caching + parallelism.

    ``workers=None`` or ``1`` runs serially in-process. Results always come
    back in the order configs were given.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers or 1
        self._cache: dict[tuple[str, bool], object] = {}
        self.hits = 0
        self.misses = 0

    # -------------------------------------------------------------- running
    def run(self, cfgs: list[ExperimentConfig], *, with_trace: bool = False,
            with_obs: bool = False):
        """Run every config; returns results in input order.

        Each returned item is the bare ``SimResult``, or a tuple growing
        the requested extras in order: the canonical trace JSONL
        (``with_trace``) and the observability payload (``with_obs``: the
        run's metrics snapshot, time-series snapshot and span stream —
        see :func:`aggregate_obs`). Duplicate configs (same hash) run
        once.
        """
        keys = [(config_hash(c), with_trace, with_obs) for c in cfgs]
        pending: dict[tuple, ExperimentConfig] = {}
        for key, cfg in zip(keys, cfgs):
            if key in self._cache:
                self.hits += 1
            elif key not in pending:
                self.misses += 1
                pending[key] = cfg
            else:
                self.hits += 1
        if pending:
            self._cache.update(self._run_pending(pending, with_trace, with_obs))
        return [self._cache[key] for key in keys]

    def _run_pending(self, pending, with_trace: bool, with_obs: bool):
        items = list(pending.items())
        if self.workers > 1 and len(items) > 1:
            try:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    results = list(pool.map(
                        _execute, [cfg for _, cfg in items],
                        [with_trace] * len(items), [with_obs] * len(items)))
                return {key: res for (key, _), res in zip(items, results)}
            except (OSError, PermissionError):
                pass  # no subprocess support here; fall through to serial
        return {key: _execute(cfg, with_trace, with_obs)
                for key, cfg in items}

    def run_with_obs(self, cfgs: list[ExperimentConfig],
                     labels: list[str] | None = None):
        """Run configs and return ``(results, aggregate)``.

        ``aggregate`` is the deterministic merge of every run's
        observability payload (see :func:`aggregate_obs`); ``labels``
        name the runs in it (default: their input index).
        """
        items = self.run(cfgs, with_obs=True)
        results = [item[0] for item in items]
        payloads = [item[-1] for item in items]
        if labels is None:
            labels = [str(i) for i in range(len(cfgs))]
        return results, aggregate_obs(payloads, labels)

    # ------------------------------------------------------------ inspection
    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0


def aggregate_obs(payloads: list[dict], labels: list[str]) -> dict:
    """Merge per-run obs payloads into one deterministic structure.

    Metrics snapshots merge by kind (counters/histograms sum, gauges last
    in input order); span streams concatenate with ``pid = input index``
    (a labelled Perfetto process per run); time series stay per-run under
    their label. Input order — not completion order — drives everything,
    so serial and pooled sweeps aggregate to identical bytes
    (``json.dumps(..., sort_keys=True)`` of this value is the contract
    ``tests/test_experiments_engine.py`` holds).
    """
    from repro.obs.aggregate import merge_metrics_snapshots
    from repro.obs.spans import merge_span_events

    if len(payloads) != len(labels):
        raise ValueError("payloads and labels must match 1:1")
    return {
        "metrics": merge_metrics_snapshots([p["metrics"] for p in payloads]),
        "spans": merge_span_events([p["spans"] for p in payloads],
                                   labels=list(labels)),
        "runs": {label: {"timeseries": p["timeseries"]}
                 for label, p in zip(labels, payloads)},
    }
