"""Analysis helpers turning :class:`SimResult` series into paper metrics."""

from __future__ import annotations

import numpy as np

from repro.cluster.results import SimResult

__all__ = [
    "improvement",
    "mean_if_reduction",
    "time_to_balance",
    "jct_percentiles",
    "downsample",
    "head_share",
]


def improvement(ours: float, baseline: float) -> float:
    """Multiplicative improvement ``ours / baseline`` (guard zero)."""
    if baseline <= 0:
        return float("inf") if ours > 0 else 1.0
    return ours / baseline


def mean_if_reduction(ours: SimResult, baseline: SimResult, skip: int = 2) -> float:
    """Fractional reduction in average IF vs a baseline (paper: 17.9-90.4%)."""
    b = baseline.mean_if(skip)
    if b <= 0:
        return 0.0
    return 1.0 - ours.mean_if(skip) / b


def time_to_balance(result: SimResult, threshold: float = 0.1) -> int | None:
    """First tick at which IF drops below ``threshold`` (None if never)."""
    for t, v in zip(result.epoch_ticks, result.if_series):
        if v < threshold:
            return t
    return None


def jct_percentiles(result: SimResult, qs=(50, 80, 99)) -> dict[int, float]:
    """Job-completion-time percentiles over all finished clients."""
    jct = result.job_completion_times()
    if jct.size == 0:
        return {q: float("nan") for q in qs}
    return {q: float(np.percentile(jct, q)) for q in qs}


def downsample(series, n_points: int = 12) -> list[float]:
    """Pick ~``n_points`` evenly spaced samples of a series for reports."""
    arr = list(series)
    if len(arr) <= n_points:
        return [float(x) for x in arr]
    idx = np.linspace(0, len(arr) - 1, n_points).round().astype(int)
    return [float(arr[i]) for i in idx]


def head_share(values, k: int = 1) -> float:
    """Fraction of the total carried by the largest ``k`` entries."""
    arr = np.sort(np.asarray(values, dtype=np.float64))[::-1]
    total = arr.sum()
    if total <= 0:
        return 0.0
    return float(arr[:k].sum() / total)
