"""Internal-consistency validation of simulation results.

`validate(sim, result)` re-checks, after a run, every invariant the
simulator is supposed to maintain. The property-based tests use it, and
users extending the simulator (new balancers, new workloads, custom
schedules) can call it to catch conservation bugs early instead of
debugging skewed curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.results import SimResult

__all__ = ["ValidationReport", "validate"]


@dataclass
class ValidationReport:
    """Outcome of a validation pass: empty ``problems`` means consistent."""

    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def expect(self, condition: bool, message: str) -> None:
        if not condition:
            self.problems.append(message)

    def raise_if_failed(self) -> None:
        if self.problems:
            raise AssertionError("result validation failed:\n  "
                                 + "\n  ".join(self.problems))


def validate(sim, result: SimResult) -> ValidationReport:
    """Check a finished simulation against its result object."""
    rep = ValidationReport()

    # --- op conservation -------------------------------------------------
    issued = sum(c.ops_done for c in sim.clients)
    served = sum(result.served_per_mds)
    rep.expect(served == issued,
               f"ops served ({served}) != ops issued ({issued})")
    rep.expect(result.meta_ops == issued,
               f"meta_ops ({result.meta_ops}) != ops issued ({issued})")

    # --- inode conservation ----------------------------------------------
    expected_inodes = sim.tree.n_dirs + sim.tree.total_files()
    rep.expect(sum(result.inode_distribution) == expected_inodes,
               f"inode distribution sums to {sum(result.inode_distribution)}, "
               f"namespace holds {expected_inodes}")

    # --- authority map ----------------------------------------------------
    covered: list[int] = []
    for root in sim.authmap.subtree_roots():
        covered.extend(sim.authmap.extent(root))
    rep.expect(sorted(covered) == list(range(sim.tree.n_dirs)),
               "subtree extents do not partition the namespace")
    for root, auth in sim.authmap.subtree_roots().items():
        rep.expect(0 <= auth < sim.n_mds,
                   f"subtree {root} pinned to invalid rank {auth}")

    # --- series alignment ---------------------------------------------------
    n = len(result.epoch_ticks)
    for name in ("per_mds_iops", "if_series", "migrated_series",
                 "forwards_series", "latency_series"):
        rep.expect(len(getattr(result, name)) == n,
                   f"{name} has {len(getattr(result, name))} entries, "
                   f"expected {n}")
    rep.expect(all(0.0 <= v <= 1.0 for v in result.if_series),
               "imbalance factor left [0, 1]")
    rep.expect(all(b >= a for a, b in zip(result.migrated_series,
                                          result.migrated_series[1:])),
               "migrated-inode series is not cumulative")
    rep.expect(all(b >= a for a, b in zip(result.forwards_series,
                                          result.forwards_series[1:])),
               "forwards series is not cumulative")
    rep.expect(all(v >= 1.0 for v in result.latency_series),
               "op latency below one service tick")

    # --- capacity ----------------------------------------------------------
    caps = [m.capacity for m in sim.mdss]
    for row in result.per_mds_iops:
        for rank, v in enumerate(row):
            rep.expect(v <= caps[rank] + 1e-9,
                       f"MDS-{rank} exceeded its capacity: {v} > {caps[rank]}")

    # --- completions ---------------------------------------------------------
    for cid, tick in result.completion_ticks.items():
        rep.expect(0 <= tick <= result.finished_tick,
                   f"client {cid} completed at {tick}, run ended at "
                   f"{result.finished_tick}")

    # --- migration accounting ---------------------------------------------
    mig = sim.migrator
    rep.expect(result.committed_tasks == mig.committed_tasks,
               "committed-task count mismatch")
    rep.expect(result.aborted_tasks == mig.aborted_tasks,
               "aborted-task count mismatch")

    return rep
