"""Every table and figure of the paper, as runnable experiment functions.

Each ``figN_*`` function runs the necessary simulations and returns a
:class:`FigureResult` whose ``data`` holds the raw rows/series and whose
``text`` renders them the way the paper reports them. The ``benchmarks/``
directory wraps each function in a pytest-benchmark target; EXPERIMENTS.md
records paper-vs-measured values.

Functions accept ``scale`` (dataset/op-count multiplier, 1.0 = calibrated
bench scale) and ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.experiments.config import BENCH_SIM_CONFIG, ExperimentConfig, default_workload
from repro.experiments.metrics import (
    downsample,
    jct_percentiles,
    mean_if_reduction,
    time_to_balance,
)
from repro.experiments.report import render_kv, render_series, render_table
from repro.experiments.runner import run_experiment, run_matrix

__all__ = [
    "FigureResult",
    "table1_workloads",
    "fig2_request_distribution",
    "fig3_per_mds_throughput",
    "fig4_migrated_inodes",
    "eval_matrix",
    "fig6_imbalance_factor",
    "fig7_throughput",
    "fig8_end_to_end",
    "mixed_comparison",
    "fig9_mixed_if",
    "fig10_mixed_throughput",
    "fig11_jct_cdf",
    "fig12a_cluster_expansion",
    "fig12b_client_growth",
    "fig13a_scalability",
    "fig13b_dirhash_throughput",
    "fig14_dirhash_distribution",
]

SINGLE_WORKLOADS = ("cnn", "nlp", "web", "zipf", "mdtest")
EVAL_BALANCERS = ("vanilla", "greedyspill", "lunule-light", "lunule")


@dataclass
class FigureResult:
    fig_id: str
    title: str
    data: dict = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _cfg(workload: str, balancer: str, *, scale: float, seed: int,
         n_clients: int = 20, data_path: bool = False,
         sim: SimConfig | None = None) -> ExperimentConfig:
    return ExperimentConfig(workload=workload, balancer=balancer,
                            n_clients=n_clients, seed=seed, scale=scale,
                            data_path=data_path, sim=sim or BENCH_SIM_CONFIG)


# --------------------------------------------------------------------- Table 1
def table1_workloads(scale: float = 1.0, seed: int = 7) -> FigureResult:
    """Table 1: workload characteristics and metadata-operation ratios.

    The meta-op ratio is measured from the op streams directly (one client
    per workload), no simulation needed.
    """
    rows = []
    for name in SINGLE_WORKLOADS:
        wl = default_workload(name, 2, scale=scale)
        inst = wl.materialize(seed=seed)
        meta = data = 0
        client = inst.clients[0]
        op = client.current
        stream = client._ops
        while op is not None:
            meta += 1
            if op[3] > 0:
                data += 1
            op = next(stream, None)
        measured = meta / (meta + data) if meta + data else 0.0
        rows.append([name, inst.tree.n_dirs - 1, inst.tree.total_files(),
                     wl.paper_meta_ratio, measured])
    text = render_table(
        ["workload", "dirs", "files", "paper meta%", "measured meta%"], rows,
        title="Table 1 — workload characteristics (scaled datasets)")
    return FigureResult("table1", "Workload characteristics", {"rows": rows}, text)


# -------------------------------------------------------------------- Figure 2
def fig2_request_distribution(scale: float = 1.0, seed: int = 7) -> FigureResult:
    """Fig. 2: per-MDS share of total metadata requests under Vanilla."""
    rows = []
    shares = {}
    for name in SINGLE_WORKLOADS:
        res = run_experiment(_cfg(name, "vanilla", scale=scale, seed=seed))
        share = res.request_share()
        shares[name] = share
        rows.append([name] + [float(s) for s in share]
                    + [float(share.max() / max(share.min(), 1e-9))])
    text = render_table(
        ["workload"] + [f"MDS-{i + 1}" for i in range(5)] + ["max/min"],
        rows,
        title="Figure 2 — metadata request distribution, CephFS-Vanilla, 5 MDSs")
    return FigureResult("fig2", "Request distribution (Vanilla)",
                        {"shares": shares}, text)


# -------------------------------------------------------------------- Figure 3
def fig3_per_mds_throughput(scale: float = 1.0, seed: int = 7) -> FigureResult:
    """Fig. 3: per-MDS IOPS over time, Vanilla, for Zipf and CNN."""
    blocks, data = [], {}
    for name in ("zipf", "cnn"):
        res = run_experiment(_cfg(name, "vanilla", scale=scale, seed=seed))
        mat = res.per_mds_matrix()
        data[name] = {"ticks": res.epoch_ticks, "per_mds": mat}
        idx = np.linspace(0, mat.shape[0] - 1, min(10, mat.shape[0])).round().astype(int)
        rows = [[int(res.epoch_ticks[i])] + [float(v) for v in mat[i]] for i in idx]
        blocks.append(render_table(
            ["tick"] + [f"MDS-{m + 1}" for m in range(mat.shape[1])], rows,
            title=f"Figure 3 ({name}) — per-MDS IOPS, Vanilla"))
    return FigureResult("fig3", "Per-MDS throughput (Vanilla)", data,
                        "\n\n".join(blocks))


# -------------------------------------------------------------------- Figure 4
def fig4_migrated_inodes(scale: float = 1.0, seed: int = 7) -> FigureResult:
    """Fig. 4: cumulative migrated inodes over time, Vanilla."""
    blocks, data = [], {}
    for name in ("zipf", "cnn"):
        res = run_experiment(_cfg(name, "vanilla", scale=scale, seed=seed))
        data[name] = {"ticks": res.epoch_ticks, "migrated": res.migrated_series}
        blocks.append(render_series(
            f"Figure 4 ({name}) — cumulative migrated inodes, Vanilla",
            downsample(res.epoch_ticks), downsample(res.migrated_series),
            "tick", "inodes"))
    return FigureResult("fig4", "Migrated inodes (Vanilla)", data,
                        "\n\n".join(blocks))


# --------------------------------------------------------------- Figures 6 & 7
def eval_matrix(scale: float = 1.0, seed: int = 7,
                workloads=SINGLE_WORKLOADS, balancers=EVAL_BALANCERS, *,
                workers: int = 1, engine=None) -> dict:
    """The 5-workload x 4-balancer run grid shared by Figures 6 and 7.

    ``workers`` fans the grid out over the process-pool engine; results are
    identical at any worker count (each cell is an independent, fully
    deterministic simulation).
    """
    base = _cfg(workloads[0], balancers[0], scale=scale, seed=seed)
    return run_matrix(list(workloads), list(balancers), base,
                      workers=workers, engine=engine)


def fig6_imbalance_factor(scale: float = 1.0, seed: int = 7,
                          matrix: dict | None = None) -> FigureResult:
    """Fig. 6: IF over time per workload x balancer (lower is better)."""
    matrix = matrix or eval_matrix(scale, seed)
    workloads = sorted({w for w, _ in matrix})
    balancers = [b for b in EVAL_BALANCERS if any((w, b) in matrix for w in workloads)]
    rows, series = [], {}
    for w in workloads:
        row = [w]
        for b in balancers:
            res = matrix[(w, b)]
            row.append(res.mean_if(2))
            series[(w, b)] = {"ticks": res.epoch_ticks, "if": res.if_series}
        van, lun = matrix[(w, "vanilla")], matrix[(w, "lunule")]
        row.append(100.0 * mean_if_reduction(lun, van))
        rows.append(row)
    text = render_table(
        ["workload"] + [f"IF({b})" for b in balancers] + ["lunule vs vanilla (%)"],
        rows, title="Figure 6 — average imbalance factor (lower is better)")
    return FigureResult("fig6", "Imbalance factor", {"rows": rows, "series": series}, text)


def fig7_throughput(scale: float = 1.0, seed: int = 7,
                    matrix: dict | None = None) -> FigureResult:
    """Fig. 7: aggregate metadata throughput per workload x balancer."""
    matrix = matrix or eval_matrix(scale, seed)
    workloads = sorted({w for w, _ in matrix})
    balancers = [b for b in EVAL_BALANCERS if any((w, b) in matrix for w in workloads)]
    rows, series = [], {}
    for w in workloads:
        # Mean sustained throughput = total ops / runtime: completion-time
        # based, robust to different run lengths.
        sustained = {
            b: sum(matrix[(w, b)].served_per_mds) / max(1, matrix[(w, b)].finished_tick)
            for b in balancers
        }
        latency = {b: matrix[(w, b)].mean_latency(2) for b in balancers}
        for b in balancers:
            res = matrix[(w, b)]
            series[(w, b)] = {"ticks": res.epoch_ticks,
                              "agg": list(res.aggregate_iops()),
                              "latency": list(res.latency_series)}
        rows.append([w] + [sustained[b] for b in balancers]
                    + [sustained["lunule"] / max(sustained["vanilla"], 1e-9)]
                    + [latency["vanilla"], latency["lunule"]])
    text = render_table(
        ["workload"] + [f"IOPS({b})" for b in balancers]
        + ["lunule/vanilla", "lat(vanilla)", "lat(lunule)"],
        rows, title="Figure 7 — sustained aggregate metadata throughput "
                    "and mean op latency (ticks)")
    return FigureResult("fig7", "Aggregate throughput", {"rows": rows, "series": series}, text)


# -------------------------------------------------------------------- Figure 8
def fig8_end_to_end(scale: float = 1.0, seed: int = 7) -> FigureResult:
    """Fig. 8: job completion time with data access enabled.

    The paper runs CNN/NLP/Zipf/Web (MDtest is metadata-only by convention)
    under Vanilla, GreedySpill and Lunule.
    """
    balancers = ("vanilla", "greedyspill", "lunule")
    rows, data = [], {}
    for w in ("cnn", "nlp", "zipf", "web"):
        jcts = {}
        for b in balancers:
            res = run_experiment(_cfg(w, b, scale=scale, seed=seed, data_path=True))
            jcts[b] = float(res.job_completion_times().mean())
        data[w] = jcts
        rows.append([w] + [jcts[b] for b in balancers]
                    + [100.0 * (1.0 - jcts["lunule"] / jcts["vanilla"])])
    text = render_table(
        ["workload"] + [f"JCT({b})" for b in balancers] + ["lunule gain (%)"],
        rows, title="Figure 8 — mean job completion time, data access enabled")
    return FigureResult("fig8", "End-to-end JCT", {"rows": rows, "jct": data}, text)


# ------------------------------------------------------------- Figures 9/10/11
def mixed_comparison(scale: float = 1.0, seed: int = 7, n_clients: int = 24) -> dict:
    """The mixed-workload pair of runs shared by Figures 9, 10 and 11."""
    out = {}
    for b in ("vanilla", "lunule"):
        out[b] = run_experiment(_cfg("mixed", b, scale=scale, seed=seed,
                                     n_clients=n_clients))
    return out


def fig9_mixed_if(scale: float = 1.0, seed: int = 7,
                  runs: dict | None = None) -> FigureResult:
    """Fig. 9: IF over time for the mixed workload, Lunule vs Vanilla."""
    runs = runs or mixed_comparison(scale, seed)
    blocks = []
    for b, res in runs.items():
        blocks.append(render_series(
            f"Figure 9 ({b}) — imbalance factor, mixed workload",
            downsample(res.epoch_ticks), downsample(res.if_series),
            "tick", "IF"))
    van, lun = runs["vanilla"], runs["lunule"]
    summary = render_kv("Summary", [
        ("mean IF vanilla", van.mean_if(2)),
        ("mean IF lunule", lun.mean_if(2)),
        ("time to IF<0.1 vanilla", time_to_balance(van) or -1),
        ("time to IF<0.1 lunule", time_to_balance(lun) or -1),
    ])
    return FigureResult("fig9", "Mixed-workload IF",
                        {b: {"ticks": r.epoch_ticks, "if": r.if_series}
                         for b, r in runs.items()},
                        "\n\n".join(blocks + [summary]))


def fig10_mixed_throughput(scale: float = 1.0, seed: int = 7,
                           runs: dict | None = None) -> FigureResult:
    """Fig. 10: per-MDS IOPS over time for the mixed workload."""
    runs = runs or mixed_comparison(scale, seed)
    blocks, data = [], {}
    for b, res in runs.items():
        mat = res.per_mds_matrix()
        data[b] = {"ticks": res.epoch_ticks, "per_mds": mat,
                   "agg": list(res.aggregate_iops())}
        idx = np.linspace(0, mat.shape[0] - 1, min(10, mat.shape[0])).round().astype(int)
        rows = [[int(res.epoch_ticks[i])] + [float(v) for v in mat[i]]
                + [float(mat[i].sum())] for i in idx]
        blocks.append(render_table(
            ["tick"] + [f"MDS-{m + 1}" for m in range(mat.shape[1])] + ["total"],
            rows, title=f"Figure 10 ({b}) — per-MDS IOPS, mixed workload"))
    return FigureResult("fig10", "Mixed-workload per-MDS throughput", data,
                        "\n\n".join(blocks))


def fig11_jct_cdf(scale: float = 1.0, seed: int = 7,
                  runs: dict | None = None) -> FigureResult:
    """Fig. 11: CDF of client job completion times, mixed workload."""
    runs = runs or mixed_comparison(scale, seed)
    rows, data = [], {}
    for b, res in runs.items():
        pct = jct_percentiles(res, (50, 80, 99))
        data[b] = {"jct": list(res.job_completion_times()), "percentiles": pct}
        rows.append([b, pct[50], pct[80], pct[99]])
    van, lun = data["vanilla"]["percentiles"], data["lunule"]["percentiles"]
    rows.append(["tail gain (%)", 100 * (1 - lun[50] / van[50]),
                 100 * (1 - lun[80] / van[80]), 100 * (1 - lun[99] / van[99])])
    text = render_table(["balancer", "p50", "p80", "p99"], rows,
                        title="Figure 11 — JCT percentiles, mixed workload")
    return FigureResult("fig11", "Mixed-workload JCT CDF", data, text)


# ------------------------------------------------------------------- Figure 12
def fig12a_cluster_expansion(scale: float = 1.0, seed: int = 7) -> FigureResult:
    """Fig. 12a: add MDSs at runtime (4 -> 5 -> 6) under Zipf, Lunule."""
    wl = default_workload("zipf", 24, scale=scale)
    # enough reads that the run outlives both expansion events
    wl.reads_per_client = round(wl.reads_per_client * 12)  # type: ignore[attr-defined]
    inst = wl.materialize(seed=seed)
    sim_cfg = BENCH_SIM_CONFIG.with_(n_mds=4, max_ticks=900)
    schedule = [(300, lambda s: s.add_mds(1)), (600, lambda s: s.add_mds(1))]
    sim = Simulator(inst, make_balancer("lunule"), sim_cfg, schedule=schedule)
    res = sim.run()
    agg = res.aggregate_iops()
    phases = []
    for lo, hi, label in ((0, 300, "4 MDS"), (300, 600, "5 MDS"),
                          (600, 900, "6 MDS")):
        sel = [a for t, a in zip(res.epoch_ticks, agg) if lo < t <= hi]
        phases.append([label, float(np.mean(sel)) if sel else 0.0,
                       float(np.max(sel)) if sel else 0.0])
    text = render_table(["phase", "mean agg IOPS", "peak agg IOPS"], phases,
                        title="Figure 12a — MDS cluster expansion under Lunule (Zipf)")
    return FigureResult("fig12a", "Cluster expansion",
                        {"phases": phases, "ticks": res.epoch_ticks,
                         "agg": list(agg), "per_mds": res.per_mds_matrix()}, text)


def fig12b_client_growth(scale: float = 1.0, seed: int = 7) -> FigureResult:
    """Fig. 12b: grow the client population 10 -> 20 -> 30 -> 40 under Zipf.

    Clients are rate-limited so the first phase is genuinely light: the
    urgency term must NOT trigger re-balance while all MDSs idle along.
    """
    wl = default_workload("zipf", 40, scale=scale)
    wl.client_rate = 2.0
    # every wave has enough work to stay active through the last phase
    wl.reads_per_client = round(wl.reads_per_client * 5)  # type: ignore[attr-defined]
    inst = wl.materialize(seed=seed)
    groups = [inst.clients[i * 10:(i + 1) * 10] for i in range(4)]
    inst.clients = groups[0]
    phase_len = 250
    schedule = [(phase_len * i, (lambda g: lambda s: s.add_clients(g))(groups[i]))
                for i in (1, 2, 3)]
    sim = Simulator(inst, make_balancer("lunule"),
                    BENCH_SIM_CONFIG.with_(max_ticks=phase_len * 4),
                    schedule=schedule)
    res = sim.run()
    agg = res.aggregate_iops()
    rows = []
    migrated_prev = 0
    for i in range(4):
        lo, hi = phase_len * i, phase_len * (i + 1) if i < 3 else res.finished_tick
        sel = [(a, m) for t, a, m in zip(res.epoch_ticks, agg, res.migrated_series)
               if lo < t <= hi]
        if not sel:
            continue
        mean_agg = float(np.mean([a for a, _ in sel]))
        mig = sel[-1][1] - migrated_prev
        migrated_prev = sel[-1][1]
        rows.append([f"{10 * (i + 1)} clients", mean_agg, mig])
    text = render_table(["phase", "mean agg IOPS", "inodes migrated in phase"], rows,
                        title="Figure 12b — client growth under Lunule (Zipf, rate-limited)")
    return FigureResult("fig12b", "Client growth",
                        {"rows": rows, "ticks": res.epoch_ticks, "agg": list(agg),
                         "if": res.if_series}, text)


# ------------------------------------------------------------------- Figure 13
def fig13a_scalability(scale: float = 1.0, seed: int = 7,
                       cluster_sizes=(1, 2, 4, 8, 16), *,
                       workers: int = 1, engine=None) -> FigureResult:
    """Fig. 13a: peak MD throughput vs cluster size, Lunule.

    Each cluster size is one :class:`ExperimentConfig` (the per-size client
    count and run length are workload overrides), so the sweep runs through
    the engine — ``workers`` parallelizes across cluster sizes.
    """
    from repro.experiments.engine import ExperimentEngine

    cfgs = [
        ExperimentConfig(
            workload="mdtest", balancer="lunule", n_clients=4 * n, seed=seed,
            scale=scale, sim=BENCH_SIM_CONFIG.with_(n_mds=n),
            # larger clusters need a longer run: the initial spread from
            # MDS-0 takes a fixed number of epochs regardless of cluster size
            workload_overrides={
                "creates_per_client": max(500, round((1000 + 200 * n) * scale)),
            },
        )
        for n in cluster_sizes
    ]
    eng = engine if engine is not None else ExperimentEngine(workers=workers)
    results = eng.run(cfgs)
    rows, peaks = [], {}
    base_peak = None
    for n, res in zip(cluster_sizes, results):
        peak = res.peak_iops()
        peaks[n] = peak
        if base_peak is None:
            base_peak = peak
        rows.append([n, peak, base_peak * n, peak / (base_peak * n)])
    text = render_table(["MDSs", "peak IOPS", "linear ref", "efficiency"], rows,
                        title="Figure 13a — MD-workload scalability under Lunule")
    return FigureResult("fig13a", "Scalability", {"rows": rows, "peaks": peaks}, text)


def fig13b_dirhash_throughput(scale: float = 1.0, seed: int = 7,
                              results: dict | None = None) -> FigureResult:
    """Fig. 13b: Lunule vs Dir-Hash vs Vanilla on the Web workload."""
    results = results or {
        b: run_experiment(_cfg("web", b, scale=scale, seed=seed))
        for b in ("vanilla", "dirhash", "lunule")
    }
    rows = []
    for b, res in results.items():
        sustained = sum(res.served_per_mds) / max(1, res.finished_tick)
        rows.append([b, sustained, res.peak_iops(), float(res.finished_tick),
                     res.total_forwards])
    text = render_table(["balancer", "sustained IOPS", "peak IOPS", "runtime", "forwards"],
                        rows, title="Figure 13b — Web workload: Lunule vs Dir-Hash vs Vanilla")
    return FigureResult("fig13b", "Dir-Hash comparison", {"rows": rows,
                        "results": results}, text)


def fig14_dirhash_distribution(scale: float = 1.0, seed: int = 7,
                               results: dict | None = None) -> FigureResult:
    """Fig. 14: Dir-Hash places inodes evenly but requests unevenly, and
    roughly doubles forwards relative to subtree partitioning."""
    results = results or {
        b: run_experiment(_cfg("web", b, scale=scale, seed=seed))
        for b in ("vanilla", "dirhash", "lunule")
    }
    dh = results["dirhash"]
    inode_share = np.array(dh.inode_distribution, dtype=float)
    inode_share = inode_share / inode_share.sum()
    req_share = dh.request_share()
    rows = [[f"MDS-{i + 1}", float(inode_share[i]), float(req_share[i])]
            for i in range(len(inode_share))]
    fw = {b: r.total_forwards for b, r in results.items()}
    base = max(1, min(fw["vanilla"], fw["lunule"]))
    extra = render_kv("Forwards", [
        ("dirhash", fw["dirhash"]),
        ("vanilla", fw["vanilla"]),
        ("lunule", fw["lunule"]),
        ("dirhash vs best subtree (x)", fw["dirhash"] / base),
    ])
    text = render_table(["rank", "inode share", "request share"], rows,
                        title="Figure 14 — Dir-Hash inode vs request distribution (Web)")
    return FigureResult("fig14", "Dir-Hash distributions",
                        {"inode_share": list(inode_share),
                         "request_share": list(req_share), "forwards": fw},
                        text + "\n\n" + extra)
