"""Self-contained Markdown/HTML run reports from flight-recorder data.

``render_run_report`` turns the artifacts of one recorded run — run
metadata, the per-epoch time-series snapshot, the decision trace, the
metrics snapshot and the span stream — into a single Markdown document
answering the longitudinal questions the paper's figures ask: how did IF
evolve, who carried the load, what migrated where, and where did the
wall-clock go. Everything is computed from plain dicts/event lists, so
the renderer works on loaded artifacts as well as live objects and stays
import-free of the simulator.

``render_html`` wraps the same report in a minimal standalone HTML page
(no external assets), for sharing a run without a Markdown viewer.
"""

from __future__ import annotations

import html as _html
import re

from repro.obs.events import OP_MIX_CLASSES
from repro.obs.outcomes import build_ledger
from repro.obs.registry import histogram_quantile
from repro.obs.spans import totals_from_events

__all__ = ["render_run_report", "render_html", "sparkline"]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """A one-line unicode plot of a series (empty string for no data)."""
    vals = [v for v in values if v is not None and v == v]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    out = []
    for v in values:
        if v is None or v != v:
            out.append(" ")
            continue
        idx = 0 if span == 0 else int((v - lo) / span * (len(_SPARK_BLOCKS) - 1))
        out.append(_SPARK_BLOCKS[idx])
    return "".join(out)


def _fmt(x: object) -> str:
    if isinstance(x, float):
        if x != x:
            return "nan"
        if abs(x) >= 1000:
            return f"{x:,.0f}"
        return f"{x:.3f}" if abs(x) < 10 else f"{x:.1f}"
    return str(x)


def _md_table(headers: list[str], rows: list[list]) -> list[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return lines


def _series(timeseries: dict, name: str) -> list:
    cols = timeseries.get("columns", [])
    if name not in cols:
        return []
    i = cols.index(name)
    return [row[i] for row in timeseries.get("rows", [])]


def _rank_columns(timeseries: dict, prefix: str) -> list[tuple[int, str]]:
    out = []
    for col in timeseries.get("columns", []):
        head, _, rank = col.partition(".")
        if head == prefix and rank.isdigit():
            out.append((int(rank), col))
    return sorted(out)


def _metric_total(metrics: dict, name: str) -> float:
    """Sum of a family's series values in a registry snapshot (0 if absent)."""
    family = metrics.get(name)
    if not family:
        return 0.0
    return sum(s.get("value") or 0 for s in family.get("series", ()))


# ------------------------------------------------------------------ sections
def _section_warnings(timeseries: dict, metrics: dict) -> list[str]:
    """Visible banner for silent observability loss.

    Three ways a bounded deployment sheds data — the decision-trace ring
    (``trace_events_dropped_total``), the time-series ring (lifetime
    ``appended`` vs retained rows) and the serve event bus
    (``serve_events_dropped_total``) — were previously only counters;
    this surfaces any nonzero loss at the top of the report.
    """
    losses: list[str] = []
    trace_dropped = _metric_total(metrics, "trace.events_dropped")
    if trace_dropped:
        losses.append(f"decision-trace ring dropped {trace_dropped:.0f} "
                      f"event(s) (`trace_events_dropped_total`) — oldest "
                      f"provenance chains may be truncated")
    appended = timeseries.get("appended", 0)
    retained = len(timeseries.get("rows", ()))
    if appended and appended > retained:
        losses.append(f"time-series ring evicted {appended - retained} of "
                      f"{appended} epoch row(s) — trajectory sections show "
                      f"recent history only")
    bus_dropped = _metric_total(metrics, "serve.events_dropped")
    if bus_dropped:
        losses.append(f"live event bus dropped {bus_dropped:.0f} event(s) "
                      f"on slow consumers (`serve_events_dropped_total`) — "
                      f"streams saw gaps; the trace itself is complete")
    if not losses:
        return []
    lines = ["> **Warning — observability data was dropped during this run:**"]
    lines += [f"> - {loss}" for loss in losses]
    lines.append("")
    return lines


def _section_header(meta: dict) -> list[str]:
    title = meta.get("title") or (
        f"{meta.get('workload', '?')} × {meta.get('balancer', '?')}")
    lines = [f"# Run report — {title}", ""]
    keys = ("workload", "balancer", "seed", "n_clients", "n_mds", "scale",
            "epoch_len", "epochs", "finished_tick", "clock")
    rows = [[k, meta[k]] for k in keys if k in meta]
    for k in sorted(set(meta) - set(keys) - {"title", "schema"}):
        rows.append([k, meta[k]])
    if rows:
        lines += _md_table(["field", "value"], rows)
        lines.append("")
    return lines


def _section_if(timeseries: dict) -> list[str]:
    ifs = [v for v in _series(timeseries, "if") if v is not None]
    if not ifs:
        return []
    lines = ["## Imbalance-factor trajectory", ""]
    lines.append(f"`{sparkline(ifs)}`  ({len(ifs)} epochs)")
    lines.append("")
    rows = [["first", ifs[0]], ["peak", max(ifs)],
            ["mean", sum(ifs) / len(ifs)], ["last", ifs[-1]]]
    urg = [v for v in _series(timeseries, "urgency") if v is not None]
    if urg:
        rows.append(["peak urgency", max(urg)])
    lines += _md_table(["IF", "value"], rows)
    lines.append("")
    return lines


def _section_per_mds(timeseries: dict) -> list[str]:
    load_cols = _rank_columns(timeseries, "load")
    if not load_cols:
        return []
    lines = ["## Per-MDS load", ""]
    rows = []
    for rank, col in load_cols:
        series = [v for v in _series(timeseries, col) if v is not None]
        if not series:
            continue
        queue = _series(timeseries, f"queue.{rank}")
        queue_last = next((v for v in reversed(queue) if v is not None), 0)
        rows.append([rank, sum(series) / len(series), max(series), series[-1],
                     queue_last, sparkline(series)])
    lines += _md_table(
        ["rank", "mean load", "peak load", "last load", "queue", "trend"], rows)
    lines.append("")
    return lines


def _section_workload(timeseries: dict) -> list[str]:
    """Workload profile: skew, hotspot and churn trajectories (``wl.*``).

    Renders only when the run recorded the characterization stream
    (``SimConfig(workload_profile=True)``); each series gets the same
    sparkline treatment the IF trajectory gets.
    """
    named = [("wl.heat_gini", "heat Gini"),
             ("wl.heat_entropy", "heat entropy"),
             ("wl.load_gini", "load Gini"),
             ("wl.load_entropy", "load entropy"),
             ("wl.top1_share", "top-1 hotspot share"),
             ("wl.topk_share", "top-k hotspot share"),
             ("wl.churn", "client churn")]
    rows = []
    for col, label in named:
        series = [v for v in _series(timeseries, col) if v is not None]
        if not series:
            continue
        rows.append([label, series[0], sum(series) / len(series),
                     max(series), series[-1], sparkline(series)])
    if not rows:
        return []
    lines = ["## Workload profile", ""]
    lines += _md_table(["metric", "first", "mean", "peak", "last", "trend"],
                       rows)
    lines.append("")
    mix = [v for v in _series(timeseries, "wl.op_mix") if v is not None]
    if mix:
        counts: dict[str, int] = {}
        for v in mix:
            cls = OP_MIX_CLASSES[int(v)]
            counts[cls] = counts.get(cls, 0) + 1
        parts = [f"{cls} × {counts[cls]}"
                 for cls in OP_MIX_CLASSES if cls in counts]
        lines.append(f"Op-mix classes over {len(mix)} epochs: "
                     + ", ".join(parts)
                     + f" — latest **{OP_MIX_CLASSES[int(mix[-1])]}**.")
        lines.append("")
    return lines


def _section_economics(events: list, timeseries: dict) -> list[str]:
    """Migration economics: the cost/benefit ledger's verdicts.

    Judges every committed migration post-hoc (``repro.obs.outcomes``)
    from the decision trace plus — when the run was recorded — the exact
    ``load.<rank>`` time-series columns.
    """
    if not events:
        return []
    columns = {name: _series(timeseries, name)
               for name in timeseries.get("columns", [])}
    ledger = build_ledger(events, timeseries=columns or None)
    if not len(ledger):
        return []
    totals = ledger.totals()
    counts = ledger.verdict_counts()
    lines = ["## Migration economics", ""]
    lines += _md_table(["metric", "value"], [
        ["migrations judged", int(totals["migrations"])],
        ["inodes moved", int(totals["moved_inodes"])],
        ["inodes aborted (waste)", int(totals["aborted_inodes"])],
        ["benefit realized / expected",
         f"{_fmt(totals['realized'])} / {_fmt(totals['expected'])}"],
        ["benefit efficiency", f"{totals['efficiency']:.0%}"],
    ])
    lines.append("")
    lines.append("Verdicts ("
                 f"K={ledger.config.benefit_epochs} benefit epochs, "
                 f"W={ledger.config.pingpong_epochs} ping-pong window): "
                 + ", ".join(f"**{v}** × {counts[v]}"
                             for v in ("paid_off", "neutral", "wasted",
                                       "ping_pong") if v in counts) + ".")
    lines.append("")
    top = sorted(ledger.entries, key=lambda e: (-e.inodes, e.did))[:10]
    lines.append("### Largest migrations, judged")
    lines.append("")
    lines += _md_table(
        ["did", "unit", "route", "epoch", "inodes", "waste", "benefit",
         "verdict"],
        [[e.did, str(e.unit), f"{e.src} → {e.dst}", e.epoch, e.inodes,
          e.waste, f"{e.ratio:.0%}", e.verdict] for e in top])
    lines.append("")
    return lines


def _section_migration(events: list) -> list[str]:
    if not events:
        return []
    counts: dict[str, int] = {}
    for e in events:
        counts[e.etype] = counts.get(e.etype, 0) + 1
    committed = [e for e in events if e.etype == "migration_committed"]
    lines = ["## Migration summary", ""]
    lines += _md_table(["metric", "value"], [
        ["planned", counts.get("migration_planned", 0)],
        ["committed", counts.get("migration_committed", 0)],
        ["aborted", counts.get("migration_aborted", 0)],
        ["inodes moved", sum(e.inodes for e in committed)],
    ])
    lines.append("")
    if committed:
        per_unit: dict[str, list] = {}
        for e in committed:
            entry = per_unit.setdefault(str(e.unit), [0, 0, set(), set()])
            entry[0] += 1
            entry[1] += e.inodes
            entry[2].add(e.src)
            entry[3].add(e.dst)
        top = sorted(per_unit.items(), key=lambda kv: (-kv[1][1], kv[0]))[:10]
        lines.append("### Top exported subtrees")
        lines.append("")
        lines += _md_table(
            ["unit", "exports", "inodes", "from", "to"],
            [[unit, c, inodes,
              " ".join(map(str, sorted(srcs))), " ".join(map(str, sorted(dsts)))]
             for unit, (c, inodes, srcs, dsts) in top])
        lines.append("")
    return lines


def _section_phases(span_events: list, clock: str) -> list[str]:
    if not span_events:
        return []
    totals = totals_from_events(span_events)
    if not totals:
        return []
    unit = "µs" if clock == "wall" else "steps"
    grand = sum(t["total"] for t in totals.values()) or 1
    lines = [f"## Phase-time breakdown ({unit}, inclusive)", ""]
    rows = [[name, t["count"], t["total"], f"{100 * t['total'] / grand:.1f}%"]
            for name, t in sorted(totals.items(),
                                  key=lambda kv: -kv[1]["total"])]
    lines += _md_table(["phase", "spans", f"total {unit}", "share"], rows)
    lines.append("")
    if clock != "wall":
        lines.append("_Logical clock: totals count begin/end steps, not "
                     "seconds — rerun with `record_clock=\"wall\"` for "
                     "wall-time attribution._")
        lines.append("")
    return lines


def _section_chaos(chaos: dict) -> list[str]:
    """Robustness summary of a chaos run (see ``repro.chaos.score``)."""
    if not chaos:
        return []
    score = chaos.get("score", {})
    lines = ["## Chaos robustness", ""]
    scenario = chaos.get("scenario", {})
    if scenario:
        what = scenario.get("name", "?")
        desc = scenario.get("description", "")
        lines.append(f"Scenario **{what}**"
                     + (f" — {desc}" if desc else "")
                     + f" (seed {scenario.get('seed', '?')})")
        lines.append("")
    mean_rec = score.get("mean_recovery_epochs")
    lines += _md_table(["metric", "value"], [
        ["faults injected", chaos.get("faults_injected",
                                      len(score.get("faults", [])))],
        ["mean recovery (epochs)",
         "never" if mean_rec is None else mean_rec],
        ["unrecovered faults", score.get("unrecovered_faults", 0)],
        ["aborted tasks (mds_failed)", score.get("aborted_tasks", 0)],
        ["aborted inodes (waste)", score.get("aborted_inodes", 0)],
        ["IF overshoot area", score.get("if_overshoot_area", 0.0)],
    ])
    lines.append("")
    faults = score.get("faults", [])
    if faults:
        lines.append("### Fault windows")
        lines.append("")
        lines += _md_table(
            ["rank", "kind", "epochs", "baseline IF", "band", "recovery"],
            [[f["rank"], f["kind"],
              f"{f['start_epoch']}–{f['end_epoch']}",
              f["baseline_if"], f["band"],
              "never" if f["recovery_epochs"] is None
              else f"{f['recovery_epochs']} ep"]
             for f in faults])
        lines.append("")
    return lines


def _section_metrics(metrics: dict) -> list[str]:
    if not metrics:
        return []
    lines = []
    hist_rows = []
    for name in sorted(metrics):
        family = metrics[name]
        if family["kind"] != "histogram":
            continue
        for s in family["series"]:
            if not s["count"]:
                continue
            finite = sorted((float(k), v) for k, v in s["buckets"].items()
                            if k != "+Inf")
            bounds = [b for b, _ in finite]
            cumulative = [c for _, c in finite]
            qs = [histogram_quantile(bounds, cumulative, s["count"], q)
                  for q in (0.5, 0.95, 0.99)]
            label = name + ("" if not s["labels"] else
                            "{" + ",".join(f"{k}={v}" for k, v in
                                           sorted(s["labels"].items())) + "}")
            hist_rows.append([label, s["count"], s["sum"], *qs])
    if hist_rows:
        lines += ["## Distributions (from metrics histograms)", ""]
        lines += _md_table(["histogram", "count", "sum", "p50", "p95", "p99"],
                           hist_rows)
        lines.append("")
    gauge_rows = []
    for name, label in (("sim.epochs_per_second", "epochs / second"),
                        ("serve.ops_per_second", "served ops / second")):
        family = metrics.get(name)
        if family and family.get("kind") == "gauge":
            for s in family["series"]:
                gauge_rows.append([label, s["value"]])
    if gauge_rows:
        lines += ["## Throughput", "",
                  "_Wall-clock rates sampled at the last epoch boundary "
                  "(`SimConfig(perf_gauges=True)`; always on under "
                  "`repro serve`) — comparable with `BENCH_core.json`._",
                  ""]
        lines += _md_table(["gauge", "value"], gauge_rows)
        lines.append("")
    counters = []
    for name in sorted(metrics):
        family = metrics[name]
        if family["kind"] != "counter":
            continue
        for s in family["series"]:
            if s["value"]:
                label = name + ("" if not s["labels"] else
                                "{" + ",".join(f"{k}={v}" for k, v in
                                               sorted(s["labels"].items())) + "}")
                counters.append([label, s["value"]])
    if counters:
        lines += ["## Counters", ""]
        lines += _md_table(["counter", "value"], counters)
        lines.append("")
    return lines


def render_run_report(meta: dict, *, timeseries: dict | None = None,
                      events: list | None = None,
                      metrics: dict | None = None,
                      span_events: list | None = None,
                      chaos: dict | None = None) -> str:
    """One recorded run as a self-contained Markdown document.

    Every input is optional — sections render only from what is present,
    so partial artifact sets (e.g. a trace without a recorder) still get
    a useful report. ``chaos`` is the robustness report of a ``repro
    chaos`` run (``chaos.json`` in its artifact directory).
    """
    lines: list[str] = []
    lines += _section_header(meta or {})
    lines += _section_warnings(timeseries or {}, metrics or {})
    lines += _section_if(timeseries or {})
    lines += _section_workload(timeseries or {})
    lines += _section_per_mds(timeseries or {})
    lines += _section_chaos(chaos or {})
    lines += _section_migration(events or [])
    lines += _section_economics(events or [], timeseries or {})
    lines += _section_phases(span_events or [],
                             (meta or {}).get("clock", "logical"))
    lines += _section_metrics(metrics or {})
    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines) + "\n"


_HTML_PAGE = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: ui-monospace, Menlo, Consolas, monospace;
        max-width: 72rem; margin: 2rem auto; padding: 0 1rem;
        color: #1a1a2e; background: #fafafa; line-height: 1.45; }}
pre {{ white-space: pre-wrap; margin: 0.3rem 0; }}
h1, h2, h3 {{ margin: 1.1rem 0 0.3rem; }}
nav.toc {{ border: 1px solid #d0d0dc; border-radius: 4px;
           padding: 0.5rem 1rem; margin: 1rem 0; }}
nav.toc a {{ display: block; text-decoration: none; color: #30308a; }}
nav.toc a.lvl3 {{ padding-left: 1.5rem; }}
</style>
</head>
<body>
{body}
</body>
</html>
"""

_HEADING_RE = re.compile(r"^(#{1,6}) +(.*?)\s*$")


def _slugify(text: str) -> str:
    """GitHub-style heading anchor: lowercase, alnum and dashes only."""
    slug = re.sub(r"[^a-z0-9 _-]", "", text.lower())
    return re.sub(r"[ _]+", "-", slug).strip("-") or "section"


def render_html(markdown: str, title: str = "Run report") -> str:
    """The Markdown report as one dependency-free HTML page.

    Headings become real ``<h1>``–``<h6>`` elements with stable GitHub-
    style ``id`` anchors and a table of contents links to every section,
    so a long report (workload profile, economics, chaos...) is
    navigable; everything between headings stays preformatted text,
    fully escaped.
    """
    headings: list[tuple[int, str, str]] = []
    seen: dict[str, int] = {}
    parts: list[str] = []
    chunk: list[str] = []

    def flush() -> None:
        if chunk:
            text = "\n".join(chunk)
            parts.append(f"<pre>{_html.escape(text)}</pre>")
            chunk.clear()

    for line in markdown.splitlines():
        m = _HEADING_RE.match(line)
        if m is None:
            chunk.append(line)
            continue
        flush()
        level, text = len(m.group(1)), m.group(2)
        slug = _slugify(text)
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        if n:
            slug = f"{slug}-{n}"
        headings.append((level, text, slug))
        parts.append(f'<h{level} id="{slug}">{_html.escape(text)}</h{level}>')
    flush()

    toc_entries = [(level, text, slug) for level, text, slug in headings
                   if level >= 2]
    if toc_entries:
        links = "\n".join(
            f'<a class="lvl{level}" href="#{slug}">{_html.escape(text)}</a>'
            for level, text, slug in toc_entries)
        toc = f'<nav class="toc">\n{links}\n</nav>'
        # after the title heading when there is one, else up front
        at = 1 if headings and markdown.lstrip().startswith("#") else 0
        parts.insert(at, toc)

    return _HTML_PAGE.format(title=_html.escape(title),
                             body="\n".join(parts))
