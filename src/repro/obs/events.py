"""Typed balancer-decision trace events and their wire format.

Every judgement call the balancing stack makes in an epoch — the IF it
computed, which ranks became exporters/importers, which subtree each
selector picked, what the migrator planned/committed/aborted — is recorded
as one small frozen dataclass. The set of event types *is* the audit
schema of the reproduction: a trace containing them is enough to replay
"why did epoch k migrate those inodes" without re-running the simulator.

Wire format (one JSON object per line, JSONL):

- the ``"e"`` key carries the event-type tag (:attr:`TraceEvent.etype`);
- export units are either a directory id (int) or a dirfrag encoded as
  ``"frag:<dir_id>:<bits>:<frag_no>"``;
- serialization is canonical — sorted keys, no whitespace — so a trace of
  a fixed-seed run is byte-stable, which the golden-trace regression
  suite relies on.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import ClassVar

from repro.namespace.dirfrag import FragId

__all__ = [
    "TraceEvent",
    "EpochStart",
    "IfComputed",
    "RoleAssigned",
    "SubtreeSelected",
    "MigrationPlanned",
    "MigrationCommitted",
    "MigrationAborted",
    "MdsFailed",
    "MdsRecovered",
    "EVENT_TYPES",
    "declared_event_types",
    "encode_unit",
    "decode_unit",
    "event_to_dict",
    "event_from_dict",
    "event_to_json",
    "event_from_json",
]


def encode_unit(unit: int | FragId) -> int | str:
    """JSON-safe form of an export unit (dir id or dirfrag)."""
    if isinstance(unit, FragId):
        return f"frag:{unit.dir_id}:{unit.bits}:{unit.frag_no}"
    return int(unit)


def decode_unit(raw: int | str) -> int | FragId:
    if isinstance(raw, str):
        tag, dir_id, bits, frag_no = raw.split(":")
        if tag != "frag":
            raise ValueError(f"malformed unit encoding {raw!r}")
        return FragId(int(dir_id), int(bits), int(frag_no))
    return int(raw)


@dataclass(frozen=True)
class TraceEvent:
    """Base class: every event knows its type tag and serializes itself."""

    etype: ClassVar[str] = "event"


@dataclass(frozen=True)
class EpochStart(TraceEvent):
    """The balancing round for ``epoch`` opened at simulated ``tick``."""

    etype: ClassVar[str] = "epoch_start"
    epoch: int
    tick: int


@dataclass(frozen=True)
class IfComputed(TraceEvent):
    """An imbalance factor was computed from per-MDS loads.

    ``source`` distinguishes the simulator's reporting IF (computed every
    epoch for every balancer) from a policy's own trigger IF (e.g. the
    Lunule initiator, which may use the no-urgency ablation variant).
    """

    etype: ClassVar[str] = "if_computed"
    epoch: int
    value: float
    loads: tuple[float, ...]
    source: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "loads", tuple(float(x) for x in self.loads))


@dataclass(frozen=True)
class RoleAssigned(TraceEvent):
    """Algorithm 1 (or a baseline policy) gave ``rank`` a migration role.

    ``amount`` is the planned export demand (exporters) or granted import
    capacity (importers), in load units, after pairing.
    """

    etype: ClassVar[str] = "role_assigned"
    epoch: int
    rank: int
    role: str  # "exporter" | "importer"
    amount: float


@dataclass(frozen=True)
class SubtreeSelected(TraceEvent):
    """The exporter's selector chose one unit to fulfil a decision."""

    etype: ClassVar[str] = "subtree_selected"
    epoch: int
    exporter: int
    importer: int
    unit: int | str
    load: float


@dataclass(frozen=True)
class MigrationPlanned(TraceEvent):
    """An export task entered the migration queue."""

    etype: ClassVar[str] = "migration_planned"
    tick: int
    src: int
    dst: int
    unit: int | str
    inodes: int
    load: float


@dataclass(frozen=True)
class MigrationCommitted(TraceEvent):
    """Two-phase commit finished; authority flipped to ``dst``."""

    etype: ClassVar[str] = "migration_committed"
    tick: int
    src: int
    dst: int
    unit: int | str
    inodes: int


@dataclass(frozen=True)
class MigrationAborted(TraceEvent):
    """An export task was dropped before authority flipped."""

    etype: ClassVar[str] = "migration_aborted"
    tick: int
    src: int
    dst: int
    unit: int | str
    reason: str  # "stale_auth" | "overlap" | "mds_failed"


@dataclass(frozen=True)
class MdsFailed(TraceEvent):
    etype: ClassVar[str] = "mds_failed"
    tick: int
    rank: int


@dataclass(frozen=True)
class MdsRecovered(TraceEvent):
    etype: ClassVar[str] = "mds_recovered"
    tick: int
    rank: int


EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.etype: cls
    for cls in (
        EpochStart, IfComputed, RoleAssigned, SubtreeSelected,
        MigrationPlanned, MigrationCommitted, MigrationAborted,
        MdsFailed, MdsRecovered,
    )
}


def declared_event_types() -> frozenset[str]:
    """Every registered event-type tag — the trace-schema closure hook.

    ``repro lint``'s trace-schema rule statically recovers the same set
    from this module's AST; ``tests/test_lint_schema.py`` cross-checks the
    two so the linter can never drift from the runtime registry.
    """
    return frozenset(EVENT_TYPES)


def event_to_dict(event: TraceEvent) -> dict:
    return {"e": event.etype, **asdict(event)}


def event_from_dict(data: dict) -> TraceEvent:
    data = dict(data)
    try:
        cls = EVENT_TYPES[data.pop("e")]
    except KeyError as exc:
        raise ValueError(f"unknown or missing event type in {data!r}") from exc
    names = {f.name for f in fields(cls)}
    extra = set(data) - names
    if extra:
        raise ValueError(f"unexpected fields {sorted(extra)} for {cls.etype}")
    return cls(**data)


def event_to_json(event: TraceEvent) -> str:
    """Canonical one-line JSON (sorted keys, no whitespace)."""
    return json.dumps(event_to_dict(event), sort_keys=True,
                      separators=(",", ":"))


def event_from_json(line: str) -> TraceEvent:
    return event_from_dict(json.loads(line))
