"""Typed balancer-decision trace events and their wire format.

Every judgement call the balancing stack makes in an epoch — the IF it
computed, which ranks became exporters/importers, which subtree each
selector picked, what the migrator planned/committed/aborted — is recorded
as one small frozen dataclass. The set of event types *is* the audit
schema of the reproduction: a trace containing them is enough to replay
"why did epoch k migrate those inodes" without re-running the simulator.

Wire format (one JSON object per line, JSONL):

- the ``"e"`` key carries the event-type tag (:attr:`TraceEvent.etype`);
- export units are either a directory id (int) or a dirfrag encoded as
  ``"frag:<dir_id>:<bits>:<frag_no>"``;
- serialization is canonical — sorted keys, no whitespace — so a trace of
  a fixed-seed run is byte-stable, which the golden-trace regression
  suite relies on.

Decision provenance: every event on the decision lifecycle
(``if_computed`` → ``role_assigned`` → ``subtree_selected`` →
``migration_planned`` → ``migration_committed``/``migration_aborted``,
plus ``epoch_skipped`` for the "why not" path) carries a run-monotonic
``did`` (its decision id) and a ``parent`` link (the decision it was made
under, ``-1`` for roots). The links make a trace a causal DAG —
:mod:`repro.obs.provenance` reconstructs it, ``repro explain`` walks it.
Ids are minted by a :class:`DecisionIds` allocator the simulator shares
between policy (via the epoch plan) and mechanism (via the trace log), so
ids are monotone in emission order even across the plan/apply seam.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, fields
from typing import ClassVar

from repro.namespace.dirfrag import FragId

__all__ = [
    "TraceEvent",
    "EpochStart",
    "IfComputed",
    "EpochSkipped",
    "RoleAssigned",
    "SubtreeSelected",
    "MigrationPlanned",
    "MigrationCommitted",
    "MigrationAborted",
    "MdsFailed",
    "MdsRecovered",
    "FaultInjected",
    "FaultCleared",
    "ConfigChanged",
    "MigrationOutcome",
    "WorkloadProfiled",
    "AbortReason",
    "SKIP_REASONS",
    "FAULT_KINDS",
    "OUTCOME_VERDICTS",
    "OP_MIX_CLASSES",
    "DecisionIds",
    "NO_DECISION",
    "EVENT_TYPES",
    "declared_event_types",
    "encode_unit",
    "decode_unit",
    "event_to_dict",
    "event_from_dict",
    "event_to_json",
    "event_from_json",
]

#: the ``did``/``parent`` value meaning "no decision id" / "root decision"
NO_DECISION = -1


class DecisionIds:
    """Monotonic decision-id allocator, shared across one run.

    The simulator creates one instance and threads it through the trace
    log, the cluster view and every epoch plan, so policy-side events
    (allocated at planning time) and mechanism-side events (allocated at
    commit/abort time) draw from a single sequence. Allocation is two
    attribute ops — cheap enough for the always-on decision trace.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = int(start)

    def next(self) -> int:
        did = self._next
        self._next += 1
        return did

    @property
    def allocated(self) -> int:
        """Ids handed out so far (also: the next id to be handed out)."""
        return self._next


class AbortReason(str, enum.Enum):
    """The closed set of reasons an export task can be dropped.

    Shared between :meth:`repro.cluster.migration.Migrator` call sites and
    :class:`MigrationAborted` validation, and the label set of the
    ``migration_aborted_total`` counter — a free-form reason string can no
    longer drift between the trace and the metrics.
    """

    STALE_AUTH = "stale_auth"
    OVERLAP = "overlap"
    MDS_FAILED = "mds_failed"


#: why an initiator declined to act this epoch (``EpochSkipped.reason``)
SKIP_REASONS = frozenset({"if_below_threshold", "urgency_low", "no_exporters"})

#: the closed vocabulary of injectable fault kinds (``FaultInjected.kind``):
#: ``fail`` stops a rank outright (standby takeover on clear), ``slow``
#: degrades its capacity by a factor until cleared
FAULT_KINDS = frozenset({"fail", "slow"})

#: the closed verdict vocabulary of the migration cost/benefit ledger
#: (``MigrationOutcome.verdict``; see ``repro.obs.outcomes``): the realized
#: benefit covered the planned heat (``paid_off``), partially covered it
#: (``neutral``), never materialized (``wasted``), or the subtree bounced
#: straight back off its receiver (``ping_pong``)
OUTCOME_VERDICTS = frozenset({"paid_off", "neutral", "wasted", "ping_pong"})

#: per-epoch op-mix classes of the workload characterization stream
#: (``WorkloadProfiled.op_mix``; see ``repro.obs.workload``). Ordered so the
#: class index is a stable time-series column value.
OP_MIX_CLASSES = ("idle", "create_heavy", "scan_heavy", "read_heavy", "mixed")


def encode_unit(unit: int | FragId) -> int | str:
    """JSON-safe form of an export unit (dir id or dirfrag)."""
    if isinstance(unit, FragId):
        return f"frag:{unit.dir_id}:{unit.bits}:{unit.frag_no}"
    return int(unit)


def decode_unit(raw: int | str) -> int | FragId:
    if isinstance(raw, str):
        tag, dir_id, bits, frag_no = raw.split(":")
        if tag != "frag":
            raise ValueError(f"malformed unit encoding {raw!r}")
        return FragId(int(dir_id), int(bits), int(frag_no))
    return int(raw)


@dataclass(frozen=True)
class TraceEvent:
    """Base class: every event knows its type tag and serializes itself.

    ``omit_at_default`` names fields dropped from the wire format while
    they hold their dataclass default — the mechanism that lets an event
    type grow an optional provenance annotation (e.g.
    :attr:`MigrationAborted.cause`) without changing a single byte of
    traces that never use it. ``event_from_dict`` restores the default on
    read, so the round trip stays lossless.
    """

    etype: ClassVar[str] = "event"
    omit_at_default: ClassVar[frozenset[str]] = frozenset()


@dataclass(frozen=True)
class EpochStart(TraceEvent):
    """The balancing round for ``epoch`` opened at simulated ``tick``."""

    etype: ClassVar[str] = "epoch_start"
    epoch: int
    tick: int


@dataclass(frozen=True)
class IfComputed(TraceEvent):
    """An imbalance factor was computed from per-MDS loads.

    ``source`` distinguishes the simulator's reporting IF (computed every
    epoch for every balancer) from a policy's own trigger IF (e.g. the
    Lunule initiator, which may use the no-urgency ablation variant).
    """

    etype: ClassVar[str] = "if_computed"
    epoch: int
    value: float
    loads: tuple[float, ...]
    source: str
    did: int = NO_DECISION
    parent: int = NO_DECISION

    def __post_init__(self) -> None:
        object.__setattr__(self, "loads", tuple(float(x) for x in self.loads))


@dataclass(frozen=True)
class EpochSkipped(TraceEvent):
    """The initiator declined to act this epoch — the "why not" record.

    ``reason`` is one of :data:`SKIP_REASONS`: the IF never cleared the
    trigger (``if_below_threshold``), it cleared only because the urgency
    term would have been ignored (``urgency_low`` — benign imbalance the
    paper's Eq. 2-3 deliberately tolerate), or the trigger fired but
    Algorithm 1 produced an empty export matrix (``no_exporters``).
    ``value`` and ``threshold`` are the IF and gate that decided.
    """

    etype: ClassVar[str] = "epoch_skipped"
    epoch: int
    reason: str
    value: float
    threshold: float
    did: int = NO_DECISION
    parent: int = NO_DECISION

    def __post_init__(self) -> None:
        if self.reason not in SKIP_REASONS:
            raise ValueError(
                f"unknown skip reason {self.reason!r}; expected one of "
                f"{sorted(SKIP_REASONS)}")


@dataclass(frozen=True)
class RoleAssigned(TraceEvent):
    """Algorithm 1 (or a baseline policy) gave ``rank`` a migration role.

    ``amount`` is the planned export demand (exporters) or granted import
    capacity (importers), in load units, after pairing.
    """

    etype: ClassVar[str] = "role_assigned"
    epoch: int
    rank: int
    role: str  # "exporter" | "importer"
    amount: float
    did: int = NO_DECISION
    parent: int = NO_DECISION  # the IfComputed that triggered the round


@dataclass(frozen=True)
class SubtreeSelected(TraceEvent):
    """The exporter's selector chose one unit to fulfil a decision."""

    etype: ClassVar[str] = "subtree_selected"
    epoch: int
    exporter: int
    importer: int
    unit: int | str
    load: float
    did: int = NO_DECISION
    parent: int = NO_DECISION  # the exporter's RoleAssigned


@dataclass(frozen=True)
class MigrationPlanned(TraceEvent):
    """An export task entered the migration queue."""

    etype: ClassVar[str] = "migration_planned"
    tick: int
    src: int
    dst: int
    unit: int | str
    inodes: int
    load: float
    did: int = NO_DECISION
    parent: int = NO_DECISION  # the SubtreeSelected (or RoleAssigned) behind it


@dataclass(frozen=True)
class MigrationCommitted(TraceEvent):
    """Two-phase commit finished; authority flipped to ``dst``."""

    etype: ClassVar[str] = "migration_committed"
    tick: int
    src: int
    dst: int
    unit: int | str
    inodes: int
    did: int = NO_DECISION
    parent: int = NO_DECISION  # the MigrationPlanned that started the task


@dataclass(frozen=True)
class MigrationAborted(TraceEvent):
    """An export task was dropped before authority flipped."""

    etype: ClassVar[str] = "migration_aborted"
    #: ``cause`` is the external decision that forced the abort — for
    #: ``mds_failed`` aborts under chaos injection, the ``did`` of the
    #: FaultInjected that killed the rank. It is provenance *across* the
    #: policy chain (``parent`` still points at the MigrationPlanned), and
    #: is omitted from the wire format when absent so fault-free traces
    #: stay byte-identical.
    omit_at_default: ClassVar[frozenset[str]] = frozenset({"cause"})
    tick: int
    src: int
    dst: int
    unit: int | str
    reason: str  # an AbortReason value
    did: int = NO_DECISION
    parent: int = NO_DECISION  # the MigrationPlanned that started the task
    cause: int = NO_DECISION  # the FaultInjected (or other root) to blame

    def __post_init__(self) -> None:
        # Normalize enum members to their value and reject free-form
        # strings: the reason vocabulary is closed (shared with the
        # migration_aborted_total counter's reason label).
        object.__setattr__(self, "reason", AbortReason(self.reason).value)


@dataclass(frozen=True)
class MdsFailed(TraceEvent):
    etype: ClassVar[str] = "mds_failed"
    tick: int
    rank: int


@dataclass(frozen=True)
class MdsRecovered(TraceEvent):
    etype: ClassVar[str] = "mds_recovered"
    tick: int
    rank: int


@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """The chaos controller applied a scheduled fault to ``rank``.

    ``kind`` is one of :data:`FAULT_KINDS`; ``factor`` is the capacity
    multiplier for ``slow`` faults (1.0 for ``fail``, where it carries no
    information). The event's ``did`` is the provenance root of the fault:
    the matching :class:`FaultCleared` parents to it, and any
    ``mds_failed`` abort caused by the fault records it as ``cause``.
    """

    etype: ClassVar[str] = "fault_injected"
    epoch: int
    tick: int
    kind: str
    rank: int
    factor: float = 1.0
    did: int = NO_DECISION
    parent: int = NO_DECISION

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}")


@dataclass(frozen=True)
class FaultCleared(TraceEvent):
    """A previously injected fault on ``rank`` was reverted.

    ``parent`` is the ``did`` of the :class:`FaultInjected` being cleared,
    closing the fault window in the provenance DAG.
    """

    etype: ClassVar[str] = "fault_cleared"
    epoch: int
    tick: int
    kind: str
    rank: int
    did: int = NO_DECISION
    parent: int = NO_DECISION

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}")


@dataclass(frozen=True)
class ConfigChanged(TraceEvent):
    """A live-reconfiguration knob changed at an epoch boundary.

    Minted by the serve control plane when a ``POST /config`` mutation is
    applied between epochs: ``key`` names the knob (an initiator-config
    field such as ``if_threshold`` or ``urgency_smoothness``, the
    balancing interval ``epoch_len``, or a ``balancer`` swap), and
    ``old``/``value`` carry its before/after rendered as strings (the
    knob vocabulary is open-ended, so the wire type is not). The event's
    ``did`` is a provenance root: migrations the following epochs plan
    under the new setting sit after it in the trace, so ``repro explain``
    shows exactly which knob change preceded which decision.
    """

    etype: ClassVar[str] = "config_changed"
    epoch: int
    tick: int
    key: str
    value: str
    old: str
    did: int = NO_DECISION
    parent: int = NO_DECISION


@dataclass(frozen=True)
class MigrationOutcome(TraceEvent):
    """The post-hoc cost/benefit verdict for one committed migration.

    Derived — never emitted during a run. ``repro.obs.outcomes`` joins the
    provenance DAG with per-epoch load history after the fact and mints
    one of these per ``migration_committed``; the golden decision traces
    therefore never contain them, and annotated traces that do stay
    replayable because the type is registered like any other.

    ``parent`` is the ``did`` of the judged ``migration_committed``, so
    the provenance DAG chains commit → outcome. ``waste`` (this round's
    aborted-sibling inode share) and ``partial`` (the ring evicted the
    planned parent, so cost/benefit inputs were incomplete) are omitted
    from the wire format at their defaults.
    """

    etype: ClassVar[str] = "migration_outcome"
    omit_at_default: ClassVar[frozenset[str]] = frozenset({"waste", "partial"})
    epoch: int  # the commit epoch the benefit window opens after
    src: int
    dst: int
    unit: int | str
    inodes: int
    planned_load: float
    realized: float
    expected: float
    verdict: str
    observed_epochs: int
    did: int = NO_DECISION
    parent: int = NO_DECISION  # the MigrationCommitted being judged
    waste: int = 0
    partial: bool = False

    def __post_init__(self) -> None:
        if self.verdict not in OUTCOME_VERDICTS:
            raise ValueError(
                f"unknown outcome verdict {self.verdict!r}; expected one of "
                f"{sorted(OUTCOME_VERDICTS)}")


@dataclass(frozen=True)
class WorkloadProfiled(TraceEvent):
    """One epoch's workload characterization snapshot.

    Mirrors the ``wl.*`` time-series columns the flight recorder samples
    under ``SimConfig(workload_profile=True)`` (see
    ``repro.obs.workload``): skew of the per-MDS load and per-dirfrag heat
    distributions (Gini + normalized entropy), the heat share of the top-1
    and top-k hottest dirfrags, the client churn rate and the epoch's
    op-mix class. Derived from recorded columns or computed live — never
    part of a golden decision trace.
    """

    etype: ClassVar[str] = "workload_profiled"
    epoch: int
    load_gini: float
    load_entropy: float
    heat_gini: float
    heat_entropy: float
    top1_share: float
    topk_share: float
    churn: float
    op_mix: str
    did: int = NO_DECISION
    parent: int = NO_DECISION

    def __post_init__(self) -> None:
        if self.op_mix not in OP_MIX_CLASSES:
            raise ValueError(
                f"unknown op-mix class {self.op_mix!r}; expected one of "
                f"{list(OP_MIX_CLASSES)}")


EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.etype: cls
    for cls in (
        EpochStart, IfComputed, EpochSkipped, RoleAssigned, SubtreeSelected,
        MigrationPlanned, MigrationCommitted, MigrationAborted,
        MdsFailed, MdsRecovered, FaultInjected, FaultCleared, ConfigChanged,
        MigrationOutcome, WorkloadProfiled,
    )
}


def declared_event_types() -> frozenset[str]:
    """Every registered event-type tag — the trace-schema closure hook.

    ``repro lint``'s trace-schema rule statically recovers the same set
    from this module's AST; ``tests/test_lint_schema.py`` cross-checks the
    two so the linter can never drift from the runtime registry.
    """
    return frozenset(EVENT_TYPES)


def event_to_dict(event: TraceEvent) -> dict:
    d = {"e": event.etype, **asdict(event)}
    omit = type(event).omit_at_default
    if omit:
        for f in fields(event):
            if f.name in omit and d.get(f.name) == f.default:
                del d[f.name]
    return d


def event_from_dict(data: dict) -> TraceEvent:
    data = dict(data)
    try:
        cls = EVENT_TYPES[data.pop("e")]
    except KeyError as exc:
        raise ValueError(f"unknown or missing event type in {data!r}") from exc
    names = {f.name for f in fields(cls)}
    extra = set(data) - names
    if extra:
        raise ValueError(f"unexpected fields {sorted(extra)} for {cls.etype}")
    return cls(**data)


def event_to_json(event: TraceEvent) -> str:
    """Canonical one-line JSON (sorted keys, no whitespace)."""
    return json.dumps(event_to_dict(event), sort_keys=True,
                      separators=(",", ":"))


def event_from_json(line: str) -> TraceEvent:
    return event_from_dict(json.loads(line))
