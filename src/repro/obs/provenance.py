"""The decision-provenance DAG: why the balancer did (or didn't) migrate.

Every decision event carries a run-monotonic ``did`` and a ``parent`` link
(see :mod:`repro.obs.events`), so a JSONL trace *is* a causal DAG:

    if_computed ─→ role_assigned ─→ subtree_selected ─→ migration_planned
                                                    └─→ migration_committed
    if_computed ─→ epoch_skipped                        / migration_aborted

:class:`ProvenanceGraph` reconstructs the DAG from a trace and answers
chain queries; :func:`explain` turns it into the per-epoch report behind
``repro explain`` — for each migration the complete causal chain from IF
inputs to commit/abort, and for each quiet epoch the recorded reason.

Ring-buffer traces may have evicted a decision's ancestors. Chains are
then *partial*: the walk stops at the first missing ancestor and the
chain is flagged ``truncated`` instead of failing — always-on production
tracing keeps only recent history, and recent history must stay
explainable.
"""

from __future__ import annotations

import bisect
import os
from collections.abc import Iterable
from dataclasses import dataclass

from repro.obs.events import NO_DECISION, TraceEvent, event_to_dict
from repro.obs.outcomes import build_ledger
from repro.obs.tracelog import read_jsonl

__all__ = ["Chain", "ProvenanceGraph", "explain", "format_event",
           "render_explain"]


@dataclass(frozen=True)
class Chain:
    """One decision's ancestry, root-first, ending at the decision itself.

    ``truncated`` is True when an ancestor's id is referenced by a parent
    link but absent from the trace (ring-buffer eviction, or a sliced
    trace) — the chain is still usable, it just starts mid-lineage.
    """

    target: int
    events: tuple[TraceEvent, ...]
    truncated: bool

    def dids(self) -> list[int]:
        return [getattr(e, "did", NO_DECISION) for e in self.events]


class ProvenanceGraph:
    """Causal DAG over one trace: nodes are events, edges are parent links.

    Events without a ``did`` (epoch boundaries, failures, legacy traces)
    are kept in :attr:`events` for epoch attribution but are not nodes.
    """

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self.events: list[TraceEvent] = list(events)
        #: did -> event (first occurrence wins; ids are unique per run)
        self.nodes: dict[int, TraceEvent] = {}
        #: parent did -> child dids, in trace order
        self.children: dict[int, list[int]] = {}
        for e in self.events:
            did = getattr(e, "did", NO_DECISION)
            if did == NO_DECISION or did in self.nodes:
                continue
            self.nodes[did] = e
            parent = getattr(e, "parent", NO_DECISION)
            if parent != NO_DECISION:
                self.children.setdefault(parent, []).append(did)
            # ``cause`` is cross-chain provenance (e.g. a fault_injected
            # forcing a migration_aborted): a second in-edge, so the
            # fault's descendants include everything it killed
            cause = getattr(e, "cause", NO_DECISION)
            if cause != NO_DECISION:
                self.children.setdefault(cause, []).append(did)
        #: epoch_start boundaries for tick->epoch attribution (same rule
        #: as :func:`repro.obs.tracelog.filter_events`)
        self._boundaries: list[tuple[int, int]] = [
            (e.tick, e.epoch) for e in self.events  # type: ignore[attr-defined]
            if e.etype == "epoch_start"
        ]

    @classmethod
    def from_jsonl(cls, path: str | os.PathLike[str]) -> ProvenanceGraph:
        return cls(read_jsonl(path))

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, did: int) -> bool:
        return did in self.nodes

    # ------------------------------------------------------------------ chains
    def chain(self, did: int) -> Chain:
        """Root-first ancestor chain of ``did`` (inclusive).

        Raises ``KeyError`` for an id the trace never recorded; a *known*
        id whose ancestors were evicted yields a truncated chain instead.
        """
        if did not in self.nodes:
            raise KeyError(f"decision {did} not in trace")
        lineage: list[TraceEvent] = []
        seen: set[int] = set()
        cur = did
        truncated = False
        while cur != NO_DECISION and cur not in seen:
            seen.add(cur)
            node = self.nodes.get(cur)
            if node is None:
                # referenced by a parent link but evicted from the trace
                truncated = True
                break
            lineage.append(node)
            cur = getattr(node, "parent", NO_DECISION)
        lineage.reverse()
        return Chain(target=did, events=tuple(lineage), truncated=truncated)

    def descendants(self, did: int) -> list[int]:
        """Every decision downstream of ``did``, in ascending id order."""
        out: list[int] = []
        frontier = list(self.children.get(did, ()))
        seen: set[int] = set()
        while frontier:
            cur = frontier.pop()
            if cur in seen:
                continue
            seen.add(cur)
            out.append(cur)
            frontier.extend(self.children.get(cur, ()))
        return sorted(out)

    def chain_ids(self, did: int) -> set[int]:
        """Ancestors ∪ {did} ∪ descendants — the full causal neighbourhood.

        This is what ``repro trace --decision ID`` feeds to
        :func:`repro.obs.tracelog.filter_events`.
        """
        ids = {d for d in self.chain(did).dids() if d != NO_DECISION}
        ids.update(self.descendants(did))
        return ids

    # ------------------------------------------------------------ attribution
    def epoch_of(self, did: int) -> int | None:
        """Best-effort epoch of a decision.

        Prefers the event's own ``epoch`` field, then the nearest ancestor
        that has one, then ``epoch_start`` tick boundaries for tick-stamped
        events; ``None`` when nothing attributes it.
        """
        for e in reversed(self.chain(did).events):
            epoch = getattr(e, "epoch", None)
            if epoch is not None:
                return int(epoch)
        node = self.nodes[did]
        tick = getattr(node, "tick", None)
        if tick is None or not self._boundaries:
            return None
        ticks = [t for t, _ in self._boundaries]
        i = bisect.bisect_left(ticks, int(tick))
        if i < len(ticks):
            return self._boundaries[i][1]
        return self._boundaries[-1][1] + 1

    def outcome(self, planned_did: int) -> TraceEvent | None:
        """The commit/abort event of a ``migration_planned`` decision."""
        for child in self.children.get(planned_did, ()):
            node = self.nodes[child]
            if node.etype in ("migration_committed", "migration_aborted"):
                return node
        return None


def _unit_matches(unit: object, wanted: str) -> bool:
    return str(unit) == wanted


def explain(events: Iterable[TraceEvent], *, epoch: int | None = None,
            rank: int | None = None, subtree: str | None = None,
            outcomes: bool = False) -> dict:
    """The "why" report behind ``repro explain``.

    Returns a JSON-ready dict: one entry per epoch with the IF events
    computed there, the recorded skip reason (when the initiator declined
    to act), and every migration decision attributed to the epoch with its
    full root-first causal chain and final outcome. ``epoch`` narrows to
    one epoch; ``rank`` keeps only migrations touching that rank;
    ``subtree`` (the unit as printed in the trace, e.g. ``"7"`` or
    ``"frag:3:1:0"``) keeps only migrations of that unit.

    ``outcomes=True`` additionally runs the cost/benefit ledger
    (:mod:`repro.obs.outcomes`) over the trace and annotates every
    committed migration with its verdict, realized/expected benefit ratio
    and aborted-sibling waste share; the summary gains a per-verdict
    tally. Post-hoc only — the report reads the trace, never the run.
    """
    graph = ProvenanceGraph(events)
    ledger = build_ledger(graph.events) if outcomes else None
    judged = ledger.by_commit() if ledger is not None else {}
    epochs: dict[int, dict] = {}

    def bucket(k: int) -> dict:
        return epochs.setdefault(k, {
            "epoch": k, "if": [], "skipped": [], "config": [],
            "migrations": [],
        })

    for did in sorted(graph.nodes):
        node = graph.nodes[did]
        k = graph.epoch_of(did)
        if k is None or (epoch is not None and k != epoch):
            continue
        if node.etype == "if_computed":
            bucket(k)["if"].append(event_to_dict(node))
        elif node.etype == "epoch_skipped":
            bucket(k)["skipped"].append(event_to_dict(node))
        elif node.etype == "config_changed":
            # a live-reconfiguration knob change (repro serve): shown in
            # its epoch so the decisions that follow read in context
            bucket(k)["config"].append(event_to_dict(node))
        elif node.etype == "migration_planned":
            if rank is not None and rank not in (node.src, node.dst):  # type: ignore[attr-defined]
                continue
            if subtree is not None and not _unit_matches(
                    node.unit, subtree):  # type: ignore[attr-defined]
                continue
            chain = graph.chain(did)
            end = graph.outcome(did)
            # A forced abort (fault injection) carries a ``cause`` link to
            # the external decision that killed the task; splice the
            # cause's own chain in before the abort so the rendered chain
            # terminates the story: ...planned -> fault_injected -> aborted.
            cause_events: list[TraceEvent] = []
            cause_did = getattr(end, "cause", NO_DECISION)
            if cause_did != NO_DECISION and cause_did in graph:
                cause_events = list(graph.chain(cause_did).events)
            full = (list(chain.events) + cause_events
                    + ([end] if end is not None else []))
            entry = {
                "did": did,
                "src": node.src,  # type: ignore[attr-defined]
                "dst": node.dst,  # type: ignore[attr-defined]
                "unit": node.unit,  # type: ignore[attr-defined]
                "outcome": end.etype.removeprefix("migration_")
                if end is not None else "pending",
                "reason": getattr(end, "reason", None),
                "cause": (event_to_dict(cause_events[-1])
                          if cause_events else None),
                "truncated": chain.truncated,
                "chain": [event_to_dict(e) for e in full],
            }
            judgement = (judged.get(getattr(end, "did", NO_DECISION))
                         if end is not None else None)
            if judgement is not None:
                entry["verdict"] = judgement.verdict
                entry["ratio"] = judgement.ratio
                entry["realized"] = judgement.realized
                entry["expected"] = judgement.expected
                entry["waste"] = judgement.waste
            bucket(k)["migrations"].append(entry)

    ordered = [epochs[k] for k in sorted(epochs)]
    n_mig = sum(len(b["migrations"]) for b in ordered)
    report = {
        "epochs": ordered,
        "summary": {
            "epochs": len(ordered),
            "migrations": n_mig,
            "committed": sum(1 for b in ordered for m in b["migrations"]
                             if m["outcome"] == "committed"),
            "aborted": sum(1 for b in ordered for m in b["migrations"]
                           if m["outcome"] == "aborted"),
            "skipped_epochs": sum(1 for b in ordered if b["skipped"]),
            "truncated_chains": sum(1 for b in ordered for m in b["migrations"]
                                    if m["truncated"]),
        },
    }
    if ledger is not None:
        report["summary"]["verdicts"] = ledger.verdict_counts()
        report["summary"]["economics"] = ledger.totals()
    return report


def format_event(d: dict) -> str:
    """One-line human rendering of an event dict (shared with ``repro diff``)."""
    e = d["e"]
    if e == "if_computed":
        return (f"if_computed[{d['did']}] {d['source']}: value={d['value']:.4f} "
                f"loads={d['loads']}")
    if e == "epoch_skipped":
        return (f"epoch_skipped[{d['did']}] reason={d['reason']} "
                f"value={d['value']:.4f} threshold={d['threshold']}")
    if e == "role_assigned":
        return (f"role_assigned[{d['did']}] rank {d['rank']} -> {d['role']} "
                f"amount={d['amount']:.2f}")
    if e == "subtree_selected":
        return (f"subtree_selected[{d['did']}] unit {d['unit']} "
                f"({d['exporter']} -> {d['importer']}) load={d['load']:.2f}")
    if e == "migration_planned":
        return (f"migration_planned[{d['did']}] unit {d['unit']} "
                f"{d['src']} -> {d['dst']} inodes={d['inodes']} tick={d['tick']}")
    if e == "migration_committed":
        return (f"migration_committed[{d['did']}] unit {d['unit']} "
                f"{d['src']} -> {d['dst']} inodes={d['inodes']} tick={d['tick']}")
    if e == "migration_aborted":
        caused = (f" cause={d['cause']}"
                  if d.get("cause", NO_DECISION) != NO_DECISION else "")
        return (f"migration_aborted[{d['did']}] unit {d['unit']} "
                f"{d['src']} -> {d['dst']} reason={d['reason']} "
                f"tick={d['tick']}{caused}")
    if e == "fault_injected":
        factor = f" factor={d['factor']}" if d["kind"] == "slow" else ""
        return (f"fault_injected[{d['did']}] kind={d['kind']} "
                f"rank {d['rank']} epoch={d['epoch']}{factor}")
    if e == "fault_cleared":
        return (f"fault_cleared[{d['did']}] kind={d['kind']} "
                f"rank {d['rank']} epoch={d['epoch']}")
    if e == "config_changed":
        return (f"config_changed[{d['did']}] {d['key']}: "
                f"{d['old']} -> {d['value']} epoch={d['epoch']}")
    if e == "migration_outcome":
        waste = f" waste={d['waste']}" if d.get("waste") else ""
        partial = " (partial)" if d.get("partial") else ""
        return (f"migration_outcome[{d['did']}] unit {d['unit']} "
                f"{d['src']} -> {d['dst']} verdict={d['verdict']} "
                f"realized={d['realized']:.2f}/{d['expected']:.2f} "
                f"over {d['observed_epochs']} epochs{waste}{partial}")
    if e == "workload_profiled":
        return (f"workload_profiled[{d['did']}] epoch={d['epoch']} "
                f"op_mix={d['op_mix']} heat_gini={d['heat_gini']:.3f} "
                f"top1={d['top1_share']:.2f} churn={d['churn']:.2f}")
    return f"{e}[{d.get('did', '?')}]"


def render_explain(report: dict) -> str:
    """Human-readable rendering of an :func:`explain` report."""
    lines: list[str] = []
    for b in report["epochs"]:
        lines.append(f"epoch {b['epoch']}")
        for d in b["if"]:
            lines.append(f"  {format_event(d)}")
        for d in b["skipped"]:
            lines.append(f"  no migration: {format_event(d)}")
        for d in b["config"]:
            lines.append(f"  {format_event(d)}")
        for m in b["migrations"]:
            flag = " (chain truncated by ring eviction)" if m["truncated"] else ""
            verdict = (f" verdict={m['verdict']} (benefit {m['ratio']:.0%}"
                       + (f", waste {m['waste']} inodes" if m.get("waste") else "")
                       + ")") if "verdict" in m else ""
            lines.append(
                f"  migration {m['did']}: unit {m['unit']} "
                f"{m['src']} -> {m['dst']} [{m['outcome']}]{verdict}{flag}")
            for d in m["chain"]:
                lines.append(f"    {format_event(d)}")
        if not (b["if"] or b["skipped"] or b["config"] or b["migrations"]):
            lines.append("  no decisions recorded")
    s = report["summary"]
    lines.append(
        f"summary: {s['epochs']} epochs, {s['migrations']} migrations "
        f"({s['committed']} committed, {s['aborted']} aborted), "
        f"{s['skipped_epochs']} skipped epochs")
    if "verdicts" in s:
        counts = s["verdicts"]
        tally = "  ".join(f"{v}={counts.get(v, 0)}"
                          for v in ("paid_off", "neutral", "wasted", "ping_pong"))
        eco = s.get("economics", {})
        lines.append(
            f"verdicts: {tally}  |  benefit efficiency "
            f"{eco.get('efficiency', 0.0):.0%}, "
            f"{int(eco.get('aborted_inodes', 0))} inodes aborted")
    return "\n".join(lines)
