"""The migration cost/benefit ledger: did each migration pay for itself?

Lunule claims to be *judicious* — it migrates only when migration is worth
the disruption — and this module is the audit. It joins the decision
trace's provenance DAG with the per-epoch load history (the simulator's
own ``if_computed`` events, or recorded ``load.<rank>`` time-series
columns) and charges every ``migration_committed`` a **cost** (inodes
moved, plus its share of the round's aborted-sibling waste) against a
**realized benefit** (load the receiver actually picked up over the next
K epochs, relative to its pre-decision baseline, capped at what the plan
promised). Each entry gets one verdict from ``OUTCOME_VERDICTS``:

- ``paid_off`` — realized benefit covered ≥ 50% of the planned heat;
- ``neutral`` — partial benefit (≥ 10%), or the ledger could not observe
  enough epochs / inputs to judge fairly;
- ``wasted`` — the migrated subtree went cold on arrival (< 10%);
- ``ping_pong`` — the same unit was re-planned **off the receiver**
  within W epochs, the classic thrash Lunule's §2.3 warns about. Detected
  across the whole run and takes precedence over the ratio verdicts.

Everything is **post-hoc**: ledgers are built from a finished (or
in-flight, via the serve plane's snapshots) trace and never feed back
into decisions, so golden traces stay byte-identical with the ledger
enabled. :func:`aborted_waste` is the one shared join — the chaos
robustness score reuses it instead of keeping its own copy.
"""

from __future__ import annotations

import bisect
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.obs.events import NO_DECISION, MigrationOutcome, TraceEvent
from repro.obs.tracelog import TraceSink

__all__ = [
    "OutcomeConfig",
    "OutcomeEntry",
    "OutcomeLedger",
    "aborted_waste",
    "build_ledger",
    "emit_outcomes",
]


@dataclass(frozen=True)
class OutcomeConfig:
    """Ledger knobs: the K/W windows and the verdict ratio cutoffs."""

    #: K — epochs after the commit over which benefit is accumulated
    benefit_epochs: int = 5
    #: W — a re-export of the unit off its receiver within this many
    #: epochs of the commit is a ping-pong
    pingpong_epochs: int = 10
    #: realized/expected at or above this is ``paid_off``
    paid_off_ratio: float = 0.5
    #: ... at or above this (but below paid_off) is ``neutral``
    neutral_ratio: float = 0.1

    def __post_init__(self) -> None:
        if self.benefit_epochs < 1 or self.pingpong_epochs < 1:
            raise ValueError("outcome windows must be >= 1 epoch")
        if not 0.0 <= self.neutral_ratio <= self.paid_off_ratio:
            raise ValueError("need 0 <= neutral_ratio <= paid_off_ratio")


@dataclass(frozen=True)
class OutcomeEntry:
    """One committed migration's audited cost/benefit record."""

    did: int            #: the ``migration_committed`` decision id
    plan_did: int       #: its ``migration_planned`` parent (may be evicted)
    epoch: int          #: commit epoch (tick-attributed)
    plan_epoch: int     #: planning epoch — the round waste is shared within
    src: int
    dst: int
    unit: int | str
    inodes: int         #: direct cost: inodes physically moved
    waste: int          #: shared cost: this entry's aborted-sibling inodes
    planned_load: float  #: heat the plan promised the receiver
    baseline: float     #: receiver load baseline before the decision
    realized: float     #: benefit actually observed over the window
    expected: float     #: planned_load x epochs observed
    observed_epochs: int
    verdict: str
    partial: bool       #: plan evicted from a ring trace — inputs incomplete

    @property
    def ratio(self) -> float:
        """Realized over expected benefit (0 when nothing was observable)."""
        return self.realized / self.expected if self.expected > 0.0 else 0.0

    def to_dict(self) -> dict:
        return {
            "did": self.did,
            "plan_did": self.plan_did,
            "epoch": self.epoch,
            "plan_epoch": self.plan_epoch,
            "src": self.src,
            "dst": self.dst,
            "unit": self.unit,
            "inodes": self.inodes,
            "waste": self.waste,
            "planned_load": self.planned_load,
            "baseline": self.baseline,
            "realized": self.realized,
            "expected": self.expected,
            "ratio": self.ratio,
            "observed_epochs": self.observed_epochs,
            "verdict": self.verdict,
            "partial": self.partial,
        }


@dataclass(frozen=True)
class OutcomeLedger:
    """Every committed migration of one run, judged."""

    entries: tuple[OutcomeEntry, ...]
    config: OutcomeConfig = field(default_factory=OutcomeConfig)
    #: aborted tasks/inodes the run wasted regardless of attribution
    aborted_tasks: int = 0
    aborted_inodes: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    def by_commit(self) -> dict[int, OutcomeEntry]:
        """Entry per judged ``migration_committed`` decision id."""
        return {e.did: e for e in self.entries}

    def verdict_counts(self) -> dict[str, int]:
        """Entries per verdict, sorted by verdict name."""
        out: dict[str, int] = {}
        for e in self.entries:
            out[e.verdict] = out.get(e.verdict, 0) + 1
        return dict(sorted(out.items()))

    def totals(self) -> dict[str, float]:
        """Run-level economics: total cost, benefit, and efficiency."""
        moved = sum(e.inodes for e in self.entries)
        realized = sum(e.realized for e in self.entries)
        expected = sum(e.expected for e in self.entries)
        return {
            "migrations": float(len(self.entries)),
            "moved_inodes": float(moved),
            "aborted_inodes": float(self.aborted_inodes),
            "aborted_tasks": float(self.aborted_tasks),
            "realized": realized,
            "expected": expected,
            "efficiency": realized / expected if expected > 0.0 else 0.0,
        }

    def to_dict(self) -> dict:
        """JSON-ready ledger document (``schema`` 1 — the obs-smoke contract)."""
        return {
            "schema": 1,
            "config": {
                "benefit_epochs": self.config.benefit_epochs,
                "pingpong_epochs": self.config.pingpong_epochs,
                "paid_off_ratio": self.config.paid_off_ratio,
                "neutral_ratio": self.config.neutral_ratio,
            },
            "entries": [e.to_dict() for e in self.entries],
            "verdicts": self.verdict_counts(),
            "totals": self.totals(),
        }


# ----------------------------------------------------------------- building
def _epoch_attributor(events: Sequence[TraceEvent]) -> Callable[[int], int]:
    """Tick → epoch, by the same boundary rule as ``filter_events``."""
    boundaries = [(e.tick, e.epoch) for e in events  # type: ignore[attr-defined]
                  if e.etype == "epoch_start"]
    ticks = [t for t, _ in boundaries]

    def epoch_of_tick(tick: int) -> int:
        if not ticks:
            return 0
        i = bisect.bisect_left(ticks, tick)
        return boundaries[i][1] if i < len(ticks) else boundaries[-1][1] + 1

    return epoch_of_tick


def _load_history(events: Sequence[TraceEvent],
                  timeseries: Mapping[str, Sequence[float | int | None]] | None,
                  ) -> dict[int, list[float]]:
    """Per-epoch per-rank load vectors, keyed by epoch.

    Preferred source: recorded ``load.<rank>`` time-series columns (exact
    end-of-epoch values). Fallback: the simulator's own ``if_computed``
    events, which carry the same per-rank load tuple — so a bare decision
    trace is self-sufficient.
    """
    history: dict[int, list[float]] = {}
    if timeseries is not None:
        epochs = timeseries.get("epoch")
        ranks = sorted(
            (name for name in timeseries if name.startswith("load.")),
            key=lambda name: int(name.split(".", 1)[1]))
        if epochs is not None and ranks:
            cols = [timeseries[name] for name in ranks]
            for i, epoch_cell in enumerate(epochs):
                if epoch_cell is None:
                    continue
                loads = [float(c[i]) if i < len(c) and c[i] is not None else 0.0
                         for c in cols]
                history[int(epoch_cell)] = loads
            return history
    for e in events:
        if e.etype == "if_computed" and getattr(e, "source", "") == "simulator":
            history[int(e.epoch)] = [  # type: ignore[attr-defined]
                float(x) for x in e.loads]  # type: ignore[attr-defined]
    return history


def aborted_waste(events: Iterable[TraceEvent],
                  reason: str | None = None) -> tuple[int, int]:
    """Aborted migration (tasks, planned inodes), optionally by reason.

    The planned-inode join the ledger *and* the chaos robustness score
    share: each ``migration_aborted`` is charged the ``inodes`` its
    ``migration_planned`` parent promised to move (0 when the plan was
    evicted from a ring trace). ``reason=None`` counts every abort;
    ``reason="mds_failed"`` is the chaos score's fault-inflicted slice.
    """
    events = list(events)
    planned_inodes = {e.did: e.inodes for e in events  # type: ignore[attr-defined]
                      if e.etype == "migration_planned"}
    tasks = 0
    inodes = 0
    for e in events:
        if e.etype != "migration_aborted":
            continue
        if reason is not None and getattr(e, "reason", None) != reason:
            continue
        tasks += 1
        inodes += planned_inodes.get(getattr(e, "parent", NO_DECISION), 0)
    return tasks, inodes


def build_ledger(
    events: Iterable[TraceEvent],
    *,
    timeseries: Mapping[str, Sequence[float | int | None]] | None = None,
    config: OutcomeConfig | None = None,
) -> OutcomeLedger:
    """Judge every ``migration_committed`` in a trace.

    Pure post-hoc analysis: reads the trace (and, when given, a
    time-series snapshot's ``epoch``/``load.<rank>`` columns for exact
    load history), writes nothing back. Commits whose plan was ring-
    evicted are judged ``neutral`` with ``partial=True`` rather than
    dropped — always-on traces must stay auditable.
    """
    cfg = config if config is not None else OutcomeConfig()
    events = list(events)
    epoch_of_tick = _epoch_attributor(events)
    history = _load_history(events, timeseries)

    planned: dict[int, TraceEvent] = {
        e.did: e for e in events  # type: ignore[attr-defined]
        if e.etype == "migration_planned"}
    commits = [e for e in events if e.etype == "migration_committed"]
    aborts = [e for e in events if e.etype == "migration_aborted"]
    plans_sorted = sorted(
        ((e.did, e) for e in planned.values()), key=lambda kv: kv[0])

    # Round waste: aborted planned inodes, grouped by the *planning* epoch,
    # shared equally across that round's commits (remainder to the earliest
    # commit by decision id). A round with no commits keeps its waste in
    # the run totals but attributes it to nobody.
    waste_by_epoch: dict[int, int] = {}
    for a in aborts:
        plan = planned.get(getattr(a, "parent", NO_DECISION))
        if plan is None:
            continue
        k = epoch_of_tick(plan.tick)  # type: ignore[attr-defined]
        waste_by_epoch[k] = (waste_by_epoch.get(k, 0)
                             + plan.inodes)  # type: ignore[attr-defined]
    commits_by_round: dict[int, list[TraceEvent]] = {}
    plan_epochs: dict[int, int] = {}
    for c in commits:
        plan = planned.get(getattr(c, "parent", NO_DECISION))
        tick = plan.tick if plan is not None else c.tick  # type: ignore[attr-defined]
        plan_epochs[c.did] = epoch_of_tick(int(tick))  # type: ignore[attr-defined]
        commits_by_round.setdefault(plan_epochs[c.did], []).append(c)
    waste_share: dict[int, int] = {}
    for k, group in commits_by_round.items():
        total = waste_by_epoch.get(k, 0)
        group = sorted(group, key=lambda e: e.did)  # type: ignore[attr-defined]
        share, rem = divmod(total, len(group))
        for i, c in enumerate(group):
            waste_share[c.did] = share + (rem if i == 0 else 0)  # type: ignore[attr-defined]

    entries: list[OutcomeEntry] = []
    for c in sorted(commits, key=lambda e: e.did):  # type: ignore[attr-defined]
        plan = planned.get(getattr(c, "parent", NO_DECISION))
        partial = plan is None
        commit_epoch = epoch_of_tick(int(c.tick))  # type: ignore[attr-defined]
        plan_epoch = plan_epochs[c.did]  # type: ignore[attr-defined]
        planned_load = float(getattr(plan, "load", 0.0)) if plan is not None else 0.0
        dst = int(c.dst)  # type: ignore[attr-defined]

        def dst_load(k: int, rank: int = dst) -> float | None:
            loads = history.get(k)
            if loads is None or rank >= len(loads):
                return None
            return loads[rank]

        base_samples = [v for k in range(max(0, plan_epoch - cfg.benefit_epochs),
                                         plan_epoch)
                        if (v := dst_load(k)) is not None]
        if base_samples:
            baseline = sum(base_samples) / len(base_samples)
        else:
            baseline = dst_load(plan_epoch) or 0.0

        realized = 0.0
        observed = 0
        for k in range(commit_epoch + 1, commit_epoch + 1 + cfg.benefit_epochs):
            v = dst_load(k)
            if v is None:
                continue
            observed += 1
            gain = max(0.0, v - baseline)
            realized += min(planned_load, gain) if planned_load > 0.0 else gain

        expected = planned_load * observed
        ratio = realized / expected if expected > 0.0 else 0.0

        # Ping-pong: the same unit planned *off this receiver* by a later
        # decision within W epochs of the commit — whatever became of that
        # later plan, the benefit window was cut short by a reversal.
        pingpong = False
        unit = c.unit  # type: ignore[attr-defined]
        for did2, p2 in plans_sorted:
            if did2 <= c.did:  # type: ignore[attr-defined]
                continue
            if (p2.unit == unit and int(p2.src) == dst  # type: ignore[attr-defined]
                    and epoch_of_tick(int(p2.tick))  # type: ignore[attr-defined]
                    <= commit_epoch + cfg.pingpong_epochs):
                pingpong = True
                break

        if pingpong:
            verdict = "ping_pong"
        elif partial or observed == 0 or expected <= 0.0:
            verdict = "neutral"
        elif ratio >= cfg.paid_off_ratio:
            verdict = "paid_off"
        elif ratio >= cfg.neutral_ratio:
            verdict = "neutral"
        else:
            verdict = "wasted"

        entries.append(OutcomeEntry(
            did=int(c.did),  # type: ignore[attr-defined]
            plan_did=int(getattr(c, "parent", NO_DECISION)),
            epoch=commit_epoch,
            plan_epoch=plan_epoch,
            src=int(c.src),  # type: ignore[attr-defined]
            dst=dst,
            unit=unit,
            inodes=int(c.inodes),  # type: ignore[attr-defined]
            waste=waste_share.get(int(c.did), 0),  # type: ignore[attr-defined]
            planned_load=planned_load,
            baseline=baseline,
            realized=realized,
            expected=expected,
            observed_epochs=observed,
            verdict=verdict,
            partial=partial,
        ))

    tasks, inodes = aborted_waste(events)
    return OutcomeLedger(entries=tuple(entries), config=cfg,
                         aborted_tasks=tasks, aborted_inodes=inodes)


def emit_outcomes(sink: TraceSink, ledger: OutcomeLedger) -> int:
    """Append the ledger to a trace as ``migration_outcome`` events.

    Post-hoc annotation of a *copy* of the run's trace (never the golden
    stream): each event's ``parent`` is the judged ``migration_committed``
    decision, chaining commit → outcome in the provenance DAG. Returns
    the number of events emitted.
    """
    for entry in ledger.entries:
        did = sink.next_decision_id()
        sink.emit(MigrationOutcome(
            epoch=entry.epoch,
            src=entry.src,
            dst=entry.dst,
            unit=entry.unit,
            inodes=entry.inodes,
            planned_load=entry.planned_load,
            realized=entry.realized,
            expected=entry.expected,
            verdict=entry.verdict,
            observed_epochs=entry.observed_epochs,
            did=did,
            parent=entry.did,
            waste=entry.waste,
            partial=entry.partial,
        ))
    return len(ledger.entries)
