"""Differential trace analysis: where did two runs' decisions fork?

Golden-trace regressions tell you *that* two runs differ, byte-wise.
:func:`diff_traces` tells you *where and why*: it aligns two decision
traces epoch-by-epoch, finds the first decision present in one run but
not the other (comparing events *semantically* — decision ids and parent
links are allocation order, not meaning, and are excluded), and renders
both sides' causal chains next to the input deltas that explain the fork
— IF values, per-rank loads, and their differences.

This backs ``repro diff RUN_A RUN_B``: comparing balancers, seeds,
configs, or a before/after pair when a golden trace breaks.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

from repro.obs.events import NO_DECISION, TraceEvent, event_to_dict
from repro.obs.provenance import ProvenanceGraph, format_event

__all__ = ["signature", "group_by_epoch", "diff_traces", "render_diff"]


def signature(event: TraceEvent) -> dict:
    """An event's semantic content: everything except provenance ids.

    Two runs that made the same decisions in the same order produce
    identical signature streams even if id allocation drifted (e.g. one
    run skipped an epoch early, shifting every later id).
    """
    d = event_to_dict(event)
    d.pop("did", None)
    d.pop("parent", None)
    d.pop("cause", None)  # also an allocation-order id, not meaning
    return d


def group_by_epoch(events: Iterable[TraceEvent]) -> dict[int, list[TraceEvent]]:
    """Events bucketed by epoch, in trace order within each bucket.

    Epoch-stamped events use their own field; tick-stamped ones are
    attributed through ``epoch_start`` boundaries exactly like
    :func:`repro.obs.tracelog.filter_events`. Unattributable events
    (tick-only events in a boundary-less trace) are dropped.
    """
    events = list(events)
    boundaries = [(e.tick, e.epoch) for e in events  # type: ignore[attr-defined]
                  if e.etype == "epoch_start"]
    ticks = [t for t, _ in boundaries]
    out: dict[int, list[TraceEvent]] = {}
    for e in events:
        epoch = getattr(e, "epoch", None)
        if epoch is None:
            tick = getattr(e, "tick", None)
            if tick is None or not ticks:
                continue
            i = bisect.bisect_left(ticks, int(tick))
            epoch = boundaries[i][1] if i < len(ticks) else boundaries[-1][1] + 1
        out.setdefault(int(epoch), []).append(e)
    return out


def _epoch_inputs(bucket: list[TraceEvent]) -> dict | None:
    """The decision inputs of an epoch: its IF computation(s)."""
    by_source: dict[str, TraceEvent] = {}
    for e in bucket:
        if e.etype == "if_computed":
            by_source[e.source] = e  # type: ignore[attr-defined]
    # the policy's own trigger IF explains decisions best; the simulator's
    # reporting IF is the fallback every balancer has
    best = by_source.get("initiator") or by_source.get("simulator")
    if best is None and by_source:
        best = by_source[sorted(by_source)[0]]
    if best is None:
        return None
    return {"value": best.value, "loads": list(best.loads),  # type: ignore[attr-defined]
            "source": best.source}  # type: ignore[attr-defined]


def _chain_for(graph: ProvenanceGraph, event: TraceEvent | None) -> list[dict]:
    if event is None:
        return []
    did = getattr(event, "did", NO_DECISION)
    if did == NO_DECISION or did not in graph:
        return [signature(event)]
    chain = graph.chain(did)
    out = [event_to_dict(e) for e in chain.events]
    if chain.truncated:
        out.insert(0, {"e": "truncated", "note": "ancestors evicted"})
    return out


def diff_traces(events_a: Iterable[TraceEvent],
                events_b: Iterable[TraceEvent]) -> dict:
    """Compare two decision traces; report the first semantic divergence.

    Returns a JSON-ready dict. ``divergent`` is False when both traces
    carry the same decision stream (epoch count included). On divergence,
    ``first_divergence`` holds the epoch, the in-epoch event index, both
    events (``None`` on the side that has no event there — one run decided
    more than the other), both causal chains, and the epochs' IF inputs
    with per-rank load deltas.
    """
    ev_a, ev_b = list(events_a), list(events_b)
    graph_a, graph_b = ProvenanceGraph(ev_a), ProvenanceGraph(ev_b)
    by_a, by_b = group_by_epoch(ev_a), group_by_epoch(ev_b)
    epochs = sorted(set(by_a) | set(by_b))

    for k in epochs:
        bucket_a = by_a.get(k, [])
        bucket_b = by_b.get(k, [])
        sigs_a = [signature(e) for e in bucket_a]
        sigs_b = [signature(e) for e in bucket_b]
        if sigs_a == sigs_b:
            continue
        idx = 0
        for idx in range(min(len(sigs_a), len(sigs_b))):
            if sigs_a[idx] != sigs_b[idx]:
                break
        else:
            idx = min(len(sigs_a), len(sigs_b))
        a = bucket_a[idx] if idx < len(bucket_a) else None
        b = bucket_b[idx] if idx < len(bucket_b) else None
        inputs_a = _epoch_inputs(bucket_a)
        inputs_b = _epoch_inputs(bucket_b)
        deltas: dict = {}
        if inputs_a is not None and inputs_b is not None:
            deltas["if_delta"] = inputs_b["value"] - inputs_a["value"]
            la, lb = inputs_a["loads"], inputs_b["loads"]
            deltas["load_deltas"] = [
                round(y - x, 12) for x, y in zip(la, lb)
            ] if len(la) == len(lb) else None
        return {
            "divergent": True,
            "first_divergence": {
                "epoch": k,
                "index": idx,
                "a": signature(a) if a is not None else None,
                "b": signature(b) if b is not None else None,
                "chain_a": _chain_for(graph_a, a),
                "chain_b": _chain_for(graph_b, b),
                "inputs": {"a": inputs_a, "b": inputs_b, **deltas},
            },
            "epochs_compared": len(epochs),
            "events": {"a": len(ev_a), "b": len(ev_b)},
        }

    return {
        "divergent": False,
        "epochs_compared": len(epochs),
        "events": {"a": len(ev_a), "b": len(ev_b)},
    }


def _fmt_side(chain: list[dict]) -> list[str]:
    out: list[str] = []
    for d in chain:
        if d.get("e") == "truncated":
            out.append("... (ancestors evicted)")
        else:
            out.append(format_event(d))
    return out or ["(no event)"]


def render_diff(report: dict) -> str:
    """Human-readable rendering of a :func:`diff_traces` report."""
    if not report["divergent"]:
        return (f"no divergence: {report['epochs_compared']} epochs, "
                f"{report['events']['a']}/{report['events']['b']} events")
    fd = report["first_divergence"]
    lines = [f"first divergence at epoch {fd['epoch']}, event {fd['index']}"]
    inputs = fd["inputs"]
    for side in ("a", "b"):
        got = inputs.get(side)
        if got is not None:
            lines.append(
                f"  inputs {side}: IF={got['value']:.4f} ({got['source']}) "
                f"loads={got['loads']}")
    if "if_delta" in inputs:
        lines.append(f"  IF delta (b-a): {inputs['if_delta']:+.4f}")
    if inputs.get("load_deltas"):
        lines.append(f"  load deltas (b-a): {inputs['load_deltas']}")
    left = _fmt_side(fd["chain_a"])
    right = _fmt_side(fd["chain_b"])
    width = max(len(s) for s in left + ["run A"])
    lines.append(f"  {'run A':<{width}} | run B")
    for i in range(max(len(left), len(right))):
        lhs = left[i] if i < len(left) else ""
        rhs = right[i] if i < len(right) else ""
        lines.append(f"  {lhs:<{width}} | {rhs}")
    return "\n".join(lines)
