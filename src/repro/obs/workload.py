"""Per-epoch workload characterization: skew, hotspots, churn, op mix.

Lunule's whole case rests on workload shape — a balanced cluster under a
uniform read stream needs no migrations, a zipf create storm needs many —
yet nothing in the stack measured that shape. This module distills each
epoch into a :class:`WorkloadProfile`: concentration of the per-MDS load
and per-dirfrag heat distributions (Gini coefficient + normalized
entropy), the heat share captured by the hottest 1 and top-k dirfrags,
the client churn rate, and a coarse op-mix class drawn from the closed
``OP_MIX_CLASSES`` vocabulary.

Everything here is pure math over numbers handed in by the caller; the
simulator computes profiles only under ``SimConfig(workload_profile=True)``
so golden traces and time-series stay byte-identical, and
:func:`profiles_from_timeseries` rebuilds the stream post-hoc from the
recorded ``wl.*`` columns for reports and tests.

The skew helpers are **sparse-aware**: they take the nonzero values plus
the total population size, because the heat distribution of a large
namespace is almost entirely zeros and materializing it dense each epoch
would blow the <5% recording-overhead budget.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.obs.events import NO_DECISION, OP_MIX_CLASSES, WorkloadProfiled
from repro.obs.registry import MetricsRegistry
from repro.obs.tracelog import TraceSink

__all__ = [
    "TOPK_DEFAULT",
    "WorkloadProfile",
    "classify_op_mix",
    "emit_profiles",
    "gini",
    "normalized_entropy",
    "profiles_from_timeseries",
    "topk_share",
]

#: how many hottest dirfrags the "top-k hotspot share" covers by default
TOPK_DEFAULT = 8


# ------------------------------------------------------------ skew metrics
def gini(values: Sequence[float], total_count: int | None = None) -> float:
    """Gini coefficient of a distribution given its nonzero values.

    ``total_count`` is the full population size including zero entries
    (defaults to ``len(values)``); the zeros occupy the lowest ranks of
    the sorted distribution without contributing mass, which is how a
    single hot dirfrag among ten thousand cold ones scores near 1.0
    without a dense array ever existing. Returns 0.0 for empty, all-zero,
    or single-member populations.
    """
    n = len(values) if total_count is None else total_count
    nonzero = sorted(v for v in values if v > 0.0)
    if n <= 1 or not nonzero:
        return 0.0
    total = math.fsum(nonzero)
    if total <= 0.0:
        return 0.0
    m = len(nonzero)
    # Zeros fill ranks 1..n-m; nonzero value j (1-based) has rank n-m+j.
    weighted = math.fsum((n - m + j) * v for j, v in enumerate(nonzero, start=1))
    return 2.0 * weighted / (n * total) - (n + 1) / n


def normalized_entropy(values: Sequence[float],
                       total_count: int | None = None) -> float:
    """Shannon entropy of the distribution, normalized to ``[0, 1]``.

    1.0 means mass spread uniformly over all ``total_count`` members;
    0.0 means a single member holds everything (or the population is
    empty/idle — an epoch with no heat is reported as fully concentrated
    rather than fully uniform, matching how the dashboards read it).
    Zero entries contribute no entropy, so only nonzero values need
    passing.
    """
    n = len(values) if total_count is None else total_count
    total = math.fsum(v for v in values if v > 0.0)
    if n <= 1 or total <= 0.0:
        return 0.0
    h = -math.fsum(
        (v / total) * math.log(v / total) for v in values if v > 0.0)
    return h / math.log(n) + 0.0  # + 0.0 normalizes IEEE -0.0


def topk_share(values: Sequence[float], k: int) -> float:
    """Fraction of total mass held by the ``k`` largest values (0 if idle)."""
    if k <= 0:
        return 0.0
    total = math.fsum(v for v in values if v > 0.0)
    if total <= 0.0:
        return 0.0
    top = sorted((v for v in values if v > 0.0), reverse=True)[:k]
    return min(1.0, math.fsum(top) / total)


def classify_op_mix(visits: int, created: int, first: int,
                    recurrent: int) -> str:
    """Coarse epoch class from the cluster-wide pattern-counter sums.

    Majority rule over the access classes Lunule's cutting window already
    distinguishes: creates (new inodes), first visits (scan front), and
    recurrent visits (re-reads). ``created`` is a subset of ``first``, so
    it is tested first — a create storm is ``create_heavy``, not
    ``scan_heavy``. No majority → ``mixed``; no traffic → ``idle``.
    """
    if visits <= 0:
        return "idle"
    if 2 * created >= visits:
        return "create_heavy"
    if 2 * first >= visits:
        return "scan_heavy"
    if 2 * recurrent >= visits:
        return "read_heavy"
    return "mixed"


# ---------------------------------------------------------------- profiles
@dataclass(frozen=True)
class WorkloadProfile:
    """One epoch's workload shape, ready for columns / gauges / events."""

    epoch: int
    load_gini: float
    load_entropy: float
    heat_gini: float
    heat_entropy: float
    top1_share: float
    topk_share: float
    churn: float
    op_mix: str
    topk: int = TOPK_DEFAULT

    @classmethod
    def compute(
        cls,
        *,
        epoch: int,
        loads: Sequence[float],
        heat_values: Sequence[float],
        n_dirs: int,
        mix: Mapping[str, int],
        clients_started: int,
        clients_done: int,
        active_clients: int,
        topk: int = TOPK_DEFAULT,
    ) -> WorkloadProfile:
        """Profile one epoch from live simulator state.

        ``heat_values`` are the nonzero per-dirfrag heats (``n_dirs`` the
        full population), ``mix`` the cluster-wide pattern sums of the
        closed epoch (``AccessStats.last_epoch_mix``), and the client
        numbers are this epoch's deltas — churn is arrivals plus
        departures over the active population.
        """
        return cls(
            epoch=epoch,
            load_gini=gini(loads),
            load_entropy=normalized_entropy(loads),
            heat_gini=gini(heat_values, n_dirs),
            heat_entropy=normalized_entropy(heat_values, n_dirs),
            top1_share=topk_share(heat_values, 1),
            topk_share=topk_share(heat_values, topk),
            churn=(clients_started + clients_done) / max(active_clients, 1),
            op_mix=classify_op_mix(
                int(mix.get("visits", 0)), int(mix.get("created", 0)),
                int(mix.get("first", 0)), int(mix.get("recurrent", 0))),
            topk=topk,
        )

    def to_record(self) -> dict[str, float]:
        """The ``wl.*`` time-series columns (op mix as its class index)."""
        return {
            "wl.load_gini": self.load_gini,
            "wl.load_entropy": self.load_entropy,
            "wl.heat_gini": self.heat_gini,
            "wl.heat_entropy": self.heat_entropy,
            "wl.top1_share": self.top1_share,
            "wl.topk_share": self.topk_share,
            "wl.churn": self.churn,
            "wl.op_mix": float(OP_MIX_CLASSES.index(self.op_mix)),
        }

    def to_event(self, *, did: int = NO_DECISION,
                 parent: int = NO_DECISION) -> WorkloadProfiled:
        """The profile as a ``workload_profiled`` trace event."""
        return WorkloadProfiled(
            epoch=self.epoch,
            load_gini=self.load_gini,
            load_entropy=self.load_entropy,
            heat_gini=self.heat_gini,
            heat_entropy=self.heat_entropy,
            top1_share=self.top1_share,
            topk_share=self.topk_share,
            churn=self.churn,
            op_mix=self.op_mix,
            did=did,
            parent=parent,
        )

    def to_gauges(self, registry: MetricsRegistry) -> None:
        """Publish the profile as ``workload.*`` OpenMetrics gauges."""
        registry.gauge("workload.load_gini").set(self.load_gini)
        registry.gauge("workload.load_entropy").set(self.load_entropy)
        registry.gauge("workload.heat_gini").set(self.heat_gini)
        registry.gauge("workload.heat_entropy").set(self.heat_entropy)
        registry.gauge("workload.hotspot_share", k="1").set(self.top1_share)
        registry.gauge("workload.hotspot_share",
                       k=str(self.topk)).set(self.topk_share)
        registry.gauge("workload.client_churn").set(self.churn)
        registry.gauge("workload.opmix_class").set(
            float(OP_MIX_CLASSES.index(self.op_mix)))


def profiles_from_timeseries(snapshot: Mapping[str, Sequence[float | int | None]],
                             topk: int = TOPK_DEFAULT) -> list[WorkloadProfile]:
    """Rebuild the profile stream from recorded ``wl.*`` columns.

    ``snapshot`` maps column name to series (``TimeSeriesStore.column``
    shape); rows whose profile columns are ``None`` (recorded before the
    profiler was on, or with it off) are skipped. Round-trips exactly
    with :meth:`WorkloadProfile.to_record`.
    """
    epochs = snapshot.get("epoch")
    key = "wl.load_gini"
    series = snapshot.get(key)
    if series is None:
        return []
    out: list[WorkloadProfile] = []
    for i, cell in enumerate(series):
        if cell is None:
            continue
        def col(name: str, row: int = i) -> float:
            values = snapshot.get(name)
            v = values[row] if values is not None and row < len(values) else None
            return float(v) if v is not None else 0.0
        epoch_cell = (epochs[i] if epochs is not None and i < len(epochs)
                      else None)
        out.append(WorkloadProfile(
            epoch=int(epoch_cell) if epoch_cell is not None else i,
            load_gini=float(cell),
            load_entropy=col("wl.load_entropy"),
            heat_gini=col("wl.heat_gini"),
            heat_entropy=col("wl.heat_entropy"),
            top1_share=col("wl.top1_share"),
            topk_share=col("wl.topk_share"),
            churn=col("wl.churn"),
            op_mix=OP_MIX_CLASSES[int(col("wl.op_mix"))],
            topk=topk,
        ))
    return out


def emit_profiles(sink: TraceSink, profiles: Sequence[WorkloadProfile]) -> int:
    """Append the profile stream to a trace as ``workload_profiled`` events.

    Post-hoc annotation — run this against a copy, never the golden
    stream. Each event gets a fresh decision id so the provenance graph
    indexes it; returns the number emitted.
    """
    for profile in profiles:
        did = sink.next_decision_id()
        sink.emit(WorkloadProfiled(
            epoch=profile.epoch,
            load_gini=profile.load_gini,
            load_entropy=profile.load_entropy,
            heat_gini=profile.heat_gini,
            heat_entropy=profile.heat_entropy,
            top1_share=profile.top1_share,
            topk_share=profile.topk_share,
            churn=profile.churn,
            op_mix=profile.op_mix,
            did=did,
        ))
    return len(profiles)
