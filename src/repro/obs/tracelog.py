"""The decision trace: an append-only log of typed balancer events.

A :class:`TraceLog` rides on the simulator and receives every
:mod:`repro.obs.events` event the balancing stack emits. Two modes:

- **unbounded** (default): keeps the full run — what benchmarks export as
  JSONL and what the golden-trace regression suite byte-compares;
- **ring buffer** (``capacity=N``): keeps only the most recent N events in
  O(1) memory per append, for always-on production-style tracing where
  only the recent history matters at inspection time.

Appending is one deque append; serialization cost is paid only at dump
time, so tracing stays out of the simulator's hot loop entirely.
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Iterable, Iterator

from repro.obs.events import TraceEvent, event_from_json, event_to_json

__all__ = ["TraceLog", "read_jsonl", "write_jsonl"]


class TraceLog:
    """Ordered, optionally ring-buffered, event sink."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("ring capacity must be positive (or None)")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        #: lifetime appended count — keeps growing even when the ring drops
        self.emitted = 0

    # ---------------------------------------------------------------- writing
    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.emitted += 1

    def clear(self) -> None:
        self._events.clear()

    # ---------------------------------------------------------------- reading
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Events the ring buffer has discarded."""
        return self.emitted - len(self._events)

    def events(self, etype: str | None = None) -> list[TraceEvent]:
        """Retained events, optionally filtered by type tag."""
        if etype is None:
            return list(self._events)
        return [e for e in self._events if e.etype == etype]

    def counts(self) -> dict[str, int]:
        """Retained event count per type tag, sorted by tag."""
        out: dict[str, int] = {}
        for e in self._events:
            out[e.etype] = out.get(e.etype, 0) + 1
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------ jsonl
    def dumps(self) -> str:
        """The retained trace as canonical JSONL (trailing newline)."""
        return "".join(event_to_json(e) + "\n" for e in self._events)

    def dump_jsonl(self, path: str | os.PathLike) -> int:
        """Write the retained trace to ``path``; returns events written."""
        with open(path, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(self.dumps())
        return len(self._events)

    @classmethod
    def load_jsonl(cls, path: str | os.PathLike,
                   capacity: int | None = None) -> "TraceLog":
        log = cls(capacity=capacity)
        for event in read_jsonl(path):
            log.emit(event)
        return log


def read_jsonl(path: str | os.PathLike) -> Iterator[TraceEvent]:
    """Stream events from a JSONL trace file (blank lines ignored)."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield event_from_json(line)


def write_jsonl(path: str | os.PathLike, events: Iterable[TraceEvent]) -> int:
    """Write any event iterable as canonical JSONL; returns events written."""
    n = 0
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        for e in events:
            fh.write(event_to_json(e) + "\n")
            n += 1
    return n
