"""The decision trace: an append-only log of typed balancer events.

A :class:`TraceLog` rides on the simulator and receives every
:mod:`repro.obs.events` event the balancing stack emits. Two modes:

- **unbounded** (default): keeps the full run — what benchmarks export as
  JSONL and what the golden-trace regression suite byte-compares;
- **ring buffer** (``capacity=N``): keeps only the most recent N events in
  O(1) memory per append, for always-on production-style tracing where
  only the recent history matters at inspection time.

Appending is one deque append; serialization cost is paid only at dump
time, so tracing stays out of the simulator's hot loop entirely.
"""

from __future__ import annotations

import bisect
import os
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from typing import Any, Protocol

from repro.obs.events import DecisionIds, TraceEvent, event_from_json, event_to_json
from repro.obs.registry import Counter

__all__ = ["TraceSink", "TraceLog", "read_jsonl", "write_jsonl",
           "filter_events"]


class TraceSink(Protocol):
    """Anything decision events can be emitted into.

    Satisfied by :class:`TraceLog` and by
    :class:`~repro.core.plan.EpochPlan` (which records the event as a
    replayable action) — the duck type components like the migration
    initiator are written against. Sinks also mint decision ids
    (:meth:`next_decision_id`) so provenance links stay monotone in
    emission order whichever side of the plan/apply seam emits.
    """

    def emit(self, event: Any) -> None: ...

    def next_decision_id(self) -> int: ...


class TraceLog:
    """Ordered, optionally ring-buffered, event sink.

    ``drop_counter`` (anything with ``.inc()``, typically a registry
    :class:`~repro.obs.registry.Counter`) is bumped once per event the
    ring buffer evicts, so always-on deployments see the loss as a
    ``trace_events_dropped_total`` series instead of silence.
    """

    def __init__(self, capacity: int | None = None,
                 drop_counter: Counter | None = None,
                 ids: DecisionIds | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("ring capacity must be positive (or None)")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        #: lifetime appended count — keeps growing even when the ring drops
        self.emitted = 0
        self.drop_counter = drop_counter
        #: decision-id allocator; the simulator passes its run-wide one so
        #: mechanism-side events share the policy sequence
        self.ids = ids if ids is not None else DecisionIds()
        #: live-tap callbacks (``repro serve``'s event bus); empty for
        #: batch runs, so :meth:`emit` pays one falsy check and nothing more
        self._listeners: list[Callable[[TraceEvent], None]] = []

    def add_listener(self, fn: Callable[[TraceEvent], None]) -> None:
        """Tap the log: ``fn`` sees every event as it is emitted.

        Listeners must never raise and never block — the serve event bus
        satisfies this with a bounded drop-on-full queue per subscriber.
        """
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[TraceEvent], None]) -> None:
        self._listeners.remove(fn)

    def next_decision_id(self) -> int:
        """Mint the next decision id (see :class:`TraceSink`)."""
        return self.ids.next()

    # ---------------------------------------------------------------- writing
    def emit(self, event: TraceEvent) -> None:
        if (self.capacity is not None and self.drop_counter is not None
                and len(self._events) == self.capacity):
            self.drop_counter.inc()
        self._events.append(event)
        self.emitted += 1
        if self._listeners:
            for fn in self._listeners:
                fn(event)

    def clear(self) -> None:
        self._events.clear()

    # ---------------------------------------------------------------- reading
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Events the ring buffer has discarded."""
        return self.emitted - len(self._events)

    def events(self, etype: str | None = None) -> list[TraceEvent]:
        """Retained events, optionally filtered by type tag."""
        if etype is None:
            return list(self._events)
        return [e for e in self._events if e.etype == etype]

    def counts(self) -> dict[str, int]:
        """Retained event count per type tag, sorted by tag."""
        out: dict[str, int] = {}
        for e in self._events:
            out[e.etype] = out.get(e.etype, 0) + 1
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------ jsonl
    def dumps(self) -> str:
        """The retained trace as canonical JSONL (trailing newline)."""
        return "".join(event_to_json(e) + "\n" for e in self._events)

    def dump_jsonl(self, path: str | os.PathLike) -> int:
        """Write the retained trace to ``path``; returns events written."""
        with open(path, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(self.dumps())
        return len(self._events)

    @classmethod
    def load_jsonl(cls, path: str | os.PathLike,
                   capacity: int | None = None) -> TraceLog:
        log = cls(capacity=capacity)
        for event in read_jsonl(path):
            log.emit(event)
        return log


def read_jsonl(path: str | os.PathLike) -> Iterator[TraceEvent]:
    """Stream events from a JSONL trace file (blank lines ignored)."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield event_from_json(line)


def filter_events(events: Iterable[TraceEvent],
                  etypes: Iterable[str] | None = None,
                  epoch_range: tuple[int, int] | None = None,
                  decision_ids: Iterable[int] | None = None,
                  ) -> list[TraceEvent]:
    """Slice a trace by event type, epoch and/or decision id.

    ``etypes`` keeps only the given type tags. ``epoch_range`` is an
    inclusive ``(lo, hi)``: events carrying an ``epoch`` field use it
    directly; tick-stamped events (migration plan/commit/abort, failures)
    are assigned the epoch whose ``epoch_start`` boundary tick is the
    first at or after their tick — exact, because ``epoch_start(k)`` is
    emitted at epoch *k*'s closing tick. Tick events past the last
    boundary belong to the (unclosed) next epoch; when a trace has no
    boundaries at all, tick-only events are dropped as unattributable.
    ``decision_ids`` keeps only events whose ``did`` is in the given set —
    pair it with :meth:`repro.obs.provenance.ProvenanceGraph.chain_ids`
    to slice one decision's full causal chain out of a trace.
    """
    events = list(events)
    # epoch boundaries come from the *unfiltered* stream, so a type filter
    # that drops epoch_start does not break tick-to-epoch attribution
    boundaries = [(e.tick, e.epoch) for e in events if e.etype == "epoch_start"]
    if etypes is not None:
        wanted = set(etypes)
        events = [e for e in events if e.etype in wanted]
    if decision_ids is not None:
        dids = set(decision_ids)
        events = [e for e in events if getattr(e, "did", -1) in dids]
    if epoch_range is None:
        return events
    lo, hi = epoch_range
    if lo > hi:
        raise ValueError(f"empty epoch range {lo}..{hi}")
    ticks = [t for t, _ in boundaries]
    kept: list[TraceEvent] = []
    for e in events:
        epoch = getattr(e, "epoch", None)
        if epoch is None:
            tick = getattr(e, "tick", None)
            if tick is None or not ticks:
                continue
            i = bisect.bisect_left(ticks, tick)
            epoch = boundaries[i][1] if i < len(ticks) else boundaries[-1][1] + 1
        if lo <= epoch <= hi:
            kept.append(e)
    return kept


def write_jsonl(path: str | os.PathLike, events: Iterable[TraceEvent]) -> int:
    """Write any event iterable as canonical JSONL; returns events written."""
    n = 0
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        for e in events:
            fh.write(event_to_json(e) + "\n")
            n += 1
    return n
