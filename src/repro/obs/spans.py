"""Hierarchical span profiler with Chrome/Perfetto trace-event export.

``SpanProfiler`` records where a run's time goes as nested *spans* — the
simulator wraps its epoch phases (serve, migration, snapshot_view, plan,
apply_plan) and the experiment engine wraps per-worker jobs. Spans open
and close strictly LIFO (the context-manager API guarantees it), so the
exported ``"B"``/``"E"`` event stream is always properly nested and loads
directly in ``ui.perfetto.dev`` / ``chrome://tracing``.

Two clocks:

- ``"logical"`` — a monotone counter that advances by one per begin/end.
  Timestamps are then a pure function of the control flow, so a
  fixed-seed run exports byte-identical traces (golden-able, and safe to
  aggregate across a process pool);
- ``"wall"`` — ``time.perf_counter_ns`` in integer microseconds, for real
  phase-time breakdowns and benchmark flamecharts.
"""

from __future__ import annotations

import json
import os
import time

__all__ = ["SpanProfiler", "merge_span_events", "totals_from_events"]

_CLOCKS = ("logical", "wall")


class _SpanCtx:
    """Reusable-shape context manager for one ``with profiler.span(...)``."""

    __slots__ = ("_prof", "_name")

    def __init__(self, prof: SpanProfiler, name: str) -> None:
        self._prof = prof
        self._name = name

    def __enter__(self) -> _SpanCtx:
        self._prof.begin(self._name)
        return self

    def __exit__(self, *exc: object) -> None:
        self._prof.end(self._name)


class SpanProfiler:
    """Records a stream of strictly nested, named spans."""

    def __init__(self, clock: str = "logical", pid: int = 0, tid: int = 0) -> None:
        if clock not in _CLOCKS:
            raise ValueError(f"clock must be one of {_CLOCKS}, got {clock!r}")
        self.clock = clock
        self.pid = pid
        self.tid = tid
        #: minimal event records ("ph", "name", "ts"); pid/tid attach at export
        self._events: list[tuple[str, str, int]] = []
        self._stack: list[tuple[str, int]] = []
        self._logical = 0
        self._t0 = time.perf_counter_ns()
        #: name -> [count, total inclusive duration] over *closed* spans
        self._totals: dict[str, list] = {}

    def _now(self) -> int:
        if self.clock == "logical":
            self._logical += 1
            return self._logical
        return (time.perf_counter_ns() - self._t0) // 1000  # integer µs

    # --------------------------------------------------------------- spanning
    def span(self, name: str) -> _SpanCtx:
        """``with profiler.span("plan"): ...`` — begin/end around the block."""
        return _SpanCtx(self, name)

    def begin(self, name: str) -> None:
        ts = self._now()
        self._stack.append((name, ts))
        self._events.append(("B", name, ts))

    def end(self, name: str | None = None) -> None:
        """Close the innermost open span (asserting its name when given)."""
        if not self._stack:
            raise RuntimeError("end() with no open span")
        opened, ts_begin = self._stack.pop()
        if name is not None and name != opened:
            raise RuntimeError(f"span nesting broken: closing {name!r} "
                               f"but {opened!r} is innermost")
        ts = self._now()
        self._events.append(("E", opened, ts))
        tot = self._totals.setdefault(opened, [0, 0])
        tot[0] += 1
        tot[1] += ts - ts_begin

    def close_open(self) -> int:
        """End every still-open span (outermost last); returns how many.

        The simulator calls this at finalize so a run stopped mid-epoch
        (``max_ticks`` not a multiple of ``epoch_len``) still exports a
        properly paired stream.
        """
        n = len(self._stack)
        while self._stack:
            self.end()
        return n

    # ---------------------------------------------------------------- reading
    def __len__(self) -> int:
        return len(self._events)

    @property
    def depth(self) -> int:
        """Currently open span count."""
        return len(self._stack)

    def totals(self) -> dict[str, dict]:
        """Per-name count and total inclusive duration of closed spans.

        Durations are in the profiler's clock units: µs for ``"wall"``,
        begin/end steps for ``"logical"``.
        """
        return {name: {"count": c, "total": t}
                for name, (c, t) in sorted(self._totals.items())}

    def events(self, pid: int | None = None, tid: int | None = None) -> list[dict]:
        """The span stream as Chrome trace events (``ph``/``name``/``ts``/
        ``pid``/``tid``); raises while spans are still open."""
        if self._stack:
            raise RuntimeError(
                f"cannot export with open spans: {[n for n, _ in self._stack]}")
        pid = self.pid if pid is None else pid
        tid = self.tid if tid is None else tid
        return [
            {"ph": ph, "name": name, "ts": ts, "pid": pid, "tid": tid,
             "cat": "phase"}
            for ph, name, ts in self._events
        ]

    # ---------------------------------------------------------------- export
    def to_perfetto(self, pid: int | None = None) -> dict:
        """The whole profile as a Chrome/Perfetto JSON object."""
        return {"traceEvents": self.events(pid=pid), "displayTimeUnit": "ms"}

    def dumps_perfetto(self) -> str:
        """Canonical JSON of :meth:`to_perfetto` (byte-stable per run)."""
        return json.dumps(self.to_perfetto(), sort_keys=True,
                          separators=(",", ":"))

    def dump_perfetto(self, path: str | os.PathLike) -> int:
        with open(path, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(self.dumps_perfetto())
            fh.write("\n")
        return len(self._events)


def merge_span_events(event_lists: list[list[dict]],
                      labels: list[str] | None = None) -> list[dict]:
    """Merge per-process span streams into one trace-event list.

    Each input list becomes one Perfetto *process*: its events are
    re-stamped with ``pid = index`` (input order, so a pool's merge is
    deterministic regardless of completion order), and an optional label
    becomes the process name via a ``"M"`` metadata event.
    """
    if labels is not None and len(labels) != len(event_lists):
        raise ValueError("labels must match event_lists 1:1")
    out: list[dict] = []
    for pid, events in enumerate(event_lists):
        if labels is not None:
            out.append({"ph": "M", "name": "process_name", "ts": 0, "pid": pid,
                        "tid": 0, "args": {"name": labels[pid]}})
        for e in events:
            out.append({**e, "pid": pid})
    return out


def totals_from_events(events: list[dict]) -> dict[str, dict]:
    """Per-name count/total from a B/E event stream (metadata ignored).

    Works on merged streams too: pairing is tracked per ``(pid, tid)``.
    """
    stacks: dict[tuple, list] = {}
    totals: dict[str, list] = {}
    for e in events:
        ph = e.get("ph")
        if ph == "B":
            stacks.setdefault((e.get("pid"), e.get("tid")), []).append(e)
        elif ph == "E":
            stack = stacks.get((e.get("pid"), e.get("tid")), [])
            if not stack:
                raise ValueError(f"unpaired E event: {e!r}")
            opened = stack.pop()
            if opened["name"] != e["name"]:
                raise ValueError(f"mismatched pair: {opened['name']!r} closed "
                                 f"by {e['name']!r}")
            tot = totals.setdefault(e["name"], [0, 0])
            tot[0] += 1
            tot[1] += e["ts"] - opened["ts"]
    open_names = [s["name"] for stack in stacks.values() for s in stack]
    if open_names:
        raise ValueError(f"unpaired B events: {open_names}")
    return {name: {"count": c, "total": t}
            for name, (c, t) in sorted(totals.items())}
