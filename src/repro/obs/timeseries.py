"""Columnar per-epoch time-series store — the flight recorder's memory.

One :meth:`TimeSeriesStore.append` per epoch records a flat mapping of
column name to number (``if``, ``latency``, per-rank ``load.<rank>`` ...);
the store keeps the values column-major so a whole series comes back as
one list without row scans. Two retention modes, mirroring
:class:`~repro.obs.tracelog.TraceLog`:

- **unbounded** (default): the full run, what golden snapshots and run
  reports consume;
- **ring buffer** (``capacity=N``): the most recent N epochs in O(1)
  memory per append, for always-on recording of long runs.

Columns may appear mid-run (a grown cluster adds ``load.<new rank>``);
earlier rows read ``None`` for them, so the table is always rectangular.
Serialization is deterministic — columns sorted, floats ``repr``-encoded —
so a fixed-seed run snapshots to the same bytes every time (the golden
time-series suite relies on this).
"""

from __future__ import annotations

import json
import os
from collections import deque
from collections.abc import Iterator, Mapping

__all__ = ["TimeSeriesStore"]

#: value types a cell may hold (None marks "column did not exist yet")
Cell = int | float | None


def _fmt_cell(value: Cell) -> str:
    """CSV cell encoding: None is empty, floats are shortest round-trip."""
    if value is None:
        return ""
    return repr(value) if isinstance(value, float) else str(value)


class TimeSeriesStore:
    """Append-only columnar store of one numeric record per epoch."""

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("ring capacity must be positive (or None)")
        self.capacity = capacity
        self._cols: dict[str, deque[Cell]] = {}
        #: lifetime appended row count — keeps growing when the ring drops
        self.appended = 0

    # ---------------------------------------------------------------- writing
    def append(self, record: Mapping[str, Cell]) -> None:
        """Record one epoch's sample; unknown columns are created on the fly.

        Columns absent from ``record`` get ``None`` for this row, so every
        column always holds exactly ``len(self)`` cells.
        """
        if not record:
            raise ValueError("refusing to append an empty record")
        n = len(self)
        for name in record:
            if name not in self._cols:
                col: deque[Cell] = deque(maxlen=self.capacity)
                col.extend([None] * n)
                self._cols[name] = col
        for name, col in self._cols.items():
            col.append(record.get(name))
        self.appended += 1

    # ---------------------------------------------------------------- reading
    def __len__(self) -> int:
        for col in self._cols.values():
            return len(col)
        return 0

    @property
    def dropped(self) -> int:
        """Rows the ring buffer has discarded."""
        return self.appended - len(self)

    def columns(self) -> list[str]:
        """Column names, sorted (the deterministic serialization order)."""
        return sorted(self._cols)

    def column(self, name: str) -> list[Cell]:
        """One full series; raises KeyError for a never-recorded column."""
        return list(self._cols[name])

    def rows(self) -> Iterator[dict[str, Cell]]:
        """Row-major view; ``None`` cells are omitted from each dict."""
        names = self.columns()
        cols = [self._cols[n] for n in names]
        for values in zip(*cols):
            yield {n: v for n, v in zip(names, values) if v is not None}

    def last(self, name: str, default: Cell = None) -> Cell:
        """Most recent value of a column (``default`` when absent/empty)."""
        col = self._cols.get(name)
        if not col or col[-1] is None:
            return default
        return col[-1]

    # ------------------------------------------------------------- snapshots
    def snapshot(self) -> dict:
        """Deterministic dict view: sorted columns, row-major cells."""
        names = self.columns()
        return {
            "columns": names,
            "rows": [list(vals) for vals in zip(*(self._cols[n] for n in names))],
            "appended": self.appended,
        }

    def dumps_csv(self) -> str:
        """The table as CSV (sorted header, trailing newline, byte-stable)."""
        names = self.columns()
        lines = [",".join(names)]
        for values in zip(*(self._cols[n] for n in names)):
            lines.append(",".join(_fmt_cell(v) for v in values))
        return "\n".join(lines) + "\n"

    def dump_csv(self, path: str | os.PathLike) -> int:
        """Write the CSV form to ``path``; returns rows written."""
        with open(path, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(self.dumps_csv())
        return len(self)

    def dumps_jsonl(self) -> str:
        """One canonical JSON object per row (sorted keys, no whitespace)."""
        return "".join(
            json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
            for row in self.rows()
        )

    def dump_jsonl(self, path: str | os.PathLike) -> int:
        with open(path, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(self.dumps_jsonl())
        return len(self)

    @classmethod
    def load_jsonl(cls, path: str | os.PathLike,
                   capacity: int | None = None) -> TimeSeriesStore:
        """Rebuild a store from its JSONL dump (round-trips exactly)."""
        store = cls(capacity=capacity)
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    store.append(json.loads(line))
        return store
