"""A zero-dependency metrics registry: counters, gauges, histograms.

The registry is the single sink for quantitative observability across the
simulator, the migrator, the router and every balancer. It is deliberately
minimal — Prometheus-shaped (name + sorted label set identifies a series,
histograms are cumulative-bucket) but in-process and snapshot-able to a
plain dict, so experiment harnesses can diff two runs or dump JSON next to
a decision trace without any external dependency.

Design constraints that shaped the API:

- **hot-path cheap**: incrementing a counter is one attribute add; callers
  on per-tick paths should hold the metric object, not re-look it up;
- **deterministic snapshots**: series and labels are emitted sorted, so a
  snapshot of the same run is byte-stable when JSON-encoded;
- **per-phase timing**: :meth:`MetricsRegistry.timer` wraps a histogram in
  a context manager so BENCH_* runs can attribute wall-clock to phases
  from the same registry the simulator already carries.
"""

from __future__ import annotations

import bisect
import json
import time
from collections.abc import Iterator
from typing import Any, TypeVar

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
           "histogram_quantile"]

#: default histogram buckets: powers of ten with 2.5/5 subdivisions, which
#: covers both tick-latencies (1-100) and inode counts (10^2-10^6)
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (current load, queue depth...)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Cumulative-bucket histogram with sum and count.

    ``buckets`` are upper bounds (ascending); an implicit +Inf bucket
    catches the rest. Bucket counts reported by :meth:`snapshot` are
    cumulative, so they are non-decreasing left to right by construction.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "count", "sum")

    kind = "histogram"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...],
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket bounds")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # per-bucket, +Inf last
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self._counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def cumulative_counts(self) -> list[int]:
        """Counts of observations <= each bound, then the grand total."""
        out: list[int] = []
        running = 0
        for c in self._counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in buckets.

        Prometheus ``histogram_quantile`` semantics: the rank is located
        in the cumulative bucket counts and interpolated linearly between
        the bucket's bounds (the first bucket's lower edge is 0 when its
        upper bound is positive). Observations that landed in the +Inf
        bucket cap the estimate at the highest finite bound. An empty
        histogram returns NaN.
        """
        return histogram_quantile(self.bounds, self.cumulative_counts()[:-1],
                                  self.count, q)

    def snapshot(self) -> dict:
        return {
            "buckets": {
                **{repr(b): c for b, c in zip(self.bounds, self.cumulative_counts())},
                "+Inf": self.count,
            },
            "count": self.count,
            "sum": self.sum,
        }


def histogram_quantile(bounds: tuple[float, ...] | list[float],
                       cumulative: list[int], count: int, q: float) -> float:
    """Quantile from cumulative-bucket data (shared with snapshot dicts).

    ``bounds`` are the finite upper edges (ascending) and ``cumulative``
    the observation counts at or below each — exactly what
    :meth:`Histogram.snapshot` serializes, so run reports can compute
    p50/p95/p99 from a metrics JSON without the live objects.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if len(bounds) != len(cumulative):
        raise ValueError("bounds and cumulative counts must align")
    if count <= 0 or not bounds:
        return float("nan")
    target = q * count
    for i, bound in enumerate(bounds):
        if cumulative[i] >= target and cumulative[i] > 0:
            below = cumulative[i - 1] if i > 0 else 0
            in_bucket = cumulative[i] - below
            lo = bounds[i - 1] if i > 0 else (0.0 if bound > 0 else bound)
            if in_bucket <= 0:
                return float(bound)
            return lo + (bound - lo) * (target - below) / in_bucket
    # the rank falls in the +Inf bucket: cap at the highest finite edge
    return float(bounds[-1])


class _Timer:
    """Context manager that records elapsed wall-clock into a histogram."""

    __slots__ = ("hist", "_start")

    def __init__(self, hist: Histogram) -> None:
        self.hist = hist
        self._start = 0.0

    def __enter__(self) -> _Timer:
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.hist.observe(time.perf_counter() - self._start)


#: any concrete metric the registry can hold
Metric = Counter | Gauge | Histogram
_M = TypeVar("_M", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Registry of named, labelled metric series.

    One ``(name, labels)`` pair is one series; asking again returns the
    same object, so call sites can be written either hot (hold the metric)
    or convenient (re-fetch by name each epoch).
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], Metric] = {}
        self._kinds: dict[str, str] = {}

    # -------------------------------------------------------------- factories
    def _get(self, cls: type[_M], name: str, labels: dict[str, object],
             **kwargs: Any) -> _M:
        if not name:
            raise ValueError("metric name must be non-empty")
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        metric = self._series.get(key)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric
        prior = self._kinds.get(name)
        if prior is not None and prior != cls.kind:
            raise TypeError(f"metric {name!r} already registered as {prior}")
        metric = cls(name, key[1], **kwargs)
        self._series[key] = metric
        self._kinds[name] = cls.kind
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def timer(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS,
              **labels: object) -> _Timer:
        """``with registry.timer("phase.serve"): ...`` — seconds observed."""
        return _Timer(self.histogram(name, buckets=buckets, **labels))

    # ------------------------------------------------------------- inspection
    def __iter__(self) -> Iterator[Metric]:
        for key in sorted(self._series):
            yield self._series[key]

    def __len__(self) -> int:
        return len(self._series)

    def get_value(self, name: str, **labels: object) -> float | None:
        """Value of a counter/gauge series, or None if never registered."""
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        metric = self._series.get(key)
        return getattr(metric, "value", None) if metric is not None else None

    def snapshot(self) -> dict:
        """Deterministic nested-dict view of every series."""
        out: dict = {}
        for metric in self:
            series = out.setdefault(
                metric.name, {"kind": metric.kind, "series": []})
            series["series"].append(
                {"labels": dict(metric.labels), **metric.snapshot()})
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)
