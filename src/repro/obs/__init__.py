"""Observability: metrics, decision tracing, and the flight recorder.

Two always-on primitives every :class:`repro.cluster.Simulator` carries:

- :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  histograms (labelled, snapshot-able to dict/JSON) fed by the simulator,
  the migrator, the router and the balancers;
- :class:`~repro.obs.tracelog.TraceLog` — an ordered log of the typed
  decision events in :mod:`repro.obs.events` (epoch boundaries, IF
  computations, role assignments, subtree selections, migration
  plan/commit/abort, failure injection), exportable as canonical JSONL.

And the opt-in flight recorder (``SimConfig(record=True)``):

- :class:`~repro.obs.timeseries.TimeSeriesStore` — columnar per-epoch
  samples (per-MDS load, IF, urgency, queue depth, migrated inodes),
  snapshot-able to CSV/JSONL;
- :class:`~repro.obs.spans.SpanProfiler` — hierarchical phase spans with
  Chrome/Perfetto trace-event export (logical or wall clock);
- :mod:`~repro.obs.prom` — OpenMetrics text exposition of any registry
  snapshot, plus a self-check parser;
- :mod:`~repro.obs.report` — self-contained Markdown/HTML run reports
  (``repro report``);
- :mod:`~repro.obs.aggregate` — deterministic cross-worker merging for
  the process-pool experiment engine.

Decision provenance rides on the trace: :mod:`~repro.obs.provenance`
rebuilds the causal DAG the ``did``/``parent`` links encode (``repro
explain``), and :mod:`~repro.obs.diff` aligns two traces and reports
their first semantic divergence (``repro diff``).

Judiciousness auditing rides on both: :mod:`~repro.obs.outcomes` joins
the DAG with per-epoch load history into a migration cost/benefit ledger
(verdicts ``paid_off``/``neutral``/``wasted``/``ping_pong``), and
:mod:`~repro.obs.workload` characterizes each epoch's workload shape
(Gini/entropy skew, hotspot share, churn, op-mix class) as time-series
columns and ``workload.*`` gauges.

This package never imports the simulator (enforced by
``tests/test_architecture.py``). See ``docs/OBSERVABILITY.md`` for the
schemas and CLI usage.
"""

from repro.obs.events import (
    EVENT_TYPES,
    NO_DECISION,
    OP_MIX_CLASSES,
    OUTCOME_VERDICTS,
    SKIP_REASONS,
    AbortReason,
    DecisionIds,
    EpochSkipped,
    EpochStart,
    IfComputed,
    MdsFailed,
    MdsRecovered,
    MigrationAborted,
    MigrationCommitted,
    MigrationOutcome,
    MigrationPlanned,
    RoleAssigned,
    SubtreeSelected,
    TraceEvent,
    WorkloadProfiled,
    decode_unit,
    encode_unit,
    event_from_dict,
    event_from_json,
    event_to_dict,
    event_to_json,
)
from repro.obs.aggregate import merge_metrics_snapshots
from repro.obs.diff import diff_traces, render_diff, signature
from repro.obs.outcomes import (
    OutcomeConfig,
    OutcomeEntry,
    OutcomeLedger,
    aborted_waste,
    build_ledger,
    emit_outcomes,
)
from repro.obs.provenance import (
    Chain,
    ProvenanceGraph,
    explain,
    format_event,
    render_explain,
)
from repro.obs.workload import (
    TOPK_DEFAULT,
    WorkloadProfile,
    classify_op_mix,
    emit_profiles,
    gini,
    normalized_entropy,
    profiles_from_timeseries,
    topk_share,
)
from repro.obs.prom import parse_openmetrics, render_openmetrics, write_textfile
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
)
from repro.obs.report import render_html, render_run_report
from repro.obs.spans import SpanProfiler, merge_span_events, totals_from_events
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.tracelog import TraceLog, filter_events, read_jsonl, write_jsonl

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "histogram_quantile",
    "TraceLog",
    "read_jsonl",
    "write_jsonl",
    "filter_events",
    "FlightRecorder",
    "TimeSeriesStore",
    "SpanProfiler",
    "merge_span_events",
    "totals_from_events",
    "merge_metrics_snapshots",
    "render_openmetrics",
    "parse_openmetrics",
    "write_textfile",
    "render_run_report",
    "render_html",
    "TraceEvent",
    "EpochStart",
    "IfComputed",
    "EpochSkipped",
    "RoleAssigned",
    "SubtreeSelected",
    "MigrationPlanned",
    "MigrationCommitted",
    "MigrationAborted",
    "MdsFailed",
    "MdsRecovered",
    "EVENT_TYPES",
    "AbortReason",
    "SKIP_REASONS",
    "DecisionIds",
    "NO_DECISION",
    "encode_unit",
    "decode_unit",
    "event_to_dict",
    "event_from_dict",
    "event_to_json",
    "event_from_json",
    "ProvenanceGraph",
    "Chain",
    "explain",
    "render_explain",
    "format_event",
    "diff_traces",
    "render_diff",
    "signature",
    "MigrationOutcome",
    "WorkloadProfiled",
    "OUTCOME_VERDICTS",
    "OP_MIX_CLASSES",
    "OutcomeConfig",
    "OutcomeEntry",
    "OutcomeLedger",
    "build_ledger",
    "aborted_waste",
    "emit_outcomes",
    "WorkloadProfile",
    "TOPK_DEFAULT",
    "gini",
    "normalized_entropy",
    "topk_share",
    "classify_op_mix",
    "profiles_from_timeseries",
    "emit_profiles",
]
