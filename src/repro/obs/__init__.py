"""Observability: metrics registry + structured balancer-decision tracing.

Two always-on primitives every :class:`repro.cluster.Simulator` carries:

- :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  histograms (labelled, snapshot-able to dict/JSON) fed by the simulator,
  the migrator, the router and the balancers;
- :class:`~repro.obs.tracelog.TraceLog` — an ordered log of the typed
  decision events in :mod:`repro.obs.events` (epoch boundaries, IF
  computations, role assignments, subtree selections, migration
  plan/commit/abort, failure injection), exportable as canonical JSONL.

See ``docs/OBSERVABILITY.md`` for the event schema and CLI usage.
"""

from repro.obs.events import (
    EVENT_TYPES,
    EpochStart,
    IfComputed,
    MdsFailed,
    MdsRecovered,
    MigrationAborted,
    MigrationCommitted,
    MigrationPlanned,
    RoleAssigned,
    SubtreeSelected,
    TraceEvent,
    decode_unit,
    encode_unit,
    event_from_dict,
    event_from_json,
    event_to_dict,
    event_to_json,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracelog import TraceLog, read_jsonl, write_jsonl

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "TraceLog",
    "read_jsonl",
    "write_jsonl",
    "TraceEvent",
    "EpochStart",
    "IfComputed",
    "RoleAssigned",
    "SubtreeSelected",
    "MigrationPlanned",
    "MigrationCommitted",
    "MigrationAborted",
    "MdsFailed",
    "MdsRecovered",
    "EVENT_TYPES",
    "encode_unit",
    "decode_unit",
    "event_to_dict",
    "event_from_dict",
    "event_to_json",
    "event_from_json",
]
