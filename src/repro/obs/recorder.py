"""The flight recorder: per-epoch time series + phase spans, one handle.

A :class:`FlightRecorder` is what ``SimConfig(record=True)`` hangs on the
simulator: a :class:`~repro.obs.timeseries.TimeSeriesStore` sampled once
per epoch and a :class:`~repro.obs.spans.SpanProfiler` wrapped around the
epoch phases. It is plain composition — the recorder knows nothing about
the simulator (the architecture suite keeps ``obs`` import-free of
``repro.cluster``); the simulator pushes samples in.

With ``textfile_path`` set, every sample also rewrites an OpenMetrics
``.prom`` file (node-exporter textfile-collector style), so an external
Prometheus can scrape a live run without any server in the loop.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanProfiler
from repro.obs.timeseries import TimeSeriesStore

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Bundles the per-epoch store and the span profiler of one run."""

    def __init__(self, clock: str = "logical", capacity: int | None = None,
                 textfile_path: str | None = None) -> None:
        self.timeseries = TimeSeriesStore(capacity=capacity)
        self.spans = SpanProfiler(clock=clock)
        self.textfile_path = textfile_path
        #: epochs sampled (lifetime, unaffected by the ring)
        self.samples = 0

    @property
    def clock(self) -> str:
        return self.spans.clock

    def sample(self, record: Mapping,
               registry: MetricsRegistry | None = None) -> None:
        """Record one epoch; optionally refresh the OpenMetrics textfile."""
        self.timeseries.append(record)
        self.samples += 1
        if self.textfile_path is not None and registry is not None:
            from repro.obs.prom import write_textfile

            write_textfile(registry, self.textfile_path)

    def finalize(self) -> None:
        """Close any span left open (a run stopped mid-epoch)."""
        self.spans.close_open()
