"""OpenMetrics text exposition of a :class:`MetricsRegistry` snapshot.

Renders the registry's counters, gauges and histograms in the OpenMetrics
text format (the Prometheus exposition format plus the mandatory ``# EOF``
terminator): counters gain the ``_total`` suffix, histograms expose
cumulative ``_bucket{le=...}`` series ending at ``+Inf`` plus ``_count``
and ``_sum``. Metric and label names are sanitized to the Prometheus
charset (``sim.epochs`` becomes ``sim_epochs``).

:func:`write_textfile` is the node-exporter *textfile collector* pattern:
atomically replace one ``.prom`` file per scrape interval — the flight
recorder can do it per epoch — and any Prometheus in reach of the
directory picks the run up with zero servers involved.

:func:`parse_openmetrics` is a deliberately small self-check parser used
by the test suite and CI: it validates the frame (TYPE-before-samples,
final ``# EOF``, parseable values, counter ``_total`` suffixes, monotone
histogram buckets), not the full spec.
"""

from __future__ import annotations

import math
import os
import re

from repro.obs.registry import MetricsRegistry

__all__ = ["METRIC_NAME_RE", "is_valid_metric_name", "sanitize_metric_name",
           "render_openmetrics", "write_textfile", "parse_openmetrics"]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: registry-name grammar: what :func:`sanitize_metric_name` maps onto the
#: Prometheus charset without surprises — letters/digits/underscores/colons
#: plus dots (which become underscores), starting with a letter or
#: underscore. ``repro lint``'s metric-name rule checks literals against it.
METRIC_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_.:]*\Z")


def is_valid_metric_name(name: str) -> bool:
    """True when ``name`` sanitizes 1:1 (no mangled or collapsed chars)."""
    return METRIC_NAME_RE.fullmatch(name) is not None
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
_LABEL_ITEM = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: exposition suffixes each metric kind may emit samples under
_KIND_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_count", "_sum"),
}


def sanitize_metric_name(name: str) -> str:
    """Prometheus-legal metric name (dots and dashes become underscores)."""
    out = _INVALID_CHARS.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    value = float(value)
    if value != value:
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    items = ",".join(
        f'{sanitize_metric_name(str(k))}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items()))
    return "{" + items + "}"


def _sorted_buckets(buckets: dict) -> list[tuple[float, float]]:
    """Snapshot bucket dict -> [(bound, cumulative count)], +Inf last."""
    out = []
    for key, count in buckets.items():
        bound = math.inf if key == "+Inf" else float(key)
        out.append((bound, count))
    return sorted(out)


def render_openmetrics(source: MetricsRegistry | dict) -> str:
    """OpenMetrics text for a registry or an already-taken snapshot dict."""
    snap = source if isinstance(source, dict) else source.snapshot()
    lines: list[str] = []
    for name in sorted(snap):
        family = snap[name]
        kind = family["kind"]
        mname = sanitize_metric_name(name)
        lines.append(f"# TYPE {mname} {kind}")
        for series in family["series"]:
            labels = series["labels"]
            if kind == "counter":
                lines.append(f"{mname}_total{_render_labels(labels)} "
                             f"{_fmt_value(series['value'])}")
            elif kind == "gauge":
                lines.append(f"{mname}{_render_labels(labels)} "
                             f"{_fmt_value(series['value'])}")
            elif kind == "histogram":
                for bound, count in _sorted_buckets(series["buckets"]):
                    le = "+Inf" if math.isinf(bound) else repr(bound)
                    lines.append(
                        f"{mname}_bucket{_render_labels({**labels, 'le': le})} "
                        f"{_fmt_value(count)}")
                lines.append(f"{mname}_count{_render_labels(labels)} "
                             f"{_fmt_value(series['count'])}")
                lines.append(f"{mname}_sum{_render_labels(labels)} "
                             f"{_fmt_value(series['sum'])}")
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_textfile(source: MetricsRegistry | dict,
                   path: str | os.PathLike) -> str:
    """Atomically (write + rename) dump the exposition to a ``.prom`` file.

    The rename keeps a concurrently scraping textfile collector from ever
    seeing a half-written exposition. Returns the text written.
    """
    text = render_openmetrics(source)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(text)
    os.replace(tmp, path)
    return text


# --------------------------------------------------------------- self-check
def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    return float(raw)


def _family_of(sample_name: str, types: dict[str, str]) -> tuple[str, str]:
    """Resolve a sample to its declared family; raises when undeclared."""
    for family, kind in types.items():
        for suffix in _KIND_SUFFIXES[kind]:
            if sample_name == family + suffix:
                return family, suffix
    raise ValueError(f"sample {sample_name!r} has no preceding # TYPE family")


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Validate an exposition; returns ``family -> {type, samples}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)``. Raises
    :class:`ValueError` on structural violations: a missing ``# EOF``,
    samples before their ``# TYPE``, unparseable lines or values, counter
    samples without ``_total``, or non-monotone/inconsistent histogram
    buckets.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    types: dict[str, str] = {}
    families: dict[str, dict] = {}
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line or line.startswith("# HELP"):
            continue
        if line.startswith("# TYPE "):
            try:
                _, _, name, kind = line.split(" ")
            except ValueError:
                raise ValueError(
                    f"line {lineno}: malformed TYPE line {line!r}") from None
            if kind not in _KIND_SUFFIXES:
                raise ValueError(f"line {lineno}: unknown metric type {kind!r}")
            if name in types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
            types[name] = kind
            families[name] = {"type": kind, "samples": []}
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unexpected comment {line!r}")
        m = _SAMPLE_LINE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}")
        family, _suffix = _family_of(m.group("name"), types)
        labels = {k: v for k, v in _LABEL_ITEM.findall(m.group("labels") or "")}
        value = _parse_value(m.group("value"))
        families[family]["samples"].append((m.group("name"), labels, value))
    for family, info in families.items():
        if info["type"] == "histogram":
            _check_histogram(family, info["samples"])
    return families


def _check_histogram(family: str, samples: list[tuple]) -> None:
    """Buckets must be cumulative (monotone) and end at +Inf == _count."""
    by_series: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}
    for name, labels, value in samples:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        if name == family + "_bucket":
            if "le" not in labels:
                raise ValueError(f"{family}: bucket sample without le label")
            by_series.setdefault(key, []).append((_parse_value(labels["le"]), value))
        elif name == family + "_count":
            counts[key] = value
    for key, buckets in by_series.items():
        buckets.sort()
        values = [v for _, v in buckets]
        if values != sorted(values):
            raise ValueError(f"{family}: bucket counts are not cumulative")
        if not math.isinf(buckets[-1][0]):
            raise ValueError(f"{family}: missing +Inf bucket")
        if key in counts and buckets[-1][1] != counts[key]:
            raise ValueError(f"{family}: +Inf bucket != _count")
