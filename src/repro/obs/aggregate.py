"""Deterministic cross-run aggregation of observability payloads.

The process-pool experiment engine runs each config in its own worker;
every worker comes home with a metrics snapshot, a time-series snapshot
and a span stream. Merging happens here, **in input order**, with sorted
serialization — so a sweep's aggregated observability is byte-identical
at any worker count (held by ``tests/test_experiments_engine.py``).

Merge semantics per metric kind:

- **counter**: values sum per ``(name, labels)`` series;
- **gauge**: last writer (input order) wins — a gauge is a point-in-time
  reading, summing "current IF" across runs would mean nothing;
- **histogram**: bucket-by-bucket sum (cumulative counts add), plus
  ``count`` and ``sum``.
"""

from __future__ import annotations

__all__ = ["merge_metrics_snapshots"]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def merge_metrics_snapshots(snapshots: list[dict]) -> dict:
    """Merge :meth:`MetricsRegistry.snapshot` dicts into one (same schema).

    Mixing kinds under one name raises ``ValueError`` — the per-registry
    invariant (one name, one kind) holds across the merge too.
    """
    kinds: dict[str, str] = {}
    series: dict[str, dict[tuple, dict]] = {}
    for snap in snapshots:
        for name, family in snap.items():
            kind = family["kind"]
            if kinds.setdefault(name, kind) != kind:
                raise ValueError(
                    f"metric {name!r} is {kinds[name]} in one snapshot and "
                    f"{kind} in another")
            per_name = series.setdefault(name, {})
            for s in family["series"]:
                key = _label_key(s["labels"])
                merged = per_name.get(key)
                if merged is None:
                    per_name[key] = _copy_series(s)
                else:
                    _merge_into(kind, merged, s, name)
    out: dict = {}
    for name in sorted(series):
        out[name] = {
            "kind": kinds[name],
            "series": [per for _, per in sorted(series[name].items())],
        }
    return out


def _copy_series(s: dict) -> dict:
    copied = dict(s)
    copied["labels"] = dict(s["labels"])
    if "buckets" in s:
        copied["buckets"] = dict(s["buckets"])
    return copied


def _merge_into(kind: str, merged: dict, s: dict, name: str) -> None:
    if kind == "counter":
        merged["value"] += s["value"]
    elif kind == "gauge":
        merged["value"] = s["value"]
    elif kind == "histogram":
        buckets = merged["buckets"]
        for le, count in s["buckets"].items():
            buckets[le] = buckets.get(le, 0) + count
        merged["count"] += s["count"]
        merged["sum"] += s["sum"]
    else:
        raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
