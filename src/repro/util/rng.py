"""Deterministic random-number substreams.

A single experiment seed fans out into independent, named substreams so that
adding a new consumer of randomness (e.g. a new workload) never perturbs the
draws seen by existing consumers. This is the standard trick for
reproducible parallel/HPC simulations: hash the (seed, name) pair into a
:class:`numpy.random.SeedSequence`.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["substream", "derive_seed"]


def derive_seed(seed: int, *names: object) -> int:
    """Derive a stable 64-bit child seed from ``seed`` and a name path.

    The same ``(seed, names)`` pair always yields the same child seed, on any
    platform and Python version (we hash with SHA-256 rather than relying on
    ``hash()``, which is salted per-process).
    """
    h = hashlib.sha256()
    h.update(str(int(seed)).encode())
    for name in names:
        h.update(b"/")
        h.update(str(name).encode())
    return int.from_bytes(h.digest()[:8], "little")


def substream(seed: int, *names: object) -> np.random.Generator:
    """Return an independent :class:`numpy.random.Generator` for a named use.

    Example::

        rng = substream(experiment_seed, "workload", "zipf", client_id)
    """
    return np.random.default_rng(derive_seed(seed, *names))
