"""Bounded Zipf sampling over a finite catalogue of items.

Filebench's Zipfian read workload (paper Table 1) touches 20% of files with
80% of requests. A classic bounded Zipf with exponent ~0.9-1.1 gives that
shape; we expose the exponent and verify the 80/20 property in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Draw item indices in ``[0, n)`` with a bounded Zipf distribution.

    The rank-to-item assignment is a seeded permutation so hot items are
    scattered through the index space (as they are in a real directory
    listing) rather than clustered at index 0.
    """

    def __init__(self, n: int, exponent: float = 1.0, rng: np.random.Generator | None = None,
                 permute: bool = True) -> None:
        if n <= 0:
            raise ValueError("ZipfSampler needs at least one item")
        if exponent < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.n = int(n)
        self.exponent = float(exponent)
        self._rng = rng if rng is not None else np.random.default_rng()
        ranks = np.arange(1, self.n + 1, dtype=np.float64)
        weights = ranks ** (-self.exponent)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if permute:
            self._perm = self._rng.permutation(self.n)
        else:
            self._perm = np.arange(self.n)

    def sample(self, size: int | None = None) -> np.ndarray | int:
        """Draw ``size`` item indices (or a scalar when ``size`` is None)."""
        if size is None:
            u = self._rng.random()
            rank = int(np.searchsorted(self._cdf, u, side="left"))
            return int(self._perm[rank])
        u = self._rng.random(size)
        ranks = np.searchsorted(self._cdf, u, side="left")
        return self._perm[ranks]

    def head_mass(self, fraction: float) -> float:
        """Probability mass carried by the hottest ``fraction`` of items."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        k = max(1, int(round(self.n * fraction)))
        return float(self._cdf[k - 1])
