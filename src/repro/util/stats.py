"""Statistics helpers used across the balancers and the experiment harness."""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

__all__ = [
    "coefficient_of_variation",
    "percentile",
    "ecdf",
    "RunningStats",
    "linear_regression_predict",
]


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Corrected-sample coefficient of variation (paper Eq. 1).

    ``CoV = sigma(l) / mean(l)`` where ``sigma`` uses the ``n - 1``
    (Bessel-corrected) sample standard deviation. Returns 0.0 when the mean
    is zero (an all-idle cluster is perfectly balanced) or when fewer than
    two samples are given.
    """
    arr = np.asarray(values, dtype=np.float64)
    n = arr.size
    if n < 2:
        return 0.0
    mean = float(arr.mean())
    if mean <= 0.0:
        return 0.0
    sigma = float(arr.std(ddof=1))
    return sigma / mean


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(arr, q))


def ecdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fractions)."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        return arr, arr
    frac = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, frac


class RunningStats:
    """Welford streaming mean/variance, used for per-epoch load summaries."""

    __slots__ = ("count", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Bessel-corrected sample variance (0.0 with < 2 samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


def linear_regression_predict(history: Sequence[float], steps_ahead: int = 1) -> float:
    """Least-squares linear extrapolation of a load history.

    Used by the Migration Initiator to predict an importer's future load
    (``fld`` in paper Algorithm 1). With fewer than two points the last
    observation (or 0.0) is returned. Predictions are clamped at zero:
    a negative load is meaningless.
    """
    arr = np.asarray(history, dtype=np.float64)
    n = arr.size
    if n == 0:
        return 0.0
    if n == 1:
        return max(0.0, float(arr[-1]))
    x = np.arange(n, dtype=np.float64)
    xm = x.mean()
    ym = arr.mean()
    denom = float(((x - xm) ** 2).sum())
    if denom == 0.0:
        return max(0.0, float(arr[-1]))
    slope = float(((x - xm) * (arr - ym)).sum()) / denom
    intercept = ym - slope * xm
    pred = intercept + slope * (n - 1 + steps_ahead)
    return max(0.0, pred)
