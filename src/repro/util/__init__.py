"""Shared low-level utilities: deterministic RNG streams, statistics, sampling.

Everything in :mod:`repro` that needs randomness must derive it from
:func:`repro.util.rng.substream` so that whole experiments are reproducible
from a single integer seed.
"""

from repro.util.rng import substream
from repro.util.stats import (
    coefficient_of_variation,
    ecdf,
    percentile,
    RunningStats,
)
from repro.util.zipf import ZipfSampler

__all__ = [
    "substream",
    "coefficient_of_variation",
    "ecdf",
    "percentile",
    "RunningStats",
    "ZipfSampler",
]
