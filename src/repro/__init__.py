"""repro — a reproduction of Lunule (SC '21), the CephFS metadata balancer.

The package implements the paper's contribution (the Lunule balancer:
imbalance-factor model, Algorithm 1 role decider, workload-aware subtree
selection) together with every substrate it needs: a simulated CephFS MDS
cluster with dynamic subtree partitioning, dirfrags, migration with lag and
cost, the five evaluation workloads, and the baseline balancers
(CephFS-Vanilla, GreedySpill, Dir-Hash).

Quickstart::

    from repro import SimConfig, Simulator, make_balancer
    from repro.workloads import ZipfWorkload

    instance = ZipfWorkload(n_clients=20).materialize(seed=7)
    sim = Simulator(instance, make_balancer("lunule"), SimConfig(n_mds=5))
    result = sim.run()
    print(result.mean_if(), result.peak_iops())
"""

from repro.balancers import make_balancer
from repro.cluster import SimConfig, Simulator
from repro.cluster.results import SimResult
from repro.core import LunuleBalancer, LunuleLightBalancer, imbalance_factor

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "Simulator",
    "SimResult",
    "make_balancer",
    "LunuleBalancer",
    "LunuleLightBalancer",
    "imbalance_factor",
    "__version__",
]
