"""Shared fixtures for the per-figure benchmark harness.

Scale is controlled by ``REPRO_BENCH_SCALE`` (default 1.0, the calibrated
bench scale) and the seed by ``REPRO_BENCH_SEED``. Expensive run grids
shared by several figures (the Fig. 6/7 matrix, the mixed-workload pair,
the Web three-way) are session-scoped fixtures so the suite runs each
simulation once.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import figures


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


@pytest.fixture(scope="session")
def scale() -> float:
    return _env_float("REPRO_BENCH_SCALE", 1.0)


@pytest.fixture(scope="session")
def seed() -> int:
    return int(_env_float("REPRO_BENCH_SEED", 7))


@pytest.fixture(scope="session")
def eval_matrix(scale, seed):
    """The 5-workload x 4-balancer grid behind Figures 6 and 7.

    Runs on the process-pool engine; results are identical to a serial run
    (tests/test_experiments_engine.py holds that equality).
    """
    return figures.eval_matrix(scale=scale, seed=seed, workers=4)


@pytest.fixture(scope="session")
def mixed_runs(scale, seed):
    """Mixed-workload Lunule-vs-Vanilla pair behind Figures 9-11."""
    return figures.mixed_comparison(scale=scale, seed=seed)


@pytest.fixture(scope="session")
def web_three_way(scale, seed):
    """Web workload under vanilla / dirhash / lunule (Figures 13b and 14)."""
    from repro.experiments.config import BENCH_SIM_CONFIG, ExperimentConfig
    from repro.experiments.runner import run_experiment

    out = {}
    for b in ("vanilla", "dirhash", "lunule"):
        cfg = ExperimentConfig(workload="web", balancer=b, n_clients=20,
                               seed=seed, scale=scale, sim=BENCH_SIM_CONFIG)
        out[b] = run_experiment(cfg)
    return out


def run_and_print(benchmark, fn, *args, **kwargs):
    """Run a figure function once under pytest-benchmark and print its text."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                iterations=1)
    print()
    print(result.text)
    return result
