"""Figure 7: aggregate metadata throughput per workload x balancer."""

from conftest import run_and_print
from repro.experiments import figures


def test_fig7_throughput(benchmark, scale, seed, eval_matrix):
    res = run_and_print(benchmark, figures.fig7_throughput, scale, seed,
                        matrix=eval_matrix)
    rows = {r[0]: r for r in res.data["rows"]}
    # column order: workload, vanilla, greedyspill, lunule-light, lunule, ratio
    for w, r in rows.items():
        assert r[4] >= r[1] * 0.99, f"{w}: lunule throughput below vanilla"
    # the scan workload gains the most (paper: 2.81x); MD the least (+17%)
    assert rows["cnn"][5] > rows["mdtest"][5]
    assert rows["cnn"][5] > 1.15
