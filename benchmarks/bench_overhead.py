"""Overhead accounting (paper §3.4): Lunule's control plane is cheap.

Also holds the flight recorder to its budget: per-epoch sampling plus
phase spans must stay within a few percent of an unrecorded run, and the
recorder-off path must not regress at all (it is the default for every
figure benchmark).

Decision-id provenance (the ``did``/``parent`` links behind ``repro
explain``) rides on the always-on decision trace, so *both* sides of the
recorder comparison carry it: the <5% gate below holds with provenance
threading included, and a run that never consults the trace pays only an
integer increment per decision event.
"""

import time

from repro.experiments.config import BENCH_SIM_CONFIG, ExperimentConfig
from repro.experiments.overhead import measure_overhead
from repro.experiments.runner import run_traced


def test_overhead_accounting(benchmark, seed):
    small = benchmark.pedantic(measure_overhead, args=(5,),
                               kwargs={"seed": seed}, rounds=1, iterations=1)
    big = measure_overhead(16, seed=seed)
    print()
    print(small.table())
    print()
    print(big.table())
    # N-to-1 collection is far cheaper than vanilla's N-to-N gossip and
    # grows linearly, not quadratically, with the cluster
    assert small.initiator_in_per_epoch < small.heartbeat_gossip_per_epoch
    assert big.initiator_in_per_epoch < big.heartbeat_gossip_per_epoch / 4
    growth = big.initiator_in_per_epoch / small.initiator_in_per_epoch
    assert growth < 16 / 5 + 0.5  # ~linear in n_mds
    # decisions are rare and small compared to the stats stream
    assert small.initiator_out_per_epoch < small.initiator_in_per_epoch * 5
    # per-inode bookkeeping is a few bytes (paper: ~1.37% memory overhead)
    assert small.stats_bytes_per_inode < 128


def _timed_run(record: bool, seed: int) -> tuple[float, object]:
    cfg = ExperimentConfig(workload="mdtest", balancer="lunule", n_clients=12,
                           seed=seed, scale=0.4,
                           sim=BENCH_SIM_CONFIG.with_(record=record))
    start = time.perf_counter()
    _, sim = run_traced(cfg)
    return time.perf_counter() - start, sim


def test_flight_recorder_overhead(benchmark, seed):
    """Recording costs <5% wall clock; the recorder-off path costs ~0.

    Interleaved best-of-N timing: each mode keeps its fastest of five
    runs, which discards scheduler noise instead of averaging it in. The
    off path needs no separate assertion — it *is* the baseline every
    other benchmark in this suite times.
    """
    rounds = 5
    disabled, recorded = [], []
    sim = None
    for _ in range(rounds):
        t_off, _ = _timed_run(False, seed)
        disabled.append(t_off)
        t_on, sim = _timed_run(True, seed)
        recorded.append(t_on)
    benchmark.pedantic(_timed_run, args=(True, seed), rounds=1, iterations=1)

    best_off, best_on = min(disabled), min(recorded)
    overhead = best_on / best_off - 1.0
    print(f"\nflight recorder: off {best_off * 1e3:.1f} ms, "
          f"on {best_on * 1e3:.1f} ms, overhead {overhead * 100:.2f}%")
    # the recorder actually did its job during the timed runs
    assert sim.recorder is not None
    assert sim.recorder.samples > 0
    assert len(sim.recorder.spans) > 0
    # ...and provenance ids were threaded through the whole run
    assert sim.decision_ids.allocated > 0
    assert any(getattr(e, "did", -1) >= 0
               for e in sim.trace.events("migration_planned"))
    # <5% relative, with a 2 ms absolute floor so micro-runs don't flake
    assert best_on <= best_off * 1.05 + 0.002, (
        f"flight recorder overhead {overhead:.1%} exceeds the 5% budget")
