"""Overhead accounting (paper §3.4): Lunule's control plane is cheap."""

from repro.experiments.overhead import measure_overhead


def test_overhead_accounting(benchmark, seed):
    small = benchmark.pedantic(measure_overhead, args=(5,),
                               kwargs={"seed": seed}, rounds=1, iterations=1)
    big = measure_overhead(16, seed=seed)
    print()
    print(small.table())
    print()
    print(big.table())
    # N-to-1 collection is far cheaper than vanilla's N-to-N gossip and
    # grows linearly, not quadratically, with the cluster
    assert small.initiator_in_per_epoch < small.heartbeat_gossip_per_epoch
    assert big.initiator_in_per_epoch < big.heartbeat_gossip_per_epoch / 4
    growth = big.initiator_in_per_epoch / small.initiator_in_per_epoch
    assert growth < 16 / 5 + 0.5  # ~linear in n_mds
    # decisions are rare and small compared to the stats stream
    assert small.initiator_out_per_epoch < small.initiator_in_per_epoch * 5
    # per-inode bookkeeping is a few bytes (paper: ~1.37% memory overhead)
    assert small.stats_bytes_per_inode < 128
