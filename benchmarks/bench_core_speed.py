"""Core serve-path engine benchmark: scalar vs columnar, plus scale proof.

Emits ``BENCH_core.json`` — the first entry in the repository's perf
trajectory. Each shape runs under both engines with a full decision trace
and asserts the traces are **byte-identical** before reporting a speedup:
a number only counts if the columnar engine made exactly the decisions
the scalar reference would have made.

Shapes:

- the exact Figure-13a scalability points (mdtest/lunule, ``n_clients =
  4 * n_mds``) — honest numbers on the paper's own configuration, where
  think-time jitter and the epoch-boundary policy path bound the
  achievable speedup (Amdahl: only ~25 ops arrive per client-tick);
- a serve-heavy Figure-13-family shape (capacity 1000, 50k creates,
  near-zero jitter) where the serve path dominates and the columnar
  engine clears 10x;
- a 64-rank, >= 1M-directory run (columnar only) that completes
  end-to-end — infeasible before the columnar serve path and the sparse
  candidate/stats paths landed.

Usage::

    PYTHONPATH=src python benchmarks/bench_core_speed.py            # full
    PYTHONPATH=src python benchmarks/bench_core_speed.py --smoke    # CI
    ... --check-speedup 2.0   # exit nonzero if the headline shape misses
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.balancers import make_balancer  # noqa: E402
from repro.cluster.simulator import SimConfig, Simulator  # noqa: E402
from repro.experiments.config import BENCH_SIM_CONFIG, ExperimentConfig  # noqa: E402
from repro.experiments.runner import run_traced  # noqa: E402
from repro.namespace.builder import BuiltNamespace  # noqa: E402
from repro.workloads.base import OP_CREATE, RepeatOps, Workload  # noqa: E402

SCHEMA = "repro-bench-core/v1"


def fig13a_config(n_mds: int, *, engine: str, creates: int | None = None,
                  capacity: float | None = None,
                  jitter: float | None = None) -> ExperimentConfig:
    """The Figure-13a cell for ``n_mds`` ranks, optionally reshaped."""
    sim = BENCH_SIM_CONFIG.with_(n_mds=n_mds, engine=engine)
    if capacity is not None:
        sim = sim.with_(mds_capacity=capacity)
    overrides: dict = {
        "creates_per_client": creates if creates is not None
        else max(500, round(1000 + 200 * n_mds)),
    }
    if jitter is not None:
        overrides["jitter"] = jitter
    return ExperimentConfig(workload="mdtest", balancer="lunule",
                            n_clients=4 * n_mds, seed=7, scale=1.0,
                            sim=sim, workload_overrides=overrides)


def timed_run(cfg: ExperimentConfig) -> dict:
    t0 = time.perf_counter()
    result, sim = run_traced(cfg)
    seconds = time.perf_counter() - t0
    epochs = len(result.epoch_ticks)
    return {
        "seconds": round(seconds, 4),
        "ticks": sim.tick,
        "epochs": epochs,
        "epochs_per_sec": round(epochs / seconds, 3) if seconds > 0 else None,
        "meta_ops": result.meta_ops,
        "_trace": sim.trace.dumps(),
    }


def run_shape(name: str, mk_cfg, *, note: str = "") -> dict:
    """Run one shape under both engines and verify trace equality."""
    print(f"[{name}] scalar ...", flush=True)
    scalar = timed_run(mk_cfg("scalar"))
    print(f"[{name}] columnar ...", flush=True)
    columnar = timed_run(mk_cfg("columnar"))
    equal = scalar.pop("_trace") == columnar.pop("_trace")
    speedup = (round(scalar["seconds"] / columnar["seconds"], 2)
               if columnar["seconds"] > 0 else None)
    entry = {
        "name": name,
        "note": note,
        "config": describe(mk_cfg("columnar")),
        "scalar": scalar,
        "columnar": columnar,
        "speedup": speedup,
        "traces_equal": equal,
    }
    print(f"[{name}] scalar {scalar['seconds']}s columnar "
          f"{columnar['seconds']}s speedup {speedup}x equal={equal}",
          flush=True)
    return entry


def describe(cfg: ExperimentConfig) -> dict:
    sim = cfg.sim
    return {
        "workload": cfg.workload,
        "balancer": cfg.balancer,
        "n_clients": cfg.n_clients,
        "seed": cfg.seed,
        "n_mds": sim.n_mds,
        "mds_capacity": sim.mds_capacity,
        "epoch_len": sim.epoch_len,
        "max_ticks": sim.max_ticks,
        "workload_overrides": cfg.workload_overrides or {},
    }


class MegaTreeWorkload(Workload):
    """Create clients on a million-directory namespace.

    Each client creates into its own private directory (the mdtest
    pattern); the rest of the namespace is a wide two-level cold fanout
    that the authority, stats, and candidate layers must carry every
    epoch. Defined bench-locally: the paper's workloads never need a
    tree this large.
    """

    name = "megatree"
    paper_meta_ratio = 1.0

    def __init__(self, n_clients: int, *, n_cold_dirs: int = 1_000_000,
                 creates_per_client: int = 1500, jitter: float = 0.005) -> None:
        super().__init__(n_clients, jitter=jitter)
        self.n_cold_dirs = n_cold_dirs
        self.creates_per_client = creates_per_client

    def build_namespace(self, tree, seed):
        dirs = [tree.add_dir(0, f"mega{i}") for i in range(self.n_clients)]
        cold_root = tree.add_dir(0, "cold")
        fanout = 1000
        for i in range(self.n_cold_dirs // fanout):
            p = tree.add_dir(cold_root, f"c{i}")
            for j in range(fanout):
                tree.add_dir(p, f"d{j}")
        return BuiltNamespace(tree, 0, dirs, [0] * len(dirs))

    def client_ops(self, built, client_index, seed):
        return RepeatOps((OP_CREATE, built.dirs[client_index], -1, 0),
                         self.creates_per_client)


def run_mega(*, n_mds: int = 64, n_clients: int = 256,
             n_cold_dirs: int = 1_000_000, creates: int = 1500) -> dict:
    print(f"[mega{n_mds}_1m] building {n_cold_dirs}+ dirs ...", flush=True)
    t0 = time.perf_counter()
    instance = MegaTreeWorkload(
        n_clients, n_cold_dirs=n_cold_dirs,
        creates_per_client=creates).materialize(seed=7)
    build_s = time.perf_counter() - t0
    sim_cfg = SimConfig(n_mds=n_mds, mds_capacity=100.0, epoch_len=10,
                        max_ticks=20_000, migration_rate=50,
                        engine="columnar")
    t0 = time.perf_counter()
    sim = Simulator(instance, make_balancer("lunule"), sim_cfg)
    result = sim.run()
    seconds = time.perf_counter() - t0
    epochs = len(result.epoch_ticks)
    done = len(result.completion_ticks)
    entry = {
        "name": f"mega{n_mds}_1m",
        "note": "64-rank, million-directory end-to-end run (columnar only; "
                "the dense scalar-era policy path made this infeasible)",
        "config": {
            "workload": "megatree", "balancer": "lunule",
            "n_clients": n_clients, "n_mds": n_mds,
            "n_dirs": instance.tree.n_dirs, "mds_capacity": 100.0,
            "epoch_len": 10, "creates_per_client": creates, "seed": 7,
        },
        "columnar": {
            "build_seconds": round(build_s, 2),
            "seconds": round(seconds, 2),
            "ticks": sim.tick,
            "epochs": epochs,
            "epochs_per_sec": round(epochs / seconds, 3),
            "meta_ops": result.meta_ops,
            "clients_done": done,
        },
        "completed_end_to_end": done == n_clients,
    }
    print(f"[mega{n_mds}_1m] {instance.tree.n_dirs} dirs, {sim.tick} ticks, "
          f"{seconds:.1f}s, clients_done={done}/{n_clients}", flush=True)
    return entry


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_core.json",
                    help="output JSON path (default: ./BENCH_core.json)")
    ap.add_argument("--smoke", action="store_true",
                    help="small CI shape only (one fig13 point, no mega run)")
    ap.add_argument("--check-speedup", type=float, default=None, metavar="X",
                    help="exit 1 unless the headline shape reaches X x")
    args = ap.parse_args(argv)

    entries: list[dict] = []
    if args.smoke:
        entries.append(run_shape(
            "smoke_n4",
            lambda e: fig13a_config(4, engine=e, creates=800),
            note="CI smoke shape: fig13a n=4 with 800 creates/client"))
        headline = entries[-1]
    else:
        for n in (4, 8, 16):
            entries.append(run_shape(
                f"fig13a_n{n}", lambda e, n=n: fig13a_config(n, engine=e),
                note="exact Figure-13a cell; jitter-bound (see note above)"))
        entries.append(run_shape(
            "fig13_serveheavy_n8",
            lambda e: fig13a_config(8, engine=e, creates=50_000,
                                    capacity=1000.0, jitter=0.005),
            note="serve-path-dominated fig13 shape: capacity 1000, 50k "
                 "creates/client, jitter 0.005 — the headline speedup"))
        headline = entries[-1]
        entries.append(run_mega())

    doc = {
        "schema": SCHEMA,
        "headline": headline["name"],
        "entries": entries,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    print(f"wrote {out}")

    bad = [e["name"] for e in entries if e.get("traces_equal") is False]
    if bad:
        print(f"TRACE DIVERGENCE in {bad}; speedups are void", file=sys.stderr)
        return 1
    if args.check_speedup is not None:
        got = headline.get("speedup") or 0.0
        if got < args.check_speedup:
            print(f"headline speedup {got}x < required "
                  f"{args.check_speedup}x", file=sys.stderr)
            return 1
    if not args.smoke and not entries[-1]["completed_end_to_end"]:
        print("mega run did not complete end-to-end", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
