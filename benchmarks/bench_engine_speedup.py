"""The parallel experiment engine: serial equivalence and wall-clock gain.

The Fig. 6/7 evaluation grid (5 workloads x 4 balancers) is embarrassingly
parallel once experiments are closed configs; 4 workers should cut its
wall-clock at least in half while reproducing the serial results exactly.
"""

import os
import time

import pytest

from repro.experiments import figures


@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs >= 4 CPUs")
def test_engine_speedup_on_eval_matrix(benchmark, scale, seed):
    t0 = time.perf_counter()
    serial = figures.eval_matrix(scale=scale, seed=seed, workers=1)
    serial_s = time.perf_counter() - t0

    parallel = {}

    def sweep():
        parallel.update(figures.eval_matrix(scale=scale, seed=seed, workers=4))
        return parallel

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.total

    assert list(parallel) == list(serial)
    assert parallel == serial

    print()
    print(f"  serial {serial_s:.2f}s, 4 workers {parallel_s:.2f}s "
          f"({serial_s / max(parallel_s, 1e-9):.2f}x)")
    assert parallel_s <= serial_s / 2.0, (
        f"expected >= 2x speedup, got {serial_s / max(parallel_s, 1e-9):.2f}x")
