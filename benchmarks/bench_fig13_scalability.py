"""Figure 13: MDS scalability (a) and the Dir-Hash comparison (b)."""

from conftest import run_and_print
from repro.experiments import figures


def test_fig13a_scalability(benchmark, scale, seed):
    res = run_and_print(benchmark, figures.fig13a_scalability, scale, seed,
                        workers=4)
    peaks = res.data["peaks"]
    sizes = sorted(peaks)
    # peak throughput grows monotonically with cluster size...
    for a, b in zip(sizes, sizes[1:]):
        assert peaks[b] > peaks[a]
    # ...and 16 MDSs keep at least half of linear scaling efficiency
    assert peaks[16] > 0.5 * 16 * peaks[1]


def test_fig13b_dirhash_throughput(benchmark, scale, seed, web_three_way):
    res = run_and_print(benchmark, figures.fig13b_dirhash_throughput, scale,
                        seed, results=web_three_way)
    rows = {r[0]: r for r in res.data["rows"]}
    # Lunule's sustained web throughput at least matches both baselines
    assert rows["lunule"][1] >= rows["dirhash"][1] * 0.95
    assert rows["lunule"][1] >= rows["vanilla"][1] * 0.95
