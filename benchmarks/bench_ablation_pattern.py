"""Ablation: sibling spatial correlation in the Pattern Analyzer (§3.3).

Scan workloads rely on the sibling bonus to give unvisited directories a
non-zero migration index before the scan reaches them.
"""

from repro.cluster.simulator import SimConfig, Simulator
from repro.core.balancer import LunuleBalancer
from repro.workloads import CnnWorkload


def _run(sibling_probability: float, seed: int):
    wl = CnnWorkload(16, n_dirs=80, files_per_dir=30, jitter=0.05)
    cfg = SimConfig(n_mds=5, mds_capacity=100, epoch_len=10, max_ticks=10000,
                    migration_rate=80, sibling_probability=sibling_probability)
    return Simulator(wl.materialize(seed=seed), LunuleBalancer(), cfg).run()


def test_ablation_sibling_correlation(benchmark, seed):
    res_on = benchmark.pedantic(_run, args=(0.5, seed), rounds=1, iterations=1)
    res_off = _run(0.0, seed)
    print(f"\nsibling ON : IF={res_on.mean_if(2):.3f} done@{res_on.finished_tick}")
    print(f"sibling OFF: IF={res_off.mean_if(2):.3f} done@{res_off.finished_tick}")
    # the bonus must not hurt, and should help balance the scan
    assert res_on.mean_if(2) <= res_off.mean_if(2) * 1.1
    assert res_on.finished_tick <= res_off.finished_tick * 1.1
