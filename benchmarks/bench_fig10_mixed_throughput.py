"""Figure 10: per-MDS throughput over time, mixed workload."""

import numpy as np

from conftest import run_and_print
from repro.experiments import figures


def test_fig10_mixed_throughput(benchmark, scale, seed, mixed_runs):
    res = run_and_print(benchmark, figures.fig10_mixed_throughput, scale, seed,
                        runs=mixed_runs)
    # Lunule's balanced state translates into at least vanilla's aggregate
    lun = np.mean(res.data["lunule"]["agg"])
    van = np.mean(res.data["vanilla"]["agg"])
    assert lun >= van * 0.95
    # per-MDS spread tighter under lunule over the middle half of the run
    def mid_spread(key):
        mat = res.data[key]["per_mds"]
        lo, hi = len(mat) // 4, 3 * len(mat) // 4
        return float(np.mean([np.std(row) for row in mat[lo:hi]]))

    assert mid_spread("lunule") <= mid_spread("vanilla") * 1.2
