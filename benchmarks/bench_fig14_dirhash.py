"""Figure 14: Dir-Hash inode vs request distribution and forwards."""

import numpy as np

from conftest import run_and_print
from repro.experiments import figures


def test_fig14_dirhash_distribution(benchmark, scale, seed, web_three_way):
    res = run_and_print(benchmark, figures.fig14_dirhash_distribution, scale,
                        seed, results=web_three_way)
    inode = np.array(res.data["inode_share"])
    req = np.array(res.data["request_share"])
    # inodes spread almost evenly (Fig. 14a)
    assert inode.max() / max(inode.min(), 1e-9) < 2.5
    # requests spread worse than inodes (Fig. 14b)
    assert req.max() / max(req.min(), 1e-9) > inode.max() / max(inode.min(), 1e-9)
    # forwards: hashing destroys path locality (paper: ~2x)
    fw = res.data["forwards"]
    assert fw["dirhash"] > fw["lunule"]
