"""Design-parameter sweeps: epoch length and IF trigger threshold.

DESIGN.md calls out both as load-bearing defaults (epoch 10 s from the
paper; IF threshold 0.075 calibrated here). The sweeps show the defaults
sit in the efficient region rather than on a cliff.

Both sweeps are expressed as :class:`ExperimentConfig` grids on the
process-pool engine — the shared default point (epoch 10 s, threshold
0.075) is hashed identically by both, so the engine's result cache runs
it once across the two sweeps.
"""

from repro.core.initiator import InitiatorConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine
from repro.cluster.simulator import SimConfig

_ENGINE = ExperimentEngine(workers=4)


def _cfg(epoch_len: int, if_threshold: float, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        workload="zipf", balancer="lunule", n_clients=16, seed=seed,
        sim=SimConfig(n_mds=5, mds_capacity=100, epoch_len=epoch_len,
                      max_ticks=20_000),
        workload_overrides={"files_per_dir": 200, "reads_per_client": 1500},
        balancer_kwargs={"config": InitiatorConfig(if_threshold=if_threshold)},
    )


def test_epoch_length_sweep(benchmark, seed):
    epoch_lens = (5, 10, 20, 40)
    results = {}

    def sweep():
        runs = _ENGINE.run([_cfg(e, 0.075, seed) for e in epoch_lens])
        results.update(zip(epoch_lens, runs))
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for e, res in results.items():
        print(f"  epoch={e:2d}s: done@{res.finished_tick} "
              f"IF={res.mean_if(2):.3f} migrated={res.migrated_series[-1]}")
    # the paper's 10 s default is within 25% of the best completion time
    best = min(r.finished_tick for r in results.values())
    assert results[10].finished_tick <= best * 1.25


def test_if_threshold_sweep(benchmark, seed):
    thresholds = (0.02, 0.075, 0.3)
    results = {}

    def sweep():
        runs = _ENGINE.run([_cfg(10, t, seed) for t in thresholds])
        results.update(zip(thresholds, runs))
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for t, res in results.items():
        print(f"  threshold={t:5.3f}: done@{res.finished_tick} "
              f"IF={res.mean_if(2):.3f} migrated={res.migrated_series[-1]}")
    # too high a threshold tolerates harmful imbalance: worse balance than
    # the default; too low migrates more for little gain
    assert results[0.3].mean_if(2) >= results[0.075].mean_if(2)
    assert results[0.02].migrated_series[-1] >= results[0.075].migrated_series[-1]
