"""Design-parameter sweeps: epoch length and IF trigger threshold.

DESIGN.md calls out both as load-bearing defaults (epoch 10 s from the
paper; IF threshold 0.075 calibrated here). The sweeps show the defaults
sit in the efficient region rather than on a cliff.
"""

from repro.cluster.simulator import SimConfig, Simulator
from repro.core.balancer import LunuleBalancer
from repro.core.initiator import InitiatorConfig
from repro.workloads import ZipfWorkload


def _run(epoch_len: int, if_threshold: float, seed: int):
    wl = ZipfWorkload(16, files_per_dir=200, reads_per_client=1500)
    cfg = SimConfig(n_mds=5, mds_capacity=100, epoch_len=epoch_len,
                    max_ticks=20_000)
    bal = LunuleBalancer(InitiatorConfig(if_threshold=if_threshold))
    return Simulator(wl.materialize(seed=seed), bal, cfg).run()


def test_epoch_length_sweep(benchmark, seed):
    results = {}

    def sweep():
        for epoch_len in (5, 10, 20, 40):
            results[epoch_len] = _run(epoch_len, 0.075, seed)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for e, res in results.items():
        print(f"  epoch={e:2d}s: done@{res.finished_tick} "
              f"IF={res.mean_if(2):.3f} migrated={res.migrated_series[-1]}")
    # the paper's 10 s default is within 25% of the best completion time
    best = min(r.finished_tick for r in results.values())
    assert results[10].finished_tick <= best * 1.25


def test_if_threshold_sweep(benchmark, seed):
    results = {}

    def sweep():
        for thr in (0.02, 0.075, 0.3):
            results[thr] = _run(10, thr, seed)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for t, res in results.items():
        print(f"  threshold={t:5.3f}: done@{res.finished_tick} "
              f"IF={res.mean_if(2):.3f} migrated={res.migrated_series[-1]}")
    # too high a threshold tolerates harmful imbalance: worse balance than
    # the default; too low migrates more for little gain
    assert results[0.3].mean_if(2) >= results[0.075].mean_if(2)
    assert results[0.02].migrated_series[-1] >= results[0.075].migrated_series[-1]
