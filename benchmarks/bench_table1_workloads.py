"""Table 1: workload characteristics and metadata-op ratios."""

from conftest import run_and_print
from repro.experiments import figures


def test_table1_workloads(benchmark, scale, seed):
    res = run_and_print(benchmark, figures.table1_workloads, scale, seed)
    rows = {r[0]: r for r in res.data["rows"]}
    # measured metadata ratios must track the paper's column
    assert abs(rows["zipf"][4] - 0.50) < 0.02
    assert abs(rows["web"][4] - 0.572) < 0.03
    assert rows["mdtest"][4] == 1.0
    assert rows["cnn"][4] > 0.70
    assert rows["nlp"][4] > 0.75
