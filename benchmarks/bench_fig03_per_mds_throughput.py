"""Figure 3: per-MDS IOPS time series under Vanilla (Zipf, CNN)."""


from conftest import run_and_print
from repro.experiments import figures


def test_fig3_per_mds_throughput(benchmark, scale, seed):
    res = run_and_print(benchmark, figures.fig3_per_mds_throughput, scale, seed)
    for name in ("zipf", "cnn"):
        mat = res.data[name]["per_mds"]
        # load starts concentrated: the first epoch has one dominant MDS
        first = mat[0]
        assert first.max() > 0.9 * first.sum()
