"""Figure 8: end-to-end job completion time with data access enabled."""

from conftest import run_and_print
from repro.experiments import figures


def test_fig8_end_to_end(benchmark, scale, seed):
    res = run_and_print(benchmark, figures.fig8_end_to_end, scale, seed)
    jct = res.data["jct"]
    # Lunule shortens JCT for the scan workloads; Zipf is already at the
    # balanced optimum under both, so we only require parity there
    for w in ("cnn", "nlp"):
        assert jct[w]["lunule"] < jct[w]["vanilla"], w
    assert jct["zipf"]["lunule"] < jct["zipf"]["vanilla"] * 1.05
    # ...while the web gain is diluted by the data path (paper: "limited")
    web_gain = 1.0 - jct["web"]["lunule"] / jct["web"]["vanilla"]
    cnn_gain = 1.0 - jct["cnn"]["lunule"] / jct["cnn"]["vanilla"]
    assert web_gain < cnn_gain + 0.05
