"""Figure 11: job completion time CDF, mixed workload."""

from conftest import run_and_print
from repro.experiments import figures


def test_fig11_jct_cdf(benchmark, scale, seed, mixed_runs):
    res = run_and_print(benchmark, figures.fig11_jct_cdf, scale, seed,
                        runs=mixed_runs)
    lun = res.data["lunule"]["percentiles"]
    van = res.data["vanilla"]["percentiles"]
    # the tail benefits most (paper: 99th percentile 1.42x better)
    assert lun[99] < van[99]
    assert lun[80] <= van[80] * 1.02
