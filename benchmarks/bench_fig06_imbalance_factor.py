"""Figure 6: imbalance factor per workload x balancer (lower is better)."""

from conftest import run_and_print
from repro.experiments import figures


def test_fig6_imbalance_factor(benchmark, scale, seed, eval_matrix):
    res = run_and_print(benchmark, figures.fig6_imbalance_factor, scale, seed,
                        matrix=eval_matrix)
    rows = {r[0]: r for r in res.data["rows"]}
    # column order: workload, vanilla, greedyspill, lunule-light, lunule, red%
    for w, r in rows.items():
        vanilla, greedy, light, lunule = r[1], r[2], r[3], r[4]
        assert lunule <= vanilla, f"{w}: lunule must beat vanilla"
        assert lunule <= greedy, f"{w}: lunule must beat greedyspill"
    # scan workloads need the workload-aware selector: light lags lunule
    assert rows["cnn"][4] < rows["cnn"][3]
    # GreedySpill is the worst baseline on the skewed benchmark workloads
    assert rows["zipf"][2] > rows["zipf"][1]
    assert rows["mdtest"][2] > rows["mdtest"][1]
    # average IF reduction vs vanilla in the paper's 17.9-90.4% band
    for w, r in rows.items():
        assert r[5] > 15.0, f"{w}: expected >15% IF reduction, got {r[5]:.1f}"
