"""Chaos robustness ranking: which balancer survives disturbance best.

Sweeps bundled chaos scenarios across seeds x balancers, aggregates the
robustness scores (recovery epochs, aborted-inode waste, IF overshoot
area — see ``repro.chaos.score``) and writes the ranked table to
``BENCH_chaos.json`` next to the printed report. This is the paper's
Fig. 12 question asked adversarially: not "does the balancer converge"
but "how fast does it re-converge after we hurt the cluster, and how
much work does it waste doing so".
"""

import json

from repro.experiments.chaos import run_chaos

SEEDS = (1, 5, 9)
BALANCERS = ("vanilla", "greedyspill", "lunule")
SCENARIOS = ("flap", "blackout", "storm")


def _aggregate(reports: list[dict]) -> dict:
    """Mean robustness metrics over one balancer's runs."""
    recoveries = [r["score"]["mean_recovery_epochs"] for r in reports]
    known = [x for x in recoveries if x is not None]
    return {
        "runs": len(reports),
        "mean_recovery_epochs": (round(sum(known) / len(known), 4)
                                 if known else None),
        "unrecovered_faults": sum(r["score"]["unrecovered_faults"]
                                  for r in reports),
        "aborted_inodes": sum(r["score"]["aborted_inodes"] for r in reports),
        "aborted_tasks": sum(r["score"]["aborted_tasks"] for r in reports),
        "if_overshoot_area": round(sum(r["score"]["if_overshoot_area"]
                                       for r in reports), 4),
        "mean_if": round(sum(r["run"]["mean_if"] for r in reports)
                         / len(reports), 4),
        "mean_finished_tick": round(sum(r["run"]["finished_tick"]
                                        for r in reports) / len(reports), 1),
    }


def test_chaos_robustness_ranking(benchmark):
    by_balancer: dict[str, list[dict]] = {b: [] for b in BALANCERS}

    def sweep():
        for scenario in SCENARIOS:
            for seed in SEEDS:
                for b in BALANCERS:
                    report, _, _ = run_chaos(scenario, seed=seed, balancer=b)
                    by_balancer[b].append(report)
        return by_balancer

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    agg = {b: _aggregate(reports) for b, reports in by_balancer.items()}
    # rank by disturbance absorbed: overshoot area first (integrated extra
    # imbalance), then wasted work, then mean IF
    ranked = sorted(
        BALANCERS,
        key=lambda b: (agg[b]["if_overshoot_area"],
                       agg[b]["aborted_inodes"], agg[b]["mean_if"]))

    print()
    print(f"  chaos robustness — {len(SCENARIOS)} scenarios x "
          f"{len(SEEDS)} seeds ({', '.join(SCENARIOS)}; "
          f"seeds {', '.join(map(str, SEEDS))})")
    header = (f"  {'balancer':<12} {'overshoot':>9} {'waste-inodes':>12} "
              f"{'aborts':>6} {'recovery-ep':>11} {'mean IF':>8}")
    print(header)
    for b in ranked:
        a = agg[b]
        rec = ("never" if a["mean_recovery_epochs"] is None
               else f"{a['mean_recovery_epochs']:.2f}")
        print(f"  {b:<12} {a['if_overshoot_area']:>9.3f} "
              f"{a['aborted_inodes']:>12d} {a['aborted_tasks']:>6d} "
              f"{rec:>11} {a['mean_if']:>8.3f}")

    out = {
        "schema": 1,
        "scenarios": list(SCENARIOS),
        "seeds": list(SEEDS),
        "ranking": ranked,
        "aggregates": agg,
    }
    with open("BENCH_chaos.json", "w", encoding="utf-8", newline="\n") as fh:
        json.dump(out, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("  wrote BENCH_chaos.json")

    # every cell ran, and faults actually fired everywhere
    assert all(len(v) == len(SCENARIOS) * len(SEEDS)
               for v in by_balancer.values())
    for reports in by_balancer.values():
        assert all(r["faults_injected"] > 0 for r in reports)
        assert all(r["faults_injected"] == r["faults_cleared"]
                   for r in reports)
    # an active balancer under chaos should still balance better than
    # vanilla's greedy all-or-nothing: lunule must not rank last
    assert ranked[-1] != "lunule"
