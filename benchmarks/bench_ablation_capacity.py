"""Ablation: the per-epoch migration capacity cap of Algorithm 1.

Removing the cap re-creates vanilla's over-migration: the exporter plans
its whole excess at once, the transfer lags, and the loads ping-pong.
"""

from repro.cluster.simulator import SimConfig, Simulator
from repro.core.balancer import LunuleBalancer
from repro.core.initiator import InitiatorConfig
from repro.workloads import ZipfWorkload


def _run(cap_fraction: float, seed: int):
    wl = ZipfWorkload(20, files_per_dir=200, reads_per_client=1500)
    cfg = SimConfig(n_mds=5, mds_capacity=100, epoch_len=10, max_ticks=8000,
                    migration_rate=40)  # slow transfers stress the cap
    bal = LunuleBalancer(InitiatorConfig(cap_fraction=cap_fraction))
    return Simulator(wl.materialize(seed=seed), bal, cfg).run()


def test_ablation_migration_cap(benchmark, seed):
    res_capped = benchmark.pedantic(_run, args=(1.0, seed), rounds=1, iterations=1)
    res_uncapped = _run(100.0, seed)
    print(f"\ncap 1.0C  : migrated={res_capped.migrated_series[-1]}"
          f" IF={res_capped.mean_if(2):.3f} done@{res_capped.finished_tick}")
    print(f"uncapped  : migrated={res_uncapped.migrated_series[-1]}"
          f" IF={res_uncapped.mean_if(2):.3f} done@{res_uncapped.finished_tick}")
    assert res_capped.finished_tick <= res_uncapped.finished_tick * 1.1
