"""Figure 4: cumulative migrated inodes under Vanilla (Zipf, CNN)."""

from conftest import run_and_print
from repro.experiments import figures


def test_fig4_migrated_inodes(benchmark, scale, seed):
    res = run_and_print(benchmark, figures.fig4_migrated_inodes, scale, seed)
    for name in ("zipf", "cnn"):
        series = res.data[name]["migrated"]
        # vanilla migrates continuously (the paper's eager-migration trend)
        assert series[-1] > 0
        assert all(b >= a for a, b in zip(series, series[1:]))  # cumulative
