"""Figure 12: dynamic adaptation — cluster expansion and client growth."""

from conftest import run_and_print
from repro.experiments import figures


def test_fig12a_cluster_expansion(benchmark, scale, seed):
    res = run_and_print(benchmark, figures.fig12a_cluster_expansion, scale, seed)
    phases = res.data["phases"]
    # each added MDS raises the sustained aggregate throughput
    assert phases[1][1] > phases[0][1]
    assert phases[2][1] > phases[0][1]


def test_fig12b_client_growth(benchmark, scale, seed):
    res = run_and_print(benchmark, figures.fig12b_client_growth, scale, seed)
    rows = res.data["rows"]
    # throughput grows with each client wave...
    means = [r[1] for r in rows]
    assert all(b > a for a, b in zip(means, means[1:]))
    # ...and the lightly loaded first phase triggers little migration
    # (urgency tolerates benign imbalance, paper §4.5)
    assert rows[0][2] <= rows[-1][2] + 1
