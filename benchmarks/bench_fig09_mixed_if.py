"""Figure 9: imbalance factor over time, mixed workload."""

from conftest import run_and_print
from repro.experiments import figures


def test_fig9_mixed_if(benchmark, scale, seed, mixed_runs):
    res = run_and_print(benchmark, figures.fig9_mixed_if, scale, seed,
                        runs=mixed_runs)
    import numpy as np
    lun = np.mean(res.data["lunule"]["if"][2:])
    van = np.mean(res.data["vanilla"]["if"][2:])
    assert lun < van
