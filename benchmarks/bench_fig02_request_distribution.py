"""Figure 2: per-MDS request shares under CephFS-Vanilla."""

import numpy as np

from conftest import run_and_print
from repro.experiments import figures


def test_fig2_request_distribution(benchmark, scale, seed):
    res = run_and_print(benchmark, figures.fig2_request_distribution, scale, seed)
    shares = res.data["shares"]
    # the imbalance phenomenon exists in all workloads (paper §2.2): the
    # busiest MDS serves above the least-loaded one over the lifetime —
    # mildly for Web (the one workload Vanilla handles well, Fig. 6d),
    # clearly for the rest
    for name, share in shares.items():
        ratio = float(np.max(share)) / max(float(np.min(share)), 1e-9)
        floor = 1.1 if name == "web" else 1.25
        assert ratio > floor, f"{name}: max/min share {ratio:.2f}"
