"""Ablation: the urgency term of the IF model (paper Eq. 2).

Without urgency, plain normalized CoV triggers re-balance even when every
MDS idles far below capacity — migrations with no benefit.
"""

from repro.cluster.simulator import SimConfig, Simulator
from repro.core.balancer import LunuleBalancer
from repro.core.initiator import InitiatorConfig
from repro.workloads import ZipfWorkload


def _run(use_urgency: bool, seed: int):
    wl = ZipfWorkload(8, files_per_dir=150, reads_per_client=800, client_rate=3)
    cfg = SimConfig(n_mds=5, mds_capacity=100, epoch_len=10, max_ticks=8000,
                    migration_rate=80)
    bal = LunuleBalancer(InitiatorConfig(use_urgency=use_urgency))
    return Simulator(wl.materialize(seed=seed), bal, cfg).run()


def test_ablation_urgency(benchmark, seed):
    res_with = benchmark.pedantic(_run, args=(True, seed), rounds=1, iterations=1)
    res_without = _run(False, seed)
    print(f"\nurgency ON : migrated={res_with.migrated_series[-1]}"
          f" done@{res_with.finished_tick}")
    print(f"urgency OFF: migrated={res_without.migrated_series[-1]}"
          f" done@{res_without.finished_tick}")
    # benign imbalance tolerated: far fewer migrations with urgency on
    assert res_with.migrated_series[-1] < res_without.migrated_series[-1]
    # and tolerating it does not hurt completion time materially
    assert res_with.finished_tick <= res_without.finished_tick * 1.15
