"""Seed robustness of the headline result.

Every other bench runs at one seed; this one re-runs the CNN comparison
(the paper's flagship workload) across several seeds and requires the
ordering Lunule < Lunule-Light < Vanilla to hold in aggregate, not by luck.
"""

from repro.cluster.simulator import SimConfig, Simulator
from repro.balancers import make_balancer
from repro.workloads import CnnWorkload

SEEDS = (3, 7, 11, 19)


def _run(balancer: str, seed: int):
    wl = CnnWorkload(16, n_dirs=80, files_per_dir=30, jitter=0.05)
    cfg = SimConfig(n_mds=5, mds_capacity=100, epoch_len=10, max_ticks=20_000)
    return Simulator(wl.materialize(seed=seed), make_balancer(balancer), cfg).run()


def test_cnn_ordering_across_seeds(benchmark):
    results = {}

    def sweep():
        for seed in SEEDS:
            for b in ("vanilla", "lunule-light", "lunule"):
                results[(b, seed)] = _run(b, seed)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    wins_vs_vanilla = wins_vs_light = 0
    for seed in SEEDS:
        v = results[("vanilla", seed)]
        li = results[("lunule-light", seed)]
        lu = results[("lunule", seed)]
        print(f"  seed {seed:2d}: vanilla IF={v.mean_if(2):.3f}/{v.finished_tick}"
              f"  light IF={li.mean_if(2):.3f}/{li.finished_tick}"
              f"  lunule IF={lu.mean_if(2):.3f}/{lu.finished_tick}")
        wins_vs_vanilla += lu.finished_tick < v.finished_tick
        wins_vs_light += lu.finished_tick <= li.finished_tick * 1.05
    # Lunule beats vanilla on every seed; beats/matches light on most
    assert wins_vs_vanilla == len(SEEDS)
    assert wins_vs_light >= len(SEEDS) - 1
    # average IF ordering holds in aggregate
    import numpy as np
    mean_if = {b: np.mean([results[(b, s)].mean_if(2) for s in SEEDS])
               for b in ("vanilla", "lunule-light", "lunule")}
    assert mean_if["lunule"] < mean_if["lunule-light"] < mean_if["vanilla"]
