"""Specimen policy base, mirroring ``repro.balancers.base.Balancer``.

The purity rule keys on the qualified name ``repro.balancers.base.
Balancer`` (see ``repro.lint.config.POLICY_BASE_CLASSES``); the fixture
tree reproduces that path so subclasses below resolve against it.
"""


class Balancer:

    name = "specimen"

    def setup(self, view):
        return None

    def on_epoch(self, view):
        return None
