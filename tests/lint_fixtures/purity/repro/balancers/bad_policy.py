"""Specimens: impure policies the policy-purity rule must flag."""

import random
import time

from repro.balancers.base import Balancer


def spill(view, tag):
    # free function mutating its argument: callers inherit the effect
    view.frags.append(tag)


class MutatingPolicy(Balancer):
    """Writes into the snapshot directly."""

    def on_epoch(self, view):
        view.heat[0] = 99.0
        return None


class TransitivePolicy(Balancer):
    """The mutation hides one call deep."""

    def on_epoch(self, view):
        spill(view, 3)
        return None


class RetainingPolicy(Balancer):
    """Keeps the whole view beyond the epoch."""

    def setup(self, view):
        self.kept = view
        return None


class ClockPolicy(Balancer):
    """Reads the wall clock on the decision path."""

    def on_epoch(self, view):
        self.t0 = time.time()
        return None


class DicePolicy(Balancer):
    """Draws from the process-global RNG."""

    def on_epoch(self, view):
        return random.random()
