"""Specimen: a pure policy the policy-purity rule must accept.

Exercises every allowed pattern near the line: reading the view,
aliasing a single column (allowed — only whole-view retention is
flagged), memo writes to ``self._lazy`` and appends to the ``metrics``
sink (both exempt), and building fresh locals from view data.
"""

from repro.balancers.base import Balancer


def hottest(view):
    best = 0
    for i, h in enumerate(view.heat):
        if h > view.heat[best]:
            best = i
    return best


class PurePolicy(Balancer):

    def __init__(self):
        self.metrics = []
        self._lazy = {}
        self._heat0 = None

    def setup(self, view):
        # column alias: keeps one array, not the snapshot object
        self._heat0 = view.heat
        return None

    def on_epoch(self, view):
        rank = hottest(view)
        self.metrics.append(rank)
        self._lazy[rank] = [h * 2.0 for h in view.heat]
        return rank
