"""Positive fixture: a trace schema with every closure violation."""
from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class TraceEvent:
    etype: ClassVar[str] = "event"


@dataclass(frozen=True)
class Alpha(TraceEvent):
    etype: ClassVar[str] = "alpha"
    epoch: int


@dataclass(frozen=True)
class Beta(TraceEvent):                 # line 18: declared, unregistered,
    etype: ClassVar[str] = "beta"       # and never emitted
    epoch: int


@dataclass(frozen=True)
class Delta(TraceEvent):                # line 24: registered but never emitted
    etype: ClassVar[str] = "delta"
    epoch: int


EVENT_TYPES = {                         # line 29: registers undeclared Missing
    cls.etype: cls
    for cls in (Alpha, Delta, Missing)  # noqa: F821 — deliberately undeclared
}
