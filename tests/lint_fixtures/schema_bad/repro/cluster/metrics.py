"""Positive fixture: a metric name the sanitizer would mangle."""


def observe(registry, n: int) -> None:
    registry.counter("sim ops/served!").inc(n)  # line 5: metric-name
