"""Positive fixture: emits an event type the schema never declared."""
from repro.obs import events
from repro.obs.events import Alpha


def run(log, epoch: int) -> None:
    log.emit(Alpha(epoch=epoch))
    log.emit(events.Gamma(epoch=epoch))  # line 8: trace-schema (undeclared)
