"""Fixture: suppressions that silence nothing are themselves findings."""


def quiet() -> int:
    return 1  # repro-lint: disable=wall-clock


def typo() -> int:
    return 2  # repro-lint: disable=wall-clok
