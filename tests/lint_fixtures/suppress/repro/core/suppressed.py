"""Fixture: a finding silenced by an inline suppression."""
import time


def stamp() -> float:
    return time.time()  # repro-lint: disable=wall-clock
