"""Negative fixture: inequalities and isclose, plus int equality."""
import math


def gate(cov: float) -> float:
    if cov <= 0.0:
        return 0.0
    return cov


def near(a: float, b: float) -> bool:
    return math.isclose(a, b)


def count_ok(n: int) -> bool:
    return n == 0
