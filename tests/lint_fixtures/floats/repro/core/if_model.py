"""Positive fixture: exact float equality in the numeric kernel."""
import math


def gate(cov: float) -> float:
    if cov == 0.0:                      # line 6: float-eq (literal)
        return 0.0
    return cov


def ratio(a: float, b: float) -> bool:
    return a / b != math.sqrt(2.0)      # line 12: float-eq (division/math)
