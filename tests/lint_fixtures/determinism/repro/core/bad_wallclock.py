"""Positive fixture: wall-clock reads inside a deterministic package."""
import time
from datetime import datetime


def stamp() -> float:
    return time.time()          # line 7: wall-clock


def day() -> str:
    return datetime.now().isoformat()  # line 11: wall-clock (via alias map)
