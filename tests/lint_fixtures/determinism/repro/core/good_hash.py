"""Negative fixture: derive_seed is the stable cross-process hash."""
from repro.util.rng import derive_seed


def slot(path: str, n: int) -> int:
    return derive_seed(0, "slot", path) % n


def numeric() -> int:
    return hash(42)  # hashing a literal int is stable
