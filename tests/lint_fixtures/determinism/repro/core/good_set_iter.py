"""Negative fixture: sorted iteration and membership-only sets."""
import os


def order(xs):
    return [x for x in sorted({1, 2, 3})]


def walk(root):
    for entry in sorted(os.listdir(root)):
        yield entry


def member(xs, probe) -> bool:
    return probe in set(xs)
