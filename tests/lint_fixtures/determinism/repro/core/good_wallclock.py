"""Negative fixture: perf_counter is the sanctioned (span-only) clock."""
import time


def span() -> int:
    return time.perf_counter_ns()


def tick_based(tick: int) -> int:
    return tick + 1
