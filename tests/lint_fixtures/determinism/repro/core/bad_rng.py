"""Positive fixture: process-global randomness in a deterministic package."""
import random
import uuid

import numpy as np


def pick(xs):
    return random.choice(xs)    # line 9: global-rng


def tag():
    return uuid.uuid4()         # line 13: global-rng


def noise():
    return np.random.rand()     # line 17: global-rng (module-level numpy)
