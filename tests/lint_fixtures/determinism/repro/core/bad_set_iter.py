"""Positive fixture: unordered iteration feeding a plan."""
import os


def order(xs):
    return [x for x in {1, 2, 3}]       # line 6: unsorted-iter (set literal)


def walk(root):
    for entry in os.listdir(root):      # line 10: unsorted-iter (listing)
        yield entry


def spread(xs):
    for x in set(xs):                   # line 15: unsorted-iter (set() call)
        yield x
