"""Negative fixture: seeded substreams and explicit generators only."""
import numpy as np

from repro.util.rng import substream


def pick(seed: int, n: int) -> int:
    return int(substream(seed, "pick").integers(n))


def explicit(seed: int) -> float:
    return float(np.random.default_rng(seed).random())
