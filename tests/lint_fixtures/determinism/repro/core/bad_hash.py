"""Positive fixture: hash() on a string is salted per process."""


def slot(path: str, n: int) -> int:
    return hash(path) % n               # line 5: str-hash
