"""Specimen: the well-behaved async twin — zero findings.

Async sleeps, awaits issued only after releasing the lock, and a
bounded ``acquire(timeout=...)``.
"""

import asyncio
import threading


class Driver:

    def __init__(self):
        self._lock = threading.Lock()
        self.state = "idle"  # guarded-by: self._lock

    async def drive(self):
        await asyncio.sleep(0.1)
        with self._lock:
            self.state = "running"
        await self.pump()
        got = self._lock.acquire(timeout=1.0)
        if got:
            self._lock.release()
        return None

    async def pump(self):
        return None
