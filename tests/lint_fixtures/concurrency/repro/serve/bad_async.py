"""Specimens: event-loop blockers the async-blocking rule must flag."""

import threading
import time


class Driver:

    def __init__(self):
        self._lock = threading.Lock()

    async def drive(self):
        time.sleep(0.1)
        with self._lock:
            await self.pump()
        self._lock.acquire()
        return None

    async def pump(self):
        return None
