"""Specimens: serve-plane lock-discipline violations for guarded-by."""

import threading


class LeakyService:

    def __init__(self):
        self.lock = threading.Lock()
        self.state = "created"  # guarded-by: self.lock
        self.result = None  # guarded-by: self.lock (sometimes)
        self.count = 0  # guarded-by: none
        self.tally = 0

    def poke(self):
        self.state = "running"
        with self.lock:
            self.state = "paused"
        return self.state

    def bump(self):
        self.tally += 1

    def _advance(self):  # holds-lock: self.lock
        self.state = "done"

    def run(self):
        self._advance()


def handler(service: LeakyService):
    service.state = "crashed"
