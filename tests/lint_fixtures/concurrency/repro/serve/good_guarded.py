"""Specimen: the disciplined twin of ``bad_guarded`` — zero findings.

One of each accepted shape: a fully guarded attribute, a copy-on-write
attribute (lock-free reads), a reasoned ``none`` exemption, an
immutable-after-init attribute, a ``# holds-lock:`` contract honoured at
its call site, and a cross-object access under the rebased lock.
"""

import threading


class TidyService:

    def __init__(self):
        self.lock = threading.Lock()
        self.state = "created"  # guarded-by: self.lock
        self.subs = ()  # guarded-by: self.lock (writes)
        self.dropped = 0  # guarded-by: none — single writer; stale reads fine
        self.capacity = 8

    def poke(self):
        with self.lock:
            self.state = "running"

    def peek(self):
        with self.lock:
            return self.state

    def snapshot(self):
        return self.subs

    def add(self, sub):
        with self.lock:
            self.subs = (*self.subs, sub)

    def size(self):
        return self.capacity

    def _advance(self):  # holds-lock: self.lock
        self.state = "stopped"

    def run(self):
        with self.lock:
            self._advance()


def handler(service: TidyService):
    with service.lock:
        service.state = "handled"
