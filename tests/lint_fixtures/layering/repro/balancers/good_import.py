"""Negative fixture: a policy consuming the typed view, as designed."""
from repro.core.plan import EpochPlan
from repro.core.view import ClusterView


def plan(view: ClusterView) -> EpochPlan:
    return view.new_plan()
