"""Positive fixture: a policy reaching into mechanism and harness."""
from repro.cluster.simulator import Simulator          # line 2: layer-dag
from repro.experiments.engine import ExperimentEngine  # line 3: layer-dag


def plan(sim: Simulator, engine: ExperimentEngine):
    return None
