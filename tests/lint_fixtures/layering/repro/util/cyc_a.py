"""Positive fixture (with cyc_b): a module-scope import cycle."""
from repro.util.cyc_b import beta  # line 2: import-cycle


def alpha() -> int:
    return beta() + 1
