"""Positive fixture (with cyc_a): a module-scope import cycle."""
from repro.util.cyc_a import alpha  # line 2: import-cycle


def beta() -> int:
    return alpha() + 1
