"""Negative fixture: imports lazy_a at module scope; no cycle results."""
from repro.util.lazy_a import alpha


def beta() -> int:
    return alpha() + 1
