"""Negative fixture: the cycle with lazy_b is broken by a lazy import."""


def alpha() -> int:
    from repro.util.lazy_b import beta  # sanctioned cycle break

    return beta() + 1
