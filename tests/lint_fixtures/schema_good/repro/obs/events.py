"""Negative fixture: a closed trace schema."""
from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class TraceEvent:
    etype: ClassVar[str] = "event"


@dataclass(frozen=True)
class Alpha(TraceEvent):
    etype: ClassVar[str] = "alpha"
    epoch: int


EVENT_TYPES = {cls.etype: cls for cls in (Alpha,)}
