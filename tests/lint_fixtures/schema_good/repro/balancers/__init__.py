"""Layer stub: makes the never-emitted check applicable to this corpus."""
