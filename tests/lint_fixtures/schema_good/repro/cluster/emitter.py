"""Negative fixture: emits only declared events, legal metric names."""
from repro.obs.events import Alpha


def run(log, registry, epoch: int) -> None:
    log.emit(Alpha(epoch=epoch))
    registry.counter("sim.ops_served").inc()
