"""Lunule orchestration: trigger gating, pending-awareness, variant wiring."""


from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.core.balancer import LunuleBalancer, LunuleLightBalancer
from repro.core.initiator import InitiatorConfig
from repro.workloads import ZipfWorkload

CFG = SimConfig(n_mds=4, mds_capacity=50, epoch_len=5, max_ticks=4000,
                migration_rate=100)


def run(balancer, workload=None, cfg=CFG):
    wl = workload or ZipfWorkload(8, files_per_dir=60, reads_per_client=500)
    sim = Simulator(wl.materialize(seed=5), balancer, cfg)
    return sim, sim.run()


class TestTriggerGating:
    def test_high_threshold_suppresses_all_migration(self):
        bal = LunuleBalancer(InitiatorConfig(if_threshold=1.1))  # unreachable
        _, res = run(bal)
        assert res.migrated_series[-1] == 0
        assert bal.initiator.triggers == 0

    def test_default_threshold_triggers(self):
        bal = LunuleBalancer()
        _, res = run(bal)
        assert bal.initiator.triggers > 0
        assert res.migrated_series[-1] > 0

    def test_if_value_exposed(self):
        bal = LunuleBalancer()
        run(bal)
        assert 0.0 <= bal.initiator.last_if <= 1.0


class TestPendingAwareness:
    def test_no_replanning_on_top_of_inflight_work(self):
        # With very slow transfers, a lag-oblivious planner would re-submit
        # its excess every epoch; Lunule's pending adjustment bounds the
        # total planned load near what actually needs to move once.
        slow = CFG.with_(migration_rate=5)
        bal = LunuleBalancer()
        sim, res = run(bal, cfg=slow)
        # planned load (committed + aborted tasks) stays within a small
        # multiple of the namespace: no unbounded duplicate planning
        assert res.committed_tasks + res.aborted_tasks < 120

    def test_pending_drains_after_run(self):
        bal = LunuleBalancer()
        sim, _ = run(bal)
        # tasks queued near the end may still be in flight when the last
        # client finishes; ticking the migrator drains them fully
        for _ in range(500):
            sim.migrator.tick()
        for i in range(sim.n_mds):
            assert sim.migrator.pending_export_load(i) == 0.0
            assert sim.migrator.pending_import_load(i) == 0.0


class TestVariantWiring:
    def test_names(self):
        assert LunuleBalancer().name == "lunule"
        assert LunuleLightBalancer().name == "lunule-light"

    def test_light_ranks_by_heat(self):
        light = LunuleLightBalancer()
        sim, _ = run(light)
        import numpy as np
        view = sim.snapshot_view()
        assert np.array_equal(light.per_dir_load(view), sim.stats.heat_array())

    def test_full_ranks_by_mindex(self):
        full = LunuleBalancer()
        sim, _ = run(full)
        from repro.core.mindex import mindex_per_dir
        import numpy as np
        view = sim.snapshot_view()
        assert np.array_equal(full.per_dir_load(view), mindex_per_dir(sim.stats))

    def test_factory_kwargs_forwarded(self):
        bal = make_balancer("lunule", config=InitiatorConfig(if_threshold=0.5))
        assert bal.initiator_config.if_threshold == 0.5


class TestMultiImporterSelection:
    def test_exports_reach_multiple_importers(self):
        bal = LunuleBalancer()
        sim, res = run(bal, workload=ZipfWorkload(12, files_per_dir=60,
                                                  reads_per_client=800))
        # load started on MDS-0 and must have reached at least two peers
        peers_serving = sum(1 for s in res.served_per_mds[1:] if s > 0)
        assert peers_serving >= 2
