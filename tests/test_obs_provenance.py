"""Decision provenance: the causal DAG behind ``repro explain``."""

import pytest

from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.obs.events import (
    NO_DECISION,
    AbortReason,
    EpochSkipped,
    EpochStart,
    IfComputed,
    MigrationAborted,
    MigrationCommitted,
    MigrationPlanned,
    RoleAssigned,
    SubtreeSelected,
)
from repro.obs.provenance import ProvenanceGraph, explain, render_explain
from repro.obs.tracelog import filter_events
from repro.workloads import ZipfWorkload


def sim_for(balancer="lunule", schedule=None, **overrides):
    wl = ZipfWorkload(8, files_per_dir=60, reads_per_client=600)
    cfg = SimConfig(n_mds=3, mds_capacity=50, epoch_len=5, max_ticks=5000)
    if overrides:
        cfg = cfg.with_(**overrides)
    return Simulator(wl.materialize(seed=3), make_balancer(balancer), cfg,
                     schedule=schedule)


def synthetic_trace():
    """One committed migration in epoch 0, one skipped epoch 1."""
    return [
        EpochStart(epoch=0, tick=5),
        IfComputed(epoch=0, value=0.5, loads=(10.0, 0.0), source="initiator",
                   did=0),
        RoleAssigned(epoch=0, rank=0, role="exporter", amount=5.0,
                     did=1, parent=0),
        SubtreeSelected(epoch=0, exporter=0, importer=1, unit=7, load=5.0,
                        did=2, parent=1),
        MigrationPlanned(tick=5, src=0, dst=1, unit=7, inodes=11, load=5.0,
                         did=3, parent=2),
        MigrationCommitted(tick=8, src=0, dst=1, unit=7, inodes=11,
                           did=4, parent=3),
        IfComputed(epoch=1, value=0.01, loads=(5.0, 5.0), source="initiator",
                   did=5),
        EpochSkipped(epoch=1, reason="if_below_threshold", value=0.01,
                     threshold=0.075, did=6, parent=5),
        EpochStart(epoch=1, tick=10),
    ]


class TestProvenanceGraph:
    def test_nodes_and_children(self):
        g = ProvenanceGraph(synthetic_trace())
        assert len(g) == 7  # epoch_start events carry no did
        assert 3 in g and NO_DECISION not in g
        assert g.children[0] == [1]
        assert g.children[3] == [4]

    def test_chain_is_root_first(self):
        g = ProvenanceGraph(synthetic_trace())
        chain = g.chain(3)
        assert chain.dids() == [0, 1, 2, 3]
        assert [e.etype for e in chain.events] == [
            "if_computed", "role_assigned", "subtree_selected",
            "migration_planned"]
        assert not chain.truncated

    def test_unknown_decision_raises(self):
        g = ProvenanceGraph(synthetic_trace())
        with pytest.raises(KeyError):
            g.chain(99)

    def test_descendants_and_chain_ids(self):
        g = ProvenanceGraph(synthetic_trace())
        assert g.descendants(0) == [1, 2, 3, 4]
        assert g.chain_ids(3) == {0, 1, 2, 3, 4}
        assert g.chain_ids(6) == {5, 6}

    def test_chain_ids_feed_filter_events(self):
        events = synthetic_trace()
        g = ProvenanceGraph(events)
        kept = filter_events(events, decision_ids=g.chain_ids(3))
        assert [getattr(e, "did") for e in kept] == [0, 1, 2, 3, 4]

    def test_epoch_attribution_prefers_ancestor_epochs(self):
        g = ProvenanceGraph(synthetic_trace())
        # tick-stamped events inherit the epoch of their lineage, not the
        # tick->boundary guess (commit tick 8 would bisect into epoch 1)
        assert g.epoch_of(3) == 0
        assert g.epoch_of(4) == 0
        assert g.epoch_of(6) == 1

    def test_outcome(self):
        g = ProvenanceGraph(synthetic_trace())
        end = g.outcome(3)
        assert end is not None and end.etype == "migration_committed"
        assert g.outcome(0) is None  # children exist but none is an outcome

    def test_evicted_ancestors_truncate_instead_of_crashing(self):
        # simulate ring eviction: the first three events are gone
        events = synthetic_trace()[4:]
        g = ProvenanceGraph(events)
        chain = g.chain(3)
        assert chain.truncated
        assert chain.dids() == [3]  # walk stopped at the missing parent 2
        assert g.chain(4).truncated

    def test_parent_cycles_terminate(self):
        # corrupt links must not hang the walk
        events = [
            RoleAssigned(epoch=0, rank=0, role="exporter", amount=1.0,
                         did=1, parent=2),
            RoleAssigned(epoch=0, rank=1, role="importer", amount=1.0,
                         did=2, parent=1),
        ]
        chain = ProvenanceGraph(events).chain(1)
        assert set(chain.dids()) <= {1, 2}

    def test_duplicate_dids_keep_first_occurrence(self):
        a = IfComputed(epoch=0, value=0.1, loads=(1.0,), source="a", did=0)
        b = IfComputed(epoch=1, value=0.2, loads=(2.0,), source="b", did=0)
        g = ProvenanceGraph([a, b])
        assert g.nodes[0] is a


class TestExplain:
    def test_report_shape_and_summary(self):
        report = explain(synthetic_trace())
        assert [b["epoch"] for b in report["epochs"]] == [0, 1]
        ep0, ep1 = report["epochs"]
        assert len(ep0["migrations"]) == 1
        mig = ep0["migrations"][0]
        assert mig["outcome"] == "committed"
        assert [d["e"] for d in mig["chain"]] == [
            "if_computed", "role_assigned", "subtree_selected",
            "migration_planned", "migration_committed"]
        assert ep1["skipped"][0]["reason"] == "if_below_threshold"
        assert report["summary"] == {
            "epochs": 2, "migrations": 1, "committed": 1, "aborted": 0,
            "skipped_epochs": 1, "truncated_chains": 0,
        }

    def test_epoch_filter(self):
        report = explain(synthetic_trace(), epoch=1)
        assert [b["epoch"] for b in report["epochs"]] == [1]
        assert report["summary"]["migrations"] == 0

    def test_rank_filter(self):
        keeps = explain(synthetic_trace(), rank=1)
        drops = explain(synthetic_trace(), rank=2)
        assert keeps["summary"]["migrations"] == 1
        assert drops["summary"]["migrations"] == 0

    def test_subtree_filter(self):
        keeps = explain(synthetic_trace(), subtree="7")
        drops = explain(synthetic_trace(), subtree="8")
        assert keeps["summary"]["migrations"] == 1
        assert drops["summary"]["migrations"] == 0

    def test_render_explains_quiet_epochs(self):
        text = render_explain(explain(synthetic_trace()))
        assert "no migration: epoch_skipped[6] reason=if_below_threshold" in text
        assert "migration 3: unit 7 0 -> 1 [committed]" in text
        assert text.endswith("summary: 2 epochs, 1 migrations "
                             "(1 committed, 0 aborted), 1 skipped epochs")

    def test_render_flags_truncated_chains(self):
        text = render_explain(explain(synthetic_trace()[4:]))
        assert "(chain truncated by ring eviction)" in text


class TestProvenanceInRealRuns:
    def test_every_migration_chains_back_to_an_if_root(self):
        sim = sim_for("lunule")
        sim.run()
        events = list(sim.trace)
        g = ProvenanceGraph(events)
        planned = [e for e in events if e.etype == "migration_planned"]
        assert planned
        for e in planned:
            chain = g.chain(e.did)
            assert not chain.truncated
            assert chain.events[0].etype == "if_computed"
            assert "role_assigned" in {x.etype for x in chain.events}

    def test_outcomes_cover_every_planned_migration(self):
        sim = sim_for("lunule")
        sim.run()
        g = ProvenanceGraph(sim.trace)
        for e in sim.trace.events("migration_planned"):
            end = g.outcome(e.did)
            assert end is not None, f"migration {e.did} has no outcome"
            assert end.parent == e.did

    def test_failure_chains_terminate_in_aborted_with_reason(self):
        # migration_rate=5 stretches transfers so the failure lands mid-flight
        sim = sim_for("lunule", schedule=[(12, lambda s: s.fail_mds(0)),
                                          (60, lambda s: s.recover_mds(0))],
                      migration_rate=5)
        sim.run()
        aborts = [e for e in sim.trace.events("migration_aborted")
                  if e.reason == AbortReason.MDS_FAILED.value]
        assert aborts, "the scheduled failure aborted nothing"
        g = ProvenanceGraph(sim.trace)
        for e in aborts:
            chain = g.chain(e.did)
            assert chain.events[-1] is e
            assert chain.events[-2].etype == "migration_planned"
            assert not chain.truncated
            assert chain.events[0].etype == "if_computed"

    def test_explain_reports_aborted_outcomes(self):
        sim = sim_for("lunule", schedule=[(12, lambda s: s.fail_mds(0)),
                                          (60, lambda s: s.recover_mds(0))],
                      migration_rate=5)
        sim.run()
        report = explain(sim.trace)
        assert report["summary"]["aborted"] > 0
        aborted = [m for b in report["epochs"] for m in b["migrations"]
                   if m["outcome"] == "aborted"]
        reasons = {m["reason"] for m in aborted}
        assert "mds_failed" in reasons
        assert reasons <= {r.value for r in AbortReason}

    def test_ring_buffer_yields_partial_chains_without_crashing(self):
        sim = sim_for("lunule", trace_capacity=20)
        sim.run()
        assert sim.trace.dropped > 0, "capacity too large to exercise eviction"
        g = ProvenanceGraph(sim.trace)
        chains = [g.chain(did) for did in sorted(g.nodes)]
        assert chains
        assert any(c.truncated for c in chains)
        # explain still renders a usable report over the partial window
        render_explain(explain(sim.trace))

    def test_skipped_epochs_are_recorded_with_parent_if(self):
        sim = sim_for("lunule")
        sim.run()
        skips = sim.trace.events("epoch_skipped")
        assert skips, "run never skipped an epoch"
        g = ProvenanceGraph(sim.trace)
        for e in skips:
            chain = g.chain(e.did)
            assert chain.events[0].etype == "if_computed"
            assert chain.events[0].source == "initiator"


class TestAbortReasonVocabulary:
    def test_enum_members_normalize_to_values(self):
        e = MigrationAborted(tick=1, src=0, dst=1, unit=3,
                             reason=AbortReason.OVERLAP)
        assert e.reason == "overlap"

    def test_free_form_reasons_rejected(self):
        with pytest.raises(ValueError):
            MigrationAborted(tick=1, src=0, dst=1, unit=3, reason="whatever")

    def test_skip_reason_vocabulary_closed(self):
        with pytest.raises(ValueError):
            EpochSkipped(epoch=0, reason="felt_like_it", value=0.1,
                         threshold=0.075)

    def test_aborted_counter_labels_by_reason(self):
        sim = sim_for("lunule", schedule=[(12, lambda s: s.fail_mds(0)),
                                          (60, lambda s: s.recover_mds(0))],
                      migration_rate=5)
        sim.run()
        n_trace = len([e for e in sim.trace.events("migration_aborted")
                       if e.reason == "mds_failed"])
        series = sim.metrics.snapshot()["migration.aborted"]["series"]
        by_reason = {s["labels"]["reason"]: s["value"] for s in series}
        assert set(by_reason) <= {r.value for r in AbortReason}
        assert sum(by_reason.values()) == sim.migrator.aborted_tasks
        assert by_reason["mds_failed"] == n_trace
