"""Dirfrag arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.namespace.dirfrag import MAX_FRAG_BITS, FragId, frag_file_count, frag_of


class TestFragId:
    def test_valid(self):
        f = FragId(3, 2, 1)
        assert f.dir_id == 3 and f.bits == 2 and f.frag_no == 1

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            FragId(0, 0, 0)

    def test_rejects_too_many_bits(self):
        with pytest.raises(ValueError):
            FragId(0, MAX_FRAG_BITS + 1, 0)

    def test_rejects_out_of_range_frag_no(self):
        with pytest.raises(ValueError):
            FragId(0, 2, 4)

    def test_contains(self):
        f = FragId(0, 2, 1)
        assert f.contains(1) and f.contains(5)
        assert not f.contains(0) and not f.contains(2)

    def test_ordering_and_hash(self):
        assert FragId(0, 1, 0) < FragId(0, 1, 1)
        assert len({FragId(0, 1, 0), FragId(0, 1, 0)}) == 1


class TestFragOf:
    def test_zero_bits(self):
        assert frag_of(17, 0) == 0

    def test_mask(self):
        assert frag_of(5, 2) == 1
        assert frag_of(8, 3) == 0

    @given(st.integers(0, 10 ** 6), st.integers(1, MAX_FRAG_BITS))
    def test_in_range(self, idx, bits):
        assert 0 <= frag_of(idx, bits) < (1 << bits)


class TestFragFileCount:
    def test_zero_bits_all_files(self):
        assert frag_file_count(10, 0, 0) == 10

    def test_even_split(self):
        assert frag_file_count(8, 2, 0) == 2
        assert frag_file_count(8, 2, 3) == 2

    def test_remainder_goes_to_low_frags(self):
        assert frag_file_count(10, 2, 0) == 3
        assert frag_file_count(10, 2, 1) == 3
        assert frag_file_count(10, 2, 2) == 2
        assert frag_file_count(10, 2, 3) == 2

    @given(st.integers(0, 5000), st.integers(1, MAX_FRAG_BITS))
    def test_partition_sums_to_total(self, n, bits):
        total = sum(frag_file_count(n, bits, f) for f in range(1 << bits))
        assert total == n

    @given(st.integers(0, 5000), st.integers(1, 6))
    def test_matches_frag_of(self, n, bits):
        # frag_file_count must agree with explicitly bucketing every index.
        buckets = [0] * (1 << bits)
        for i in range(n):
            buckets[frag_of(i, bits)] += 1
        assert buckets == [frag_file_count(n, bits, f) for f in range(1 << bits)]
