"""Experiment harness: config, runner, metrics, report rendering."""

import numpy as np
import pytest

from repro.cluster.results import SimResult
from repro.experiments.config import ExperimentConfig, default_workload
from repro.experiments.metrics import (
    downsample,
    head_share,
    improvement,
    jct_percentiles,
    mean_if_reduction,
    time_to_balance,
)
from repro.experiments.report import render_kv, render_series, render_table
from repro.experiments.runner import run_experiment
from repro.workloads import (
    CnnWorkload,
    MdtestWorkload,
    MixedWorkload,
    NlpWorkload,
    WebWorkload,
    ZipfWorkload,
)


class TestDefaultWorkload:
    @pytest.mark.parametrize("name,cls", [
        ("cnn", CnnWorkload), ("nlp", NlpWorkload), ("web", WebWorkload),
        ("zipf", ZipfWorkload), ("mdtest", MdtestWorkload),
        ("mixed", MixedWorkload),
    ])
    def test_factory_types(self, name, cls):
        assert isinstance(default_workload(name, 8), cls)

    def test_scale_grows_datasets(self):
        small = default_workload("zipf", 4, scale=0.5)
        big = default_workload("zipf", 4, scale=2.0)
        assert big.reads_per_client > small.reads_per_client

    def test_mixed_partitions_clients(self):
        wl = default_workload("mixed", 10)
        assert wl.n_clients == 10
        assert len(wl.parts) == 4

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            default_workload("bogus")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            default_workload("zipf", 4, scale=0.0)


class TestRunner:
    def test_run_experiment_returns_result(self):
        cfg = ExperimentConfig(workload="zipf", balancer="lunule", n_clients=4,
                               scale=0.2)
        res = run_experiment(cfg)
        assert isinstance(res, SimResult)
        assert res.workload == "zipf" and res.balancer == "lunule"
        assert len(res.completion_ticks) == 4

    def test_data_path_flag(self):
        cfg = ExperimentConfig(workload="zipf", balancer="nop", n_clients=2,
                               scale=0.1, data_path=True)
        res = run_experiment(cfg)
        assert res.data_ops > 0


class TestMetrics:
    def _result(self, ifs, ticks=None):
        r = SimResult("w", "b", 10)
        r.if_series = ifs
        r.epoch_ticks = ticks or [10 * (i + 1) for i in range(len(ifs))]
        return r

    def test_improvement(self):
        assert improvement(2.0, 1.0) == 2.0
        assert improvement(1.0, 0.0) == float("inf")

    def test_mean_if_reduction(self):
        ours = self._result([0.0, 0.0, 0.1, 0.1])
        base = self._result([0.0, 0.0, 0.4, 0.4])
        assert mean_if_reduction(ours, base, skip=2) == pytest.approx(0.75)

    def test_time_to_balance(self):
        r = self._result([0.5, 0.3, 0.05, 0.02])
        assert time_to_balance(r, 0.1) == 30

    def test_time_to_balance_never(self):
        r = self._result([0.5, 0.5])
        assert time_to_balance(r, 0.1) is None

    def test_jct_percentiles(self):
        r = SimResult("w", "b", 10)
        r.completion_ticks = {i: float(i) for i in range(1, 101)}
        pct = jct_percentiles(r, (50, 99))
        assert pct[50] == pytest.approx(50.5)
        assert pct[99] > 98

    def test_jct_percentiles_empty(self):
        r = SimResult("w", "b", 10)
        assert np.isnan(jct_percentiles(r)[50])

    def test_downsample_short_series_untouched(self):
        assert downsample([1, 2, 3], 10) == [1.0, 2.0, 3.0]

    def test_downsample_picks_endpoints(self):
        out = downsample(list(range(100)), 5)
        assert out[0] == 0.0 and out[-1] == 99.0 and len(out) == 5

    def test_head_share(self):
        assert head_share([8, 1, 1], 1) == pytest.approx(0.8)
        assert head_share([0, 0], 1) == 0.0


class TestReport:
    def test_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 0.123]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len({len(l) for l in lines[1:]}) == 1  # fixed width

    def test_series(self):
        out = render_series("s", [1, 2], [0.1, 0.2], "t", "v")
        assert "0.100" in out and "s (t -> v)" in out

    def test_kv(self):
        out = render_kv("K", [("alpha", 1), ("b", 2.5)])
        assert "alpha" in out and "2.500" in out

    def test_nan_rendering(self):
        out = render_table(["x"], [[float("nan")]])
        assert "nan" in out


class TestResultAccessors:
    def test_aggregate_and_peak(self):
        r = SimResult("w", "b", 10)
        r.per_mds_iops = [[1.0, 2.0], [5.0, 3.0]]
        assert list(r.aggregate_iops()) == [3.0, 8.0]
        assert r.peak_iops() == 8.0

    def test_per_mds_matrix_pads_growth(self):
        r = SimResult("w", "b", 10)
        r.per_mds_iops = [[1.0], [2.0, 3.0]]
        m = r.per_mds_matrix()
        assert m.shape == (2, 2)
        assert m[0, 1] == 0.0

    def test_request_share_empty(self):
        r = SimResult("w", "b", 10)
        r.served_per_mds = [0, 0]
        assert list(r.request_share()) == [0.0, 0.0]

    def test_meta_ratio(self):
        r = SimResult("w", "b", 10)
        r.meta_ops, r.data_ops = 3, 1
        assert r.meta_ratio() == pytest.approx(0.75)
