"""Routing, client caches and forward accounting."""

import pytest

from repro.cluster.router import ClientRoutingState, Router
from repro.namespace.dirfrag import FragId


@pytest.fixture
def router(authmap):
    return Router(authmap)


@pytest.fixture
def state():
    return ClientRoutingState()


class TestBasicRouting:
    def test_routes_to_authority(self, router, state):
        assert router.route(state, 3, 0)[0] == 0

    def test_follows_subtree_auth(self, router, authmap, state):
        authmap.set_subtree_auth(2, 1)
        assert router.route(state, 3, 0)[0] == 1

    def test_cache_hit_no_forwards(self, router, state):
        router.route(state, 3, 0)
        before = router.total_forwards
        _, hops = router.route(state, 3, 1)
        assert hops == [] and router.total_forwards == before

    def test_single_authority_no_forwards(self, router, state):
        # entire path on one MDS: no authority transitions, no hops
        _, hops = router.route(state, 3, 0)
        assert hops == []


class TestForwards:
    def test_transition_costs_a_hop(self, router, authmap, state):
        authmap.set_subtree_auth(2, 1)
        _, hops = router.route(state, 3, 0)
        # path / -> b -> b1 crosses MDS0 -> MDS1 once
        assert hops == [0]
        assert router.total_forwards == 1

    def test_hops_charged_once_until_invalidation(self, router, authmap, state):
        authmap.set_subtree_auth(2, 1)
        router.route(state, 3, 0)
        _, hops = router.route(state, 3, 2)
        assert hops == []

    def test_unrelated_migration_costs_nothing(self, router, authmap, state):
        authmap.set_subtree_auth(2, 1)
        router.route(state, 3, 0)
        authmap.set_subtree_auth(1, 2)  # a different subtree moved
        _, hops = router.route(state, 3, 0)
        assert hops == []

    def test_stale_entry_redirects_once(self, router, authmap, state):
        router.route(state, 3, 0)
        authmap.set_subtree_auth(2, 1)  # dir 3's subtree moved
        _, hops = router.route(state, 3, 0)
        assert hops == [0]  # the old authority forwards us
        _, hops = router.route(state, 3, 1)
        assert hops == []

    def test_per_dir_hash_many_transitions(self, tree, state):
        # pin every dir to alternating ranks: deep path -> multiple hops
        from repro.namespace.subtree import AuthorityMap
        am = AuthorityMap(tree, 0)
        am.set_subtree_auth(2, 1)
        am.set_subtree_auth(3, 0)
        r = Router(am)
        _, hops = r.route(state, 3, 0)
        # / (0) -> b (1) -> b1 (0): two transitions
        assert hops == [0, 1]


class TestFragRouting:
    def test_frag_owner_serves(self, router, authmap, state):
        authmap.split_dir(3, 1)
        authmap.set_frag_auth(FragId(3, 1, 1), 2)
        assert router.route(state, 3, 1)[0] == 2
        assert router.route(state, 3, 0)[0] == 0

    def test_frag_redirect_counted_once(self, router, authmap, state):
        authmap.split_dir(3, 1)
        authmap.set_frag_auth(FragId(3, 1, 1), 2)
        _, hops1 = router.route(state, 3, 1)
        assert hops1 == [0]
        _, hops2 = router.route(state, 3, 3)  # same frag
        assert hops2 == []

    def test_dir_level_op_ignores_frags(self, router, authmap, state):
        authmap.split_dir(3, 1)
        authmap.set_frag_auth(FragId(3, 1, 0), 2)
        assert router.route(state, 3, -1)[0] == 0


class TestLeaseExpiry:
    def test_expiry_recharges_resolution(self, authmap, state):
        authmap.set_subtree_auth(2, 1)
        r = Router(authmap, lease_ttl=10)
        _, hops = r.route(state, 3, 0, now=0)
        assert hops == [0]
        _, hops = r.route(state, 3, 1, now=5)
        assert hops == []  # lease still valid
        _, hops = r.route(state, 3, 2, now=10)
        assert hops == [0]  # lease expired: path re-resolved

    def test_zero_ttl_never_expires(self, authmap, state):
        authmap.set_subtree_auth(2, 1)
        r = Router(authmap, lease_ttl=0)
        r.route(state, 3, 0, now=0)
        _, hops = r.route(state, 3, 1, now=10_000)
        assert hops == []

    def test_expiry_is_per_client(self, authmap):
        authmap.set_subtree_auth(2, 1)
        r = Router(authmap, lease_ttl=10)
        s1, s2 = ClientRoutingState(), ClientRoutingState()
        r.route(s1, 3, 0, now=0)
        r.route(s2, 3, 0, now=8)
        _, hops1 = r.route(s1, 3, 1, now=12)  # s1's lease expired
        _, hops2 = r.route(s2, 3, 1, now=12)  # s2's lease still valid
        assert hops1 == [0] and hops2 == []


class TestStateIsolation:
    def test_clients_have_independent_caches(self, router, authmap):
        s1, s2 = ClientRoutingState(), ClientRoutingState()
        authmap.set_subtree_auth(2, 1)
        router.route(s1, 3, 0)
        before = router.total_forwards
        router.route(s2, 3, 0)
        assert router.total_forwards == before + 1
