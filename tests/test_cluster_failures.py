"""Failure injection, heterogeneous capacities, latency accounting."""

import pytest

from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.workloads import ZipfWorkload


def sim_for(balancer="lunule", schedule=None, **overrides):
    wl = ZipfWorkload(8, files_per_dir=60, reads_per_client=600)
    cfg = SimConfig(n_mds=3, mds_capacity=50, epoch_len=5, max_ticks=5000)
    if overrides:
        cfg = cfg.with_(**overrides)
    return Simulator(wl.materialize(seed=3), make_balancer(balancer), cfg,
                     schedule=schedule)


class TestFailureInjection:
    def test_failed_mds_serves_nothing(self):
        sim = sim_for("nop", schedule=[(10, lambda s: s.fail_mds(0))],
                      max_ticks=60, stop_when_done=False)
        res = sim.run()
        # everything is on MDS-0 under nop; after the failure nothing moves
        served_before = sum(
            row[0] for t, row in zip(res.epoch_ticks, res.per_mds_iops) if t <= 10
        )
        served_after = sum(
            row[0] for t, row in zip(res.epoch_ticks, res.per_mds_iops) if t > 15
        )
        assert served_before > 0
        assert served_after == 0

    def test_failover_resumes_service(self):
        sim = sim_for("nop", schedule=[(10, lambda s: s.fail_mds(0)),
                                       (40, lambda s: s.recover_mds(0))])
        res = sim.run()
        assert len(res.completion_ticks) == 8  # everyone finished eventually
        # there was a visible outage window
        outage = [sum(row) for t, row in zip(res.epoch_ticks, res.per_mds_iops)
                  if 15 < t <= 40]
        assert outage and max(outage) == 0

    def test_failure_slows_completion(self):
        healthy = sim_for("lunule").run()
        degraded = sim_for("lunule", schedule=[
            (10, lambda s: s.fail_mds(1)),
            (100, lambda s: s.recover_mds(1)),
        ]).run()
        assert degraded.finished_tick >= healthy.finished_tick

    def test_bad_rank_rejected(self):
        sim = sim_for("nop")
        with pytest.raises(ValueError):
            sim.fail_mds(99)
        with pytest.raises(ValueError):
            sim.recover_mds(-1)

    def test_migration_stalls_while_exporter_down(self):
        from repro.cluster.migration import Migrator
        from repro.namespace.builder import build_fanout
        from repro.namespace.subtree import AuthorityMap

        built = build_fanout(4, 10)
        am = AuthorityMap(built.tree, 0)
        mig = Migrator(am, rate=100, commit_latency=0)
        mig.submit_export(0, 1, built.dirs[0])
        for _ in range(10):
            mig.tick(down_ranks={0})
        assert mig.committed_tasks == 0  # exporter down: nothing moved
        for _ in range(10):
            mig.tick()
        assert mig.committed_tasks == 1  # resumed after recovery

    def test_migration_stalls_while_importer_down(self):
        from repro.cluster.migration import Migrator
        from repro.namespace.builder import build_fanout
        from repro.namespace.subtree import AuthorityMap

        built = build_fanout(4, 10)
        am = AuthorityMap(built.tree, 0)
        mig = Migrator(am, rate=100, commit_latency=0)
        mig.submit_export(0, 1, built.dirs[0])
        for _ in range(10):
            mig.tick(down_ranks={1})
        assert mig.committed_tasks == 0
        mig.tick()
        assert mig.committed_tasks == 1


class TestFailureDuringMigration:
    """Failing an MDS mid-epoch must not leave a subtree double-owned.

    CephFS aborts an interrupted export on session reset: a half-done
    import is rolled back and the replayed exporter does not resume
    pre-failure plans. The simulator mirrors that via
    ``Migrator.abort_rank`` inside ``fail_mds``.
    """

    @staticmethod
    def slow_migration_sim(schedule):
        # migration_rate=5 stretches each 60-inode export over ~12 ticks,
        # guaranteeing the scheduled failure lands mid-transfer
        return sim_for("lunule", schedule=schedule, migration_rate=5)

    def test_exporter_failure_aborts_inflight_tasks(self):
        observed = {}

        def fail_and_inspect(s):
            inflight = s.migrator.outstanding_units()
            observed["before"] = len(inflight)
            s.fail_mds(0)  # rank 0 starts with all authority: the exporter
            observed["after"] = [
                u for u in s.migrator.outstanding_units()
            ]

        sim = self.slow_migration_sim([(12, fail_and_inspect),
                                       (60, lambda s: s.recover_mds(0))])
        sim.run()
        assert observed["before"] > 0, "no migration in flight at tick 12"
        aborts = [e for e in sim.trace.events("migration_aborted")
                  if e.reason == "mds_failed"]
        assert aborts and all(e.src == 0 or e.dst == 0 for e in aborts)
        assert all(e.tick == 12 for e in aborts)

    def test_no_subtree_double_owned_after_failure(self):
        sim = self.slow_migration_sim([(12, lambda s: s.fail_mds(0)),
                                       (60, lambda s: s.recover_mds(0))])
        res = sim.run()
        total = sim.tree.n_dirs + sim.tree.total_files()
        assert sum(res.inode_distribution) == total
        # nothing still queued/in flight can reference the same unit twice
        units = sim.migrator.outstanding_units()
        assert len(units) == len(set(units))

    def test_importer_failure_also_aborts(self):
        def fail_an_importer(s):
            dsts = {t.dst for tasks in s.migrator._active.values()
                    for t in tasks}
            s.fail_mds(min(dsts) if dsts else 1)

        sim = self.slow_migration_sim([(12, fail_an_importer)])
        res = sim.run()
        total = sim.tree.n_dirs + sim.tree.total_files()
        assert sum(res.inode_distribution) == total

    def test_importer_failure_mid_import_rolls_back_cleanly(self):
        """Killing the *receiver* halfway through a transfer loses nothing.

        The two-phase commit means a half-shipped subtree is still owned
        by the exporter: the abort must drop the task without flipping
        authority, and a later re-export counts the inodes exactly once.
        """
        from repro.cluster.migration import Migrator
        from repro.namespace.builder import build_fanout
        from repro.namespace.subtree import AuthorityMap

        built = build_fanout(4, 50)
        am = AuthorityMap(built.tree, 0)
        mig = Migrator(am, rate=10, commit_latency=0)
        task = mig.submit_export(0, 1, built.dirs[0])
        mig.tick()
        mig.tick()
        assert 0 < task.remaining < task.inodes, "transfer not mid-flight"

        assert mig.abort_rank(1) == 1  # the importer dies mid-import
        assert mig.migrated_inodes == 0
        assert mig.aborted_tasks == 1
        assert am.resolve_dir(built.dirs[0])[0] == 0  # never flipped

        # the importer comes back; the whole subtree ships again and the
        # partial first attempt is not double-counted
        redo = mig.submit_export(0, 1, built.dirs[0])
        while mig.outstanding_units():
            mig.tick()
        assert mig.committed_tasks == 1
        assert mig.migrated_inodes == redo.inodes
        assert am.resolve_dir(built.dirs[0])[0] == 1

    def test_importer_failure_mid_import_accounting_in_sim(self):
        """Receiver dies mid-import under load: migrated == committed only."""
        observed = {}

        def fail_an_importer_mid_import(s):
            inflight = [t for tasks in s.migrator._active.values()
                        for t in tasks if 0 < t.remaining < t.inodes]
            observed["partial"] = len(inflight)
            s.fail_mds(inflight[0].dst if inflight else 1)

        sim = self.slow_migration_sim([(12, fail_an_importer_mid_import),
                                       (60, lambda s: s.recover_mds(1))])
        res = sim.run()
        assert observed["partial"] > 0, "no partial import in flight at tick 12"
        committed = sum(e.inodes
                        for e in sim.trace.events("migration_committed"))
        assert res.migrated_series[-1] == committed
        assert sim.migrator.migrated_inodes == committed
        # aborted transfers contributed nothing to the migrated counter
        planned = {e.did: e for e in sim.trace.events("migration_planned")}
        aborted = sum(planned[e.parent].inodes
                      for e in sim.trace.events("migration_aborted")
                      if e.parent in planned)
        assert aborted > 0
        total = sim.tree.n_dirs + sim.tree.total_files()
        assert sum(res.inode_distribution) == total

    def test_abort_rank_drops_queued_and_active(self):
        from repro.cluster.migration import Migrator
        from repro.namespace.builder import build_fanout
        from repro.namespace.subtree import AuthorityMap

        built = build_fanout(6, 10)
        am = AuthorityMap(built.tree, 0)
        mig = Migrator(am, rate=1, commit_latency=0, concurrency=2)
        for d in built.dirs[:4]:
            mig.submit_export(0, 1, d)
        mig.tick()  # starts two rank-0 exports (concurrency), rest queued
        assert len(mig.outstanding_units()) == 4

        dropped = mig.abort_rank(1)  # importer of everything
        assert dropped == 4
        assert mig.outstanding_units() == []
        assert mig.aborted_tasks == 4
        assert mig.committed_tasks == 0
        # the authority map never saw a partial flip
        assert all(am.resolve_dir(d)[0] == 0 for d in built.dirs)

    def test_abort_rank_untouched_tasks_survive(self):
        from repro.cluster.migration import Migrator
        from repro.namespace.builder import build_fanout
        from repro.namespace.subtree import AuthorityMap

        built = build_fanout(4, 10)
        am = AuthorityMap(built.tree, 0)
        mig = Migrator(am, rate=100, commit_latency=0)
        survivor = mig.submit_export(0, 1, built.dirs[0])
        mig.submit_export(0, 2, built.dirs[1])

        assert mig.abort_rank(2) == 1
        assert mig.outstanding_units() == [survivor.unit]
        mig.tick()
        assert mig.committed_tasks == 1
        assert am.resolve_dir(built.dirs[0])[0] == 1

    def test_balancer_does_not_plan_onto_failed_rank(self):
        sim = sim_for("lunule", schedule=[(4, lambda s: s.fail_mds(2))])
        sim.run()
        planned = sim.trace.events("migration_planned")
        late = [e for e in planned if e.tick >= 4]
        assert all(e.src != 2 and e.dst != 2 for e in late)


class TestHeterogeneousCapacities:
    def test_capacities_applied_per_rank(self):
        sim = sim_for("nop", mds_capacities=(80.0, 20.0, 20.0))
        assert [m.capacity for m in sim.mdss] == [80.0, 20.0, 20.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sim_for("nop", mds_capacities=(80.0, 20.0))

    def test_big_mds_serves_more(self):
        sim = sim_for("lunule", mds_capacities=(20.0, 20.0, 110.0))
        res = sim.run()
        for row in res.per_mds_iops:
            assert row[0] <= 20.0 + 1e-9 and row[1] <= 20.0 + 1e-9


class TestLatencyAccounting:
    def test_latency_series_recorded(self):
        res = sim_for("lunule").run()
        assert len(res.latency_series) == len(res.epoch_ticks)
        assert all(l >= 1.0 for l in res.latency_series)

    def test_saturated_cluster_has_queueing(self):
        # single MDS, many unthrottled clients: heavy contention
        res = sim_for("nop").run()
        assert res.mean_latency() > 1.0

    def test_light_load_is_service_time_only(self):
        wl = ZipfWorkload(2, files_per_dir=30, reads_per_client=100,
                          client_rate=2)
        cfg = SimConfig(n_mds=2, mds_capacity=100, epoch_len=5, max_ticks=2000)
        res = Simulator(wl.materialize(seed=1), make_balancer("nop"), cfg).run()
        assert res.mean_latency() == pytest.approx(1.0)

    def test_balancing_reduces_latency(self):
        slow = sim_for("nop").run()
        fast = sim_for("lunule").run()
        assert fast.mean_latency(2) < slow.mean_latency(2)
