"""Failure injection, heterogeneous capacities, latency accounting."""

import pytest

from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.workloads import ZipfWorkload


def sim_for(balancer="lunule", schedule=None, **overrides):
    wl = ZipfWorkload(8, files_per_dir=60, reads_per_client=600)
    cfg = SimConfig(n_mds=3, mds_capacity=50, epoch_len=5, max_ticks=5000)
    if overrides:
        cfg = cfg.with_(**overrides)
    return Simulator(wl.materialize(seed=3), make_balancer(balancer), cfg,
                     schedule=schedule)


class TestFailureInjection:
    def test_failed_mds_serves_nothing(self):
        sim = sim_for("nop", schedule=[(10, lambda s: s.fail_mds(0))],
                      max_ticks=60, stop_when_done=False)
        res = sim.run()
        # everything is on MDS-0 under nop; after the failure nothing moves
        served_before = sum(
            row[0] for t, row in zip(res.epoch_ticks, res.per_mds_iops) if t <= 10
        )
        served_after = sum(
            row[0] for t, row in zip(res.epoch_ticks, res.per_mds_iops) if t > 15
        )
        assert served_before > 0
        assert served_after == 0

    def test_failover_resumes_service(self):
        sim = sim_for("nop", schedule=[(10, lambda s: s.fail_mds(0)),
                                       (40, lambda s: s.recover_mds(0))])
        res = sim.run()
        assert len(res.completion_ticks) == 8  # everyone finished eventually
        # there was a visible outage window
        outage = [sum(row) for t, row in zip(res.epoch_ticks, res.per_mds_iops)
                  if 15 < t <= 40]
        assert outage and max(outage) == 0

    def test_failure_slows_completion(self):
        healthy = sim_for("lunule").run()
        degraded = sim_for("lunule", schedule=[
            (10, lambda s: s.fail_mds(1)),
            (100, lambda s: s.recover_mds(1)),
        ]).run()
        assert degraded.finished_tick >= healthy.finished_tick

    def test_bad_rank_rejected(self):
        sim = sim_for("nop")
        with pytest.raises(ValueError):
            sim.fail_mds(99)
        with pytest.raises(ValueError):
            sim.recover_mds(-1)

    def test_migration_stalls_while_exporter_down(self):
        from repro.cluster.migration import Migrator
        from repro.namespace.builder import build_fanout
        from repro.namespace.subtree import AuthorityMap

        built = build_fanout(4, 10)
        am = AuthorityMap(built.tree, 0)
        mig = Migrator(am, rate=100, commit_latency=0)
        mig.submit_export(0, 1, built.dirs[0])
        for _ in range(10):
            mig.tick(down_ranks={0})
        assert mig.committed_tasks == 0  # exporter down: nothing moved
        for _ in range(10):
            mig.tick()
        assert mig.committed_tasks == 1  # resumed after recovery

    def test_migration_stalls_while_importer_down(self):
        from repro.cluster.migration import Migrator
        from repro.namespace.builder import build_fanout
        from repro.namespace.subtree import AuthorityMap

        built = build_fanout(4, 10)
        am = AuthorityMap(built.tree, 0)
        mig = Migrator(am, rate=100, commit_latency=0)
        mig.submit_export(0, 1, built.dirs[0])
        for _ in range(10):
            mig.tick(down_ranks={1})
        assert mig.committed_tasks == 0
        mig.tick()
        assert mig.committed_tasks == 1


class TestHeterogeneousCapacities:
    def test_capacities_applied_per_rank(self):
        sim = sim_for("nop", mds_capacities=(80.0, 20.0, 20.0))
        assert [m.capacity for m in sim.mdss] == [80.0, 20.0, 20.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sim_for("nop", mds_capacities=(80.0, 20.0))

    def test_big_mds_serves_more(self):
        sim = sim_for("lunule", mds_capacities=(20.0, 20.0, 110.0))
        res = sim.run()
        for row in res.per_mds_iops:
            assert row[0] <= 20.0 + 1e-9 and row[1] <= 20.0 + 1e-9


class TestLatencyAccounting:
    def test_latency_series_recorded(self):
        res = sim_for("lunule").run()
        assert len(res.latency_series) == len(res.epoch_ticks)
        assert all(l >= 1.0 for l in res.latency_series)

    def test_saturated_cluster_has_queueing(self):
        # single MDS, many unthrottled clients: heavy contention
        res = sim_for("nop").run()
        assert res.mean_latency() > 1.0

    def test_light_load_is_service_time_only(self):
        wl = ZipfWorkload(2, files_per_dir=30, reads_per_client=100,
                          client_rate=2)
        cfg = SimConfig(n_mds=2, mds_capacity=100, epoch_len=5, max_ticks=2000)
        res = Simulator(wl.materialize(seed=1), make_balancer("nop"), cfg).run()
        assert res.mean_latency() == pytest.approx(1.0)

    def test_balancing_reduces_latency(self):
        slow = sim_for("nop").run()
        fast = sim_for("lunule").run()
        assert fast.mean_latency(2) < slow.mean_latency(2)
