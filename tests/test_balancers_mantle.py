"""The Mantle-style programmable policy framework."""

import pytest

from repro.balancers.mantle import (
    MantleBalancer,
    MantlePolicy,
    PolicyEnv,
    greedyspill_policy,
    lunule_selection_policy,
)
from repro.cluster.simulator import SimConfig, Simulator
from repro.workloads import CnnWorkload, ZipfWorkload

CFG = SimConfig(n_mds=4, mds_capacity=50, epoch_len=5, max_ticks=3000,
                migration_rate=100)


def run(balancer, workload=None, cfg=CFG):
    wl = workload or ZipfWorkload(8, files_per_dir=50, reads_per_client=400)
    sim = Simulator(wl.materialize(seed=5), balancer, cfg)
    return sim, sim.run()


class TestPolicyEnv:
    def _env(self, loads=(60.0, 10.0, 10.0, 0.0), whoami=0):
        n = len(loads)
        return PolicyEnv(whoami=whoami, epoch=3, loads=loads,
                         heat_loads=loads, capacity=100.0,
                         pending_out=(0.0,) * n, pending_in=(0.0,) * n)

    def test_derived_properties(self):
        env = self._env()
        assert env.n_mds == 4
        assert env.my_load == 60.0
        assert env.mean_load == pytest.approx(20.0)
        assert env.total_load == pytest.approx(80.0)

    def test_neighbor_wraps(self):
        assert self._env(whoami=3).neighbor() == 0
        assert self._env(whoami=0).neighbor(2) == 2

    def test_env_is_frozen(self):
        env = self._env()
        with pytest.raises(Exception):
            env.whoami = 1  # type: ignore[misc]


class TestDefaultPolicy:
    def test_balances_like_a_balancer(self):
        _, res = run(MantleBalancer())
        assert res.migrated_series[-1] > 0
        assert sum(1 for s in res.served_per_mds if s > 0) >= 2

    def test_name_reflects_policy(self):
        assert MantleBalancer().name == "mantle:mantle"
        assert MantleBalancer(greedyspill_policy()).name == "mantle:greedyspill"

    def test_idle_cluster_is_a_noop(self):
        bal = MantleBalancer()
        sim, res = run(bal)
        # drain everything, then close an idle epoch: loads are all zero
        for _ in range(200):
            sim.migrator.tick()
        for m in sim.mdss:
            m.end_epoch(sim.config.epoch_len)
        depth_before = sum(sim.migrator.queue_depth(i) for i in range(sim.n_mds))
        plan = bal.on_epoch(sim.snapshot_view())
        sim.apply_plan(plan)
        depth_after = sum(sim.migrator.queue_depth(i) for i in range(sim.n_mds))
        assert depth_after == depth_before


class TestCustomHooks:
    def test_when_false_never_migrates(self):
        policy = MantlePolicy(when=lambda env: False, name="never")
        _, res = run(MantleBalancer(policy))
        assert res.migrated_series[-1] == 0

    def test_howmuch_zero_never_migrates(self):
        policy = MantlePolicy(howmuch=lambda env: 0.0, name="zero")
        _, res = run(MantleBalancer(policy))
        assert res.migrated_series[-1] == 0

    def test_where_directs_all_to_one_target(self):
        policy = MantlePolicy(where=lambda env, amount: {1: amount},
                              name="to-one")
        sim, res = run(MantleBalancer(policy))
        # only MDS-0 (initial authority) and MDS-1 ever serve
        assert res.served_per_mds[2] == 0
        assert res.served_per_mds[3] == 0
        assert res.served_per_mds[1] > 0

    def test_which_receives_view_and_env(self):
        seen = {}

        def which(view, env):
            seen["type"] = type(view).__name__
            seen["epoch"] = env.epoch
            return view.heat

        _, res = run(MantleBalancer(MantlePolicy(which=which, name="spy")))
        assert seen["type"] == "ClusterView"
        assert seen["epoch"] >= 0


class TestGreedySpillPolicy:
    def test_spills_to_neighbor(self):
        _, res = run(MantleBalancer(greedyspill_policy()))
        assert res.migrated_series[-1] > 0

    def test_matches_builtin_greedyspill_shape(self):
        from repro.balancers.greedyspill import GreedySpillBalancer

        _, mantle = run(MantleBalancer(greedyspill_policy()))
        _, builtin = run(GreedySpillBalancer())
        # both leave the cluster similarly imbalanced (same policy)
        assert abs(mantle.mean_if(2) - builtin.mean_if(2)) < 0.35


class TestLunuleSelectionPolicy:
    def test_mindex_selection_beats_heat_on_scans(self):
        wl = lambda: CnnWorkload(8, n_dirs=40, files_per_dir=20, jitter=0.05)
        _, heat = run(MantleBalancer(MantlePolicy(name="heat")), workload=wl())
        _, mindex = run(MantleBalancer(lunule_selection_policy()), workload=wl())
        assert mindex.finished_tick <= heat.finished_tick * 1.1


class TestQueueGuard:
    def test_max_queue_bounds_submissions(self):
        policy = MantlePolicy(howmuch=lambda env: env.my_load,  # aggressive
                              name="flood")
        bal = MantleBalancer(policy, max_queue=3)
        sim, _ = run(bal)
        for i in range(sim.n_mds):
            assert sim.migrator.queue_depth(i) <= 3 + sim.migrator.concurrency
