"""MDS node accounting."""

import pytest

from repro.cluster.mds import MDS


class TestMds:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            MDS(0, 0.0)

    def test_refill_full(self):
        m = MDS(0, 100.0)
        m.refill()
        assert m.remaining == 100.0

    def test_refill_with_penalty(self):
        m = MDS(0, 100.0)
        m.migration_penalty = 0.1
        m.refill()
        assert m.remaining == pytest.approx(90.0)

    def test_penalty_capped(self):
        m = MDS(0, 100.0)
        m.migration_penalty = 5.0
        m.refill()
        assert m.remaining == pytest.approx(10.0)  # at most 90% lost

    def test_serve_decrements_and_counts(self):
        m = MDS(0, 10.0)
        m.refill()
        m.serve()
        m.serve(2.0)
        assert m.remaining == pytest.approx(7.0)
        assert m.served_epoch == 2 and m.served_total == 2

    def test_end_epoch_records_iops(self):
        m = MDS(0, 100.0)
        for _ in range(30):
            m.serve()
        iops = m.end_epoch(epoch_len=10)
        assert iops == pytest.approx(3.0)
        assert m.load_history == [3.0]
        assert m.served_epoch == 0
        assert m.served_total == 30

    def test_current_load_before_first_epoch(self):
        assert MDS(0, 10.0).current_load == 0.0

    def test_current_load_tracks_last_epoch(self):
        m = MDS(0, 10.0)
        m.serve()
        m.end_epoch(1)
        m.end_epoch(1)
        assert m.current_load == 0.0
        assert m.load_history == [1.0, 0.0]
