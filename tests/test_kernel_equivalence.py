"""Scalar/columnar engine equivalence and serve-loop edge cases.

The columnar engine's contract is *decision equivalence*: for any config,
the full balancer-decision trace must be byte-identical to the scalar
reference's. These tests hold that contract over a matrix of workloads,
balancers, and serve-loop edge conditions (rate-limited clients, data-path
stalls, lease expiry, dirfrag redirects), plus the chaos failure path.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster.simulator import SimConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_traced

SMALL = SimConfig(n_mds=3, mds_capacity=60.0, epoch_len=5, max_ticks=1200,
                  migration_rate=50, seed=0)

#: name -> (workload, balancer, sim config, workload overrides, data_path)
MATRIX = {
    "mdtest_lunule": ("mdtest", "lunule", SMALL, {}, False),
    "mixed_lunule": ("mixed", "lunule", SMALL, {}, False),
    "zipf_vanilla": ("zipf", "vanilla", SMALL, {}, False),
    # Rate-limited clients: the per-tick op budget forces runs to span
    # ticks and the turbo path to fall back.
    "rate_limited": ("mdtest", "lunule", SMALL,
                     {"client_rate": 2.5, "creates_per_client": 120}, False),
    # Data path on: OSD stalls suspend clients mid-stream (data_window),
    # which the columnar engine must replay op-by-op.
    "data_window": ("zipf", "lunule", SMALL, {}, True),
    # Aggressive lease expiry: client dentry caches die every 3 ticks, so
    # every stream keeps re-charging its routing entries.
    "lease_churn": ("mdtest", "lunule", SMALL.with_(client_lease_ttl=3),
                    {}, False),
    # One client, one MDS: exercises the lone-survivor drain budget.
    "single_client": ("mdtest", "lunule",
                      SMALL.with_(n_mds=1, max_ticks=400), {}, False),
}


def run_engine(name: str, engine: str):
    workload, balancer, sim, overrides, data_path = MATRIX[name]
    cfg = ExperimentConfig(workload=workload, balancer=balancer, n_clients=6,
                           seed=11, scale=0.12, data_path=data_path,
                           sim=sim.with_(engine=engine),
                           workload_overrides=overrides or None)
    return run_traced(cfg)


@pytest.mark.parametrize("name", sorted(MATRIX))
def test_trace_equivalence(name):
    """Scalar and columnar runs produce byte-identical decision traces."""
    result_s, sim_s = run_engine(name, "scalar")
    result_c, sim_c = run_engine(name, "columnar")
    assert sim_s.trace.dumps() == sim_c.trace.dumps()
    assert result_s.meta_ops == result_c.meta_ops
    assert result_s.completion_ticks == result_c.completion_ticks
    assert result_s.served_per_mds == result_c.served_per_mds
    assert result_s.total_forwards == result_c.total_forwards


def test_chaos_trace_equivalence():
    """The chaos failure path (faults, aborts, replays) is engine-neutral."""
    from repro.experiments.chaos import run_chaos

    _, _, sim_s = run_chaos("flap", seed=1, engine="scalar")
    _, _, sim_c = run_chaos("flap", seed=1, engine="columnar")
    assert sim_s.trace.dumps() == sim_c.trace.dumps()


class TestServeLoopEdges:
    """Semantic checks on the edge conditions, run under both engines."""

    @pytest.fixture(params=["scalar", "columnar"])
    def engine(self, request):
        return request.param

    def test_rate_limited_client_spans_ticks(self, engine):
        """A rate-R client is capped at ceil(R) ops per tick, spanning ticks.

        Serving stops once ``rate_served >= rate``, so the op that crosses
        the threshold still completes: rate 2.5 means exactly 3 ops/tick
        for a client with work queued, and 100 creates take ceil(100/3)
        ticks regardless of MDS capacity.
        """
        sim_cfg = SMALL.with_(n_mds=1, max_ticks=600, engine=engine)
        cfg = ExperimentConfig(workload="mdtest", balancer="nop", n_clients=1,
                               seed=3, scale=1.0, sim=sim_cfg,
                               workload_overrides={"client_rate": 2.5,
                                                   "creates_per_client": 100,
                                                   "jitter": 0.0})
        result, sim = run_traced(cfg)
        assert result.meta_ops == 100
        done = list(result.completion_ticks.values())[0]
        assert done + 1 >= math.ceil(100 / 3)  # rate, not capacity, binds

    def test_lease_expiry_recharges_routing(self, engine):
        """Expiring dentry leases prune stale routing, cutting forwards.

        Forwards happen when a client's cached entry still points at the
        pre-migration authority. With expiry off (ttl=0) stale entries
        linger and keep misrouting; a short TTL forces the client to
        re-charge the entry from the current authority map.
        """
        def forwards(ttl):
            sim_cfg = SMALL.with_(client_lease_ttl=ttl, engine=engine)
            cfg = ExperimentConfig(workload="mixed", balancer="lunule",
                                   n_clients=6, seed=11, scale=0.12,
                                   sim=sim_cfg)
            result, _ = run_traced(cfg)
            return result.total_forwards

        assert forwards(3) < forwards(0)  # deterministic at this seed

    def test_data_window_stalls_and_resumes(self, engine):
        """With the data path on, every client still finishes its stream."""
        sim_cfg = SMALL.with_(engine=engine, data_path=True, max_ticks=3000)
        cfg = ExperimentConfig(workload="zipf", balancer="vanilla",
                               n_clients=4, seed=5, scale=0.1,
                               data_path=True, sim=sim_cfg)
        result, sim = run_traced(cfg)
        assert result.data_ops > 0
        assert len(result.completion_ticks) == 4

    def test_frag_redirects_under_fragmentation(self, engine):
        """A fragmenting run routes file ops to frag owners, not dir auth."""
        result, sim = run_engine("mdtest_lunule", engine)
        frags = sim.authmap.fragmented_dirs()
        assert frags, "scenario expected to fragment at least one dir"
        # Fragment ownership actually spread load: some frag owner differs
        # from the dir's subtree authority.
        spread = False
        for d in frags:
            bits, owners = sim.authmap.frag_state(d)
            _, auth = sim.authmap.resolve_dir(d)
            if any(o != auth for o in owners.values()):
                spread = True
        assert spread


class TestTreeAccessHistogram:
    """The incremental epoch histograms behind ``unvisited_array``."""

    def test_matches_brute_force_scan(self):
        from repro.namespace.tree import NEVER_ACCESSED, NamespaceTree

        rng = np.random.default_rng(0)
        tree = NamespaceTree()
        dirs = [tree.add_dir(0, f"d{i}") for i in range(4)]
        for d in dirs:
            tree.add_files(d, 30)
        for epoch in range(12):
            for d in dirs:
                for idx in rng.integers(0, 30, size=8):
                    tree.touch_file(d, int(idx), epoch)
            batch = np.unique(rng.integers(0, 30, size=6))
            tree.touch_file_batch(dirs[0], batch, epoch)
            first = tree.n_files[dirs[1]]
            tree.add_files(dirs[1], 5)
            tree.touch_file_range(dirs[1], first, 5, epoch)
            cutoff = epoch - 3
            got = dict(tree.recently_accessed(cutoff))
            for d in dirs:
                arr = tree._file_last_access[d][: tree.n_files[d]]
                want = int(((arr != NEVER_ACCESSED) & (arr >= cutoff)).sum())
                assert got.get(d, 0) == want, (epoch, d)

    def test_n_files_array_mirrors_list(self):
        from repro.namespace.tree import NamespaceTree

        tree = NamespaceTree()
        a = tree.add_dir(0, "a")
        b = tree.add_dir(a, "b")
        tree.add_files(a, 7)
        tree.add_files(b, 3)
        tree.add_files(a, 2)
        arr = tree.n_files_array()
        assert arr.tolist() == [float(x) for x in tree.n_files]
        arr[a] = 99  # a copy, not a view
        assert tree.n_files[a] == 9


class TestSparseHeatLoads:
    """``ClusterView.heat_loads`` sums only live-heat dirs, bit-exactly."""

    def test_matches_dense_extent_walk(self):
        from repro.core.view import ClusterView, RankView
        from repro.namespace.subtree import AuthorityMap
        from repro.namespace.tree import NamespaceTree

        rng = np.random.default_rng(42)
        for trial in range(15):
            tree = NamespaceTree()
            for i in range(int(rng.integers(20, 200))):
                tree.add_dir(int(rng.integers(tree.n_dirs)), f"d{i}")
            ns = AuthorityMap(tree, 0)
            n_mds = 4
            picks = rng.choice(tree.n_dirs - 1,
                               size=min(6, tree.n_dirs - 1), replace=False)
            for d in picks:
                ns.set_subtree_auth(int(d) + 1, int(rng.integers(n_mds)))
            heat = np.where(rng.random(tree.n_dirs) < 0.4,
                            rng.random(tree.n_dirs) * 5, 0.0)
            sub, frags = ns.snapshot_state()
            view = ClusterView(
                epoch=0,
                ranks=tuple(RankView(r, 0.0, 100.0, False, (), 0.0, 0.0, 0)
                            for r in range(n_mds)),
                default_capacity=100.0, tree=tree, subtree_auth=sub,
                frags=frags, heat=heat)
            authmap = view.authority
            ref = [0.0] * n_mds
            for root, auth in authmap.subtree_roots().items():
                ref[auth] += float(sum(heat[d] for d in authmap.extent(root)))
            assert view.heat_loads() == ref, trial


class TestSparseCandidates:
    """The load-skeleton candidate path agrees with the dense walk."""

    def test_positive_candidates_bit_identical(self):
        import repro.balancers.candidates as cand
        from repro.namespace.builder import build_fanout
        from repro.namespace.subtree import AuthorityMap

        rng = np.random.default_rng(3)
        for _ in range(10):
            b = build_fanout(40, 3)
            tree = b.tree
            for i in range(60):
                tree.add_dir(int(rng.integers(tree.n_dirs)), f"x{i}")
            ns = AuthorityMap(tree, 0)
            for d in rng.choice(tree.n_dirs - 1, size=5, replace=False):
                ns.set_subtree_auth(int(d) + 1, int(rng.integers(3)))
            for d in rng.choice(b.dirs, size=3, replace=False):
                tree.add_files(int(d), 8)
                frags = ns.split_dir(int(d), 1)
                ns.set_frag_auth(frags[1], int(rng.integers(3)))
            load = np.where(rng.random(tree.n_dirs) < 0.3,
                            rng.random(tree.n_dirs) * 10, 0.0)
            for mds in range(3):
                dense = cand.candidates_for(ns, mds, load)
                sparse = cand._candidates_sparse(ns, mds, load)
                key = lambda c: (c.unit, c.load, c.self_load, c.self_files)
                assert ([key(c) for c in dense if c.load > 0 or c.is_frag]
                        == [key(c) for c in sparse if c.load > 0 or c.is_frag])
                assert (cand.scale_to_load(dense, 100.0)
                        == cand.scale_to_load(sparse, 100.0))
