"""The metrics registry: counters, gauges, histograms, labels, snapshots."""

import json

import pytest

import math

from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry, histogram_quantile


@pytest.fixture
def reg() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, reg):
        c = reg.counter("ops")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("ops").inc(-1.0)

    def test_same_name_same_labels_is_same_series(self, reg):
        reg.counter("ops", mds=0).inc(5)
        assert reg.counter("ops", mds=0).value == 5.0
        assert reg.counter("ops", mds=1).value == 0.0

    def test_get_value(self, reg):
        reg.counter("ops", mds=2).inc(7)
        assert reg.get_value("ops", mds=2) == 7.0
        assert reg.get_value("ops", mds=3) is None


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("depth")
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value == 7.0


class TestHistogram:
    def test_count_and_sum(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)

    def test_cumulative_counts_monotone_and_capped(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0, 0.1):
            h.observe(v)
        cum = h.cumulative_counts()
        assert cum == sorted(cum)
        assert cum[-1] == h.count

    def test_boundary_value_falls_in_its_bucket(self, reg):
        # bounds are inclusive upper edges, Prometheus-style
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.cumulative_counts()[0] == 1

    def test_bad_buckets_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.histogram("a", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("b", buckets=(1.0, 1.0))

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestHistogramQuantile:
    def test_linear_interpolation_inside_a_bucket(self, reg):
        h = reg.histogram("lat", buckets=(10.0, 20.0))
        for v in (1.0, 2.0, 3.0, 4.0):  # all land in (0, 10]
            h.observe(v)
        # rank 2 of 4 in a bucket spanning (0, 10] -> midpoint
        assert h.quantile(0.5) == pytest.approx(5.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_interpolates_between_bucket_edges(self, reg):
        h = reg.histogram("lat", buckets=(10.0, 20.0))
        for v in (5.0, 15.0, 15.0, 15.0):
            h.observe(v)
        # target rank 3 of 4: 2 of the 3 in-bucket ranks into (10, 20]
        assert h.quantile(0.75) == pytest.approx(10.0 + 10.0 * 2 / 3)

    def test_empty_histogram_is_nan(self, reg):
        h = reg.histogram("lat", buckets=(1.0,))
        assert math.isnan(h.quantile(0.5))

    def test_single_bucket(self, reg):
        h = reg.histogram("lat", buckets=(4.0,))
        h.observe(1.0)
        h.observe(2.0)
        assert h.quantile(0.5) == pytest.approx(2.0)

    def test_rank_in_inf_bucket_caps_at_highest_finite_bound(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(1000.0)  # +Inf bucket
        assert h.quantile(0.99) == 10.0

    def test_out_of_range_q_rejected(self, reg):
        h = reg.histogram("lat", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_negative_first_bucket_uses_its_own_bound_as_lower_edge(self):
        # a first bucket with a non-positive upper edge has no natural 0
        # lower edge; the estimate degrades to the bound itself
        assert histogram_quantile([-5.0, 0.0], [2, 2], 2, 0.5) == -5.0

    def test_standalone_function_matches_snapshot_data(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        snap = h.snapshot()
        bounds = sorted(float(k) for k in snap["buckets"] if k != "+Inf")
        cumulative = [snap["buckets"][repr(b)] for b in bounds]
        via_snapshot = histogram_quantile(bounds, cumulative,
                                          snap["count"], 0.95)
        assert via_snapshot == pytest.approx(h.quantile(0.95))

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            histogram_quantile([1.0, 2.0], [1], 1, 0.5)


class TestRegistry:
    def test_kind_conflict_rejected(self, reg):
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_kind_conflict_across_labels_rejected(self, reg):
        reg.counter("y", mds=0)
        with pytest.raises(TypeError):
            reg.gauge("y", mds=1)

    def test_empty_name_rejected(self, reg):
        with pytest.raises(ValueError):
            reg.counter("")

    def test_snapshot_shape(self, reg):
        reg.counter("ops", mds=0).inc(3)
        reg.counter("ops", mds=1).inc(4)
        reg.gauge("if").set(0.5)
        snap = reg.snapshot()
        assert snap["ops"]["kind"] == "counter"
        assert [s["value"] for s in snap["ops"]["series"]] == [3.0, 4.0]
        assert snap["if"]["series"][0] == {"labels": {}, "value": 0.5}

    def test_snapshot_is_json_stable(self, reg):
        reg.counter("b").inc()
        reg.counter("a", z=1, a=2).inc()
        first = reg.to_json()
        assert first == reg.to_json()
        json.loads(first)  # parses

    def test_timer_observes_elapsed(self, reg):
        with reg.timer("phase.run"):
            pass
        h = reg.histogram("phase.run")
        assert h.count == 1
        assert h.sum >= 0.0

    def test_iteration_sorted_by_name(self, reg):
        reg.counter("z")
        reg.counter("a")
        assert [m.name for m in reg] == ["a", "z"]
