"""Property-based invariants across the authority map, migration and IF model.

These are the safety properties everything else rests on: every directory
always has exactly one authority, fragment files partition exactly, inode
totals are conserved under arbitrary migration sequences, and the IF model
stays in its documented range.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.migration import Migrator
from repro.core.if_model import imbalance_factor
from repro.namespace.builder import build_fanout
from repro.namespace.subtree import AuthorityMap
from repro.namespace.tree import NamespaceTree


def random_tree(draw_dirs: list[int], files: list[int]) -> NamespaceTree:
    """Build a tree where dir i attaches under parent draw_dirs[i] % i."""
    t = NamespaceTree()
    for i, (p, f) in enumerate(zip(draw_dirs, files), start=1):
        parent = p % i  # valid existing id
        d = t.add_dir(parent, f"d{i}")
        t.add_files(d, f)
    return t


tree_strategy = st.tuples(
    st.lists(st.integers(0, 100), min_size=1, max_size=25),
    st.lists(st.integers(0, 20), min_size=1, max_size=25),
).map(lambda pair: random_tree(pair[0], pair[1][: len(pair[0])] +
                               [0] * max(0, len(pair[0]) - len(pair[1]))))


class TestAuthorityPartition:
    @given(tree_strategy, st.lists(st.tuples(st.integers(0, 200), st.integers(0, 4)),
                                   max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_every_dir_always_resolvable(self, tree, assignments):
        am = AuthorityMap(tree, 0)
        for raw_d, mds in assignments:
            am.set_subtree_auth(raw_d % tree.n_dirs, mds)
        for d in range(tree.n_dirs):
            auth, root = am.resolve_dir(d)
            assert 0 <= auth <= 4
            assert am.is_subtree_root(root)

    @given(tree_strategy, st.lists(st.tuples(st.integers(0, 200), st.integers(0, 4)),
                                   max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_extents_partition_namespace(self, tree, assignments):
        am = AuthorityMap(tree, 0)
        for raw_d, mds in assignments:
            am.set_subtree_auth(raw_d % tree.n_dirs, mds)
        seen: list[int] = []
        for root in am.subtree_roots():
            seen.extend(am.extent(root))
        assert sorted(seen) == list(range(tree.n_dirs))

    @given(tree_strategy, st.lists(st.tuples(st.integers(0, 200), st.integers(0, 4)),
                                   max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_inode_total_invariant(self, tree, assignments):
        am = AuthorityMap(tree, 0)
        expected = tree.n_dirs + tree.total_files()
        for raw_d, mds in assignments:
            am.set_subtree_auth(raw_d % tree.n_dirs, mds)
            assert sum(am.inode_distribution(5)) == expected


class TestFragPartition:
    @given(st.integers(0, 500), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_resplit_preserves_file_routing_totals(self, n_files, bits1, bits2):
        tree = NamespaceTree()
        d = tree.add_dir(0, "big")
        tree.add_files(d, n_files)
        am = AuthorityMap(tree, 0)
        am.split_dir(d, bits1)
        am.frag_state(d)
        owners_before = [am.resolve(d, i) for i in range(n_files)]
        if bits2 > bits1:
            am.split_dir(d, bits2)
            owners_after = [am.resolve(d, i) for i in range(n_files)]
            assert owners_before == owners_after  # re-split never moves files


class TestMigrationConservation:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 3)), min_size=1,
                    max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_export_sequence_conserves_inodes(self, moves):
        built = build_fanout(8, 5)
        am = AuthorityMap(built.tree, 0)
        mig = Migrator(am, rate=1000, commit_latency=0)
        expected = sum(am.inode_distribution(4))
        for raw_d, dst in moves:
            d = raw_d % built.tree.n_dirs
            if d == 0:
                continue
            src = am.resolve_dir(d)[0]
            if src == dst:
                continue
            mig.submit_export(src, dst, d)
            for _ in range(3):
                mig.tick()
            assert sum(am.inode_distribution(4)) == expected
        assert mig.committed_tasks + mig.aborted_tasks <= len(moves)


class TestIfModelProperties:
    @given(st.lists(st.floats(0, 1000), min_size=2, max_size=20),
           st.floats(1.0, 1e4))
    @settings(max_examples=100, deadline=None)
    def test_if_in_unit_interval(self, loads, cap):
        v = imbalance_factor(loads, cap)
        assert 0.0 <= v <= 1.0
        assert not math.isnan(v)

    @given(st.integers(2, 16), st.floats(1.0, 100.0))
    @settings(max_examples=50, deadline=None)
    def test_single_hot_is_maximal_shape(self, n, load):
        skewed = [load] + [0.0] * (n - 1)
        balanced = [load / n] * n
        cap = load
        assert imbalance_factor(skewed, cap) > imbalance_factor(balanced, cap)

    @given(st.lists(st.floats(1.0, 100.0), min_size=2, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_permutation_invariant(self, loads):
        a = imbalance_factor(loads, 200.0)
        b = imbalance_factor(list(reversed(loads)), 200.0)
        assert a == pytest.approx(b)


class TestRouterTotalServed:
    @given(st.integers(2, 6), st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_simulation_op_conservation(self, n_clients, reads):
        from repro.balancers import make_balancer
        from repro.cluster.simulator import SimConfig, Simulator
        from repro.workloads import ZipfWorkload

        wl = ZipfWorkload(n_clients, files_per_dir=10, reads_per_client=reads)
        sim = Simulator(wl.materialize(seed=1), make_balancer("lunule"),
                        SimConfig(n_mds=3, mds_capacity=40, epoch_len=5,
                                  max_ticks=5000))
        res = sim.run()
        assert sum(res.served_per_mds) == n_clients * reads
        assert len(res.completion_ticks) == n_clients
