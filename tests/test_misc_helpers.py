"""Coverage of remaining small public helpers."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_matrix
from repro.util.rng import substream
from repro.workloads import WORKLOADS
from repro.workloads.base import interleave_passes, zipf_like_sizes


class TestRunMatrix:
    def test_cross_product(self):
        base = ExperimentConfig(n_clients=4, scale=0.15)
        out = run_matrix(["zipf", "mdtest"], ["nop", "lunule"], base)
        assert set(out) == {("zipf", "nop"), ("zipf", "lunule"),
                            ("mdtest", "nop"), ("mdtest", "lunule")}
        for (w, b), res in out.items():
            assert res.workload == w and res.balancer == b


class TestWorkloadRegistry:
    def test_all_paper_workloads_registered(self):
        assert {"cnn", "nlp", "web", "zipf", "mdtest", "mixed"} <= set(WORKLOADS)

    def test_registry_classes_instantiable(self):
        for name, cls in WORKLOADS.items():
            if name == "mixed":
                continue
            wl = cls(2)
            assert wl.n_clients == 2


class TestBaseHelpers:
    def test_interleave_passes_concatenates(self):
        a = iter([(0, 1, 2, 3)])
        b = iter([(4, 5, 6, 7), (8, 9, 10, 11)])
        assert list(interleave_passes(a, b)) == [
            (0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11)]

    def test_zipf_like_sizes_mean_and_positivity(self):
        rng = substream(1, "sizes")
        sizes = zipf_like_sizes(rng, 5000, 1000.0)
        assert sizes.min() >= 1
        assert sizes.mean() == pytest.approx(1000.0, rel=0.15)

    def test_zipf_like_sizes_long_tail(self):
        rng = substream(2, "sizes")
        sizes = zipf_like_sizes(rng, 5000, 1000.0)
        assert sizes.max() > 4 * sizes.mean()


class TestSimConfigWith:
    def test_with_overrides_without_mutation(self):
        from repro.cluster.simulator import SimConfig

        a = SimConfig(n_mds=5)
        b = a.with_(n_mds=7, mds_capacity=42.0)
        assert a.n_mds == 5 and b.n_mds == 7
        assert b.mds_capacity == 42.0
        with pytest.raises(Exception):
            a.n_mds = 9  # type: ignore[misc]


class TestFigureResultStr:
    def test_str_returns_text(self):
        from repro.experiments.figures import FigureResult

        r = FigureResult("x", "t", {}, "rendered")
        assert str(r) == "rendered"
