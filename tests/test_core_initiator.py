"""Algorithm 1 and the Migration Initiator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.initiator import (
    InitiatorConfig,
    MdsLoad,
    MigrationInitiator,
    decide_roles,
)


def mk(rank, cld, fld=None):
    return MdsLoad(rank=rank, cld=cld, fld=cld if fld is None else fld)


class TestDecideRoles:
    def test_balanced_cluster_no_exports(self):
        E = decide_roles([mk(0, 10), mk(1, 10), mk(2, 10)], 0.01, 100)
        assert not E.any()

    def test_hot_mds_exports_to_cold(self):
        stats = [mk(0, 90, 90), mk(1, 10, 10)]
        E = decide_roles(stats, 0.01, 100)
        assert E[0, 1] == pytest.approx(40.0)  # both deviate 40 from mean 50

    def test_deviation_gate_filters_small_gaps(self):
        # relative deviation^2 below L: nobody becomes a role
        stats = [mk(0, 51, 51), mk(1, 49, 49)]
        E = decide_roles(stats, 0.01, 100)
        assert not E.any()

    def test_cap_limits_export(self):
        stats = [mk(0, 1000, 1000), mk(1, 0, 0)]
        E = decide_roles(stats, 0.01, cap=100)
        assert E.sum() <= 100.0 + 1e-9

    def test_rising_importer_excluded(self):
        # importer whose predicted growth covers its gap takes nothing
        stats = [mk(0, 90, 90), mk(1, 10, 60)]
        E = decide_roles(stats, 0.01, 100)
        assert E[0, 1] == 0.0

    def test_rising_importer_partially_discounted(self):
        stats = [mk(0, 90, 90), mk(1, 10, 30)]
        E = decide_roles(stats, 0.01, 100)
        # gap 40, future growth 20 -> import capacity 20
        assert E[0, 1] == pytest.approx(20.0)

    def test_declining_importer_takes_more(self):
        # exporter demand exceeds both importers' capacity, so the amount
        # shipped is set by the importer's ild — which grows when the
        # importer's own load is predicted to fall
        up = decide_roles([mk(0, 200, 200), mk(1, 40, 90)], 0.01, 100)[0, 1]
        down = decide_roles([mk(0, 200, 200), mk(1, 40, 40)], 0.01, 100)[0, 1]
        assert down > up

    def test_multiple_pairs(self):
        stats = [mk(0, 100), mk(1, 100), mk(2, 0), mk(3, 0)]
        E = decide_roles(stats, 0.01, 100)
        assert E[0].sum() > 0 and E[1].sum() > 0
        assert E[:, 2].sum() > 0 and E[:, 3].sum() > 0

    def test_zero_mean_no_action(self):
        E = decide_roles([mk(0, 0), mk(1, 0)], 0.01, 100)
        assert not E.any()

    def test_zero_cap_no_action(self):
        E = decide_roles([mk(0, 90), mk(1, 0)], 0.01, 0)
        assert not E.any()

    @given(st.lists(st.floats(0, 1000), min_size=2, max_size=10),
           st.floats(10, 500))
    @settings(max_examples=50, deadline=None)
    def test_exports_bounded_by_demands(self, loads, cap):
        stats = [mk(i, l) for i, l in enumerate(loads)]
        E = decide_roles(stats, 0.01, cap)
        assert (E >= 0).all()
        assert np.diagonal(E).sum() == 0.0
        # no exporter ships more than cap; no importer receives more than cap
        assert (E.sum(axis=1) <= cap + 1e-6).all()
        assert (E.sum(axis=0) <= cap + 1e-6).all()

    @given(st.lists(st.floats(0, 1000), min_size=2, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_exporters_above_mean_importers_below(self, loads):
        stats = [mk(i, l) for i, l in enumerate(loads)]
        E = decide_roles(stats, 0.01, 1000)
        mean = sum(loads) / len(loads)
        for i in range(len(loads)):
            if E[i].sum() > 0:
                assert loads[i] > mean
            if E[:, i].sum() > 0:
                assert loads[i] < mean


class TestInitiator:
    def _histories(self, loads):
        return [[l] * 5 for l in loads]

    def test_below_threshold_no_decisions(self):
        init = MigrationInitiator(100.0)
        loads = [50.0, 48.0, 52.0, 50.0]
        assert init.plan(0, loads, self._histories(loads)) == []
        assert init.triggers == 0

    def test_trigger_and_decisions(self):
        init = MigrationInitiator(100.0)
        loads = [100.0, 0.0, 0.0, 0.0]
        decisions = init.plan(0, loads, self._histories(loads))
        assert init.triggers == 1
        assert len(decisions) == 1
        assert decisions[0].exporter == 0
        assert set(decisions[0].assignments) <= {1, 2, 3}

    def test_benign_imbalance_tolerated(self):
        init = MigrationInitiator(1000.0)  # huge capacity -> low urgency
        loads = [100.0, 0.0, 0.0, 0.0]
        assert init.plan(0, loads, self._histories(loads)) == []

    def test_urgency_ablation_triggers_at_light_load(self):
        cfg = InitiatorConfig(use_urgency=False)
        init = MigrationInitiator(1000.0, cfg)
        loads = [100.0, 0.0, 0.0, 0.0]
        assert init.plan(0, loads, self._histories(loads)) != []

    def test_pending_migrations_discounted(self):
        init = MigrationInitiator(100.0)
        loads = [100.0, 0.0]
        # everything already in flight: planned view is balanced
        decisions = init.plan(0, loads, self._histories(loads),
                              pending_out=[50.0, 0.0], pending_in=[0.0, 50.0])
        assert decisions == []

    def test_overhead_accounting(self):
        init = MigrationInitiator(100.0)
        loads = [100.0, 0.0, 0.0]
        init.plan(0, loads, self._histories(loads))
        assert init.bytes_received > 0
        assert init.bytes_sent > 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MigrationInitiator(0.0)


class TestEpochSkipped:
    """The "why not" path: skips are traced, reasoned and counted."""

    def _histories(self, loads):
        return [[l] * 5 for l in loads]

    @staticmethod
    def _traced(capacity, config=None):
        from repro.obs.registry import MetricsRegistry
        from repro.obs.tracelog import TraceLog

        trace, metrics = TraceLog(), MetricsRegistry()
        init = MigrationInitiator(capacity, config, trace=trace,
                                  metrics=metrics)
        return init, trace, metrics

    def _skip_reasons(self, metrics):
        snap = metrics.snapshot().get("initiator.epoch_skipped")
        if snap is None:
            return {}
        return {s["labels"]["reason"]: s["value"] for s in snap["series"]}

    def test_balanced_cluster_skips_below_threshold(self):
        init, trace, metrics = self._traced(100.0)
        loads = [50.0, 48.0, 52.0, 50.0]
        assert init.plan(0, loads, self._histories(loads)) == []
        (skip,) = trace.events("epoch_skipped")
        assert skip.reason == "if_below_threshold"
        assert skip.value == init.last_if
        assert skip.threshold == init.config.if_threshold
        assert self._skip_reasons(metrics) == {"if_below_threshold": 1.0}

    def test_benign_imbalance_skips_as_urgency_low(self):
        # huge capacity: the urgency term damps a large CoV below the
        # trigger — exactly the benign imbalance Eq. 2-3 tolerate
        init, trace, metrics = self._traced(1000.0)
        loads = [100.0, 0.0, 0.0, 0.0]
        assert init.plan(0, loads, self._histories(loads)) == []
        (skip,) = trace.events("epoch_skipped")
        assert skip.reason == "urgency_low"
        assert self._skip_reasons(metrics) == {"urgency_low": 1.0}

    def test_empty_export_matrix_skips_as_no_exporters(self):
        # trigger fires, but the only candidate importer's predicted load
        # growth covers its whole gap: Algorithm 1 pairs nobody
        init, trace, metrics = self._traced(100.0)
        loads = [90.0, 10.0]
        histories = [[90.0] * 5, [10.0, 30.0, 50.0, 70.0, 90.0]]
        assert init.plan(0, loads, histories) == []
        assert init.triggers == 1
        (skip,) = trace.events("epoch_skipped")
        assert skip.reason == "no_exporters"
        assert self._skip_reasons(metrics) == {"no_exporters": 1.0}

    def test_skip_is_parented_to_the_if_decision(self):
        init, trace, _ = self._traced(100.0)
        loads = [50.0, 50.0]
        init.plan(0, loads, self._histories(loads))
        (iff,) = trace.events("if_computed")
        (skip,) = trace.events("epoch_skipped")
        assert skip.parent == iff.did
        assert skip.did > iff.did

    def test_acting_epochs_record_no_skip(self):
        init, trace, metrics = self._traced(100.0)
        loads = [100.0, 0.0, 0.0, 0.0]
        assert init.plan(0, loads, self._histories(loads)) != []
        assert trace.events("epoch_skipped") == []
        assert self._skip_reasons(metrics) == {}
