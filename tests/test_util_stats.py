"""Statistics helpers: CoV, percentiles, running stats, regression."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    RunningStats,
    coefficient_of_variation,
    ecdf,
    linear_regression_predict,
    percentile,
)


class TestCoV:
    def test_uniform_loads_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        # mean 2, sample std sqrt(2)
        vals = [1.0, 3.0]
        assert coefficient_of_variation(vals) == pytest.approx(math.sqrt(2) / 2)

    def test_single_mds_is_zero(self):
        assert coefficient_of_variation([10.0]) == 0.0

    def test_empty_is_zero(self):
        assert coefficient_of_variation([]) == 0.0

    def test_all_zero_loads(self):
        assert coefficient_of_variation([0.0, 0.0, 0.0]) == 0.0

    def test_max_when_one_loaded(self):
        # One of n busy: CoV == sqrt(n) (the paper's normalization bound).
        for n in (2, 5, 16):
            loads = [1.0] + [0.0] * (n - 1)
            assert coefficient_of_variation(loads) == pytest.approx(math.sqrt(n))

    @given(st.lists(st.floats(0.0, 1e6), min_size=2, max_size=20), st.floats(0.1, 100.0))
    def test_scale_invariant(self, loads, k):
        a = coefficient_of_variation(loads)
        b = coefficient_of_variation([x * k for x in loads])
        assert a == pytest.approx(b, rel=1e-9, abs=1e-9)

    @given(st.lists(st.floats(0.0, 1e6), min_size=2, max_size=16))
    def test_bounded_by_sqrt_n(self, loads):
        # relative tolerance: denormal inputs can push the float result a
        # few ulps past the mathematical sqrt(n) bound
        n = len(loads)
        assert coefficient_of_variation(loads) <= math.sqrt(n) * (1 + 1e-6)


class TestPercentileEcdf:
    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_ecdf_monotone(self):
        xs, fr = ecdf([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(fr) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_ecdf_empty(self):
        xs, fr = ecdf([])
        assert xs.size == 0 and fr.size == 0


class TestRunningStats:
    def test_matches_numpy(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        rs = RunningStats()
        for x in data:
            rs.push(x)
        assert rs.mean == pytest.approx(np.mean(data))
        assert rs.variance == pytest.approx(np.var(data, ddof=1))
        assert rs.std == pytest.approx(np.std(data, ddof=1))

    def test_empty(self):
        rs = RunningStats()
        assert rs.count == 0 and rs.mean == 0.0 and rs.variance == 0.0

    def test_single_sample_variance_zero(self):
        rs = RunningStats()
        rs.push(42.0)
        assert rs.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_streaming_equals_batch(self, data):
        rs = RunningStats()
        for x in data:
            rs.push(x)
        assert rs.mean == pytest.approx(float(np.mean(data)), rel=1e-6, abs=1e-6)


class TestLinearRegression:
    def test_empty_history(self):
        assert linear_regression_predict([]) == 0.0

    def test_single_point_extrapolates_flat(self):
        assert linear_regression_predict([7.0]) == 7.0

    def test_linear_trend(self):
        assert linear_regression_predict([1.0, 2.0, 3.0]) == pytest.approx(4.0)

    def test_steps_ahead(self):
        assert linear_regression_predict([1.0, 2.0, 3.0], steps_ahead=3) == pytest.approx(6.0)

    def test_declining_clamped_at_zero(self):
        assert linear_regression_predict([10.0, 5.0, 0.0]) == 0.0

    def test_constant_history(self):
        assert linear_regression_predict([5.0, 5.0, 5.0]) == pytest.approx(5.0)

    @given(st.lists(st.floats(0.0, 1e5), min_size=1, max_size=20))
    def test_never_negative(self, hist):
        assert linear_regression_predict(hist) >= 0.0
