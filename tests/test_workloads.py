"""Workload generators: shapes, op streams, determinism, ratios."""

import numpy as np
import pytest

from repro.workloads import (
    CnnWorkload,
    MdtestWorkload,
    MixedWorkload,
    NlpWorkload,
    WebWorkload,
    ZipfWorkload,
    OP_CREATE,
    OP_OPEN,
    OP_STAT,
)


def drain(client):
    """Collect a client's full op stream."""
    ops = []
    op = client.current
    while op is not None:
        ops.append(op)
        op = next(client._ops, None)
    return ops


def meta_ratio(ops):
    meta = len(ops)
    data = sum(1 for o in ops if o[3] > 0)
    return meta / (meta + data)


class TestCnn:
    def test_two_passes_cover_all_files(self):
        wl = CnnWorkload(1, n_dirs=5, files_per_dir=4)
        inst = wl.materialize(seed=1)
        ops = drain(inst.clients[0])
        stats = [o for o in ops if o[0] == OP_STAT]
        opens = [o for o in ops if o[0] == OP_OPEN]
        assert len(stats) == 2 * 20  # lookup + getattr per image
        assert len(opens) == 20
        assert {(o[1], o[2]) for o in opens} == {(d, i) for d in inst.built.dirs
                                                 for i in range(4)}

    def test_pass2_is_shuffled_per_client(self):
        wl = CnnWorkload(2, n_dirs=5, files_per_dir=10)
        inst = wl.materialize(seed=1)
        orders = []
        for c in inst.clients:
            opens = [(o[1], o[2]) for o in drain(c) if o[0] == OP_OPEN]
            orders.append(opens)
        assert orders[0] != orders[1]
        assert sorted(orders[0]) == sorted(orders[1])

    def test_meta_ratio_near_paper(self):
        wl = CnnWorkload(1, n_dirs=10, files_per_dir=10)
        ops = drain(wl.materialize(seed=1).clients[0])
        assert meta_ratio(ops) == pytest.approx(0.781, abs=0.05)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CnnWorkload(1, n_dirs=0)


class TestNlp:
    def test_folder_sizes_skewed(self):
        wl = NlpWorkload(1, n_folders=14, total_files=2000)
        inst = wl.materialize(seed=1)
        assert max(inst.built.files) > 5 * min(inst.built.files)

    def test_sequential_scan(self):
        wl = NlpWorkload(1, n_folders=4, total_files=40)
        inst = wl.materialize(seed=1)
        ops = [o for o in drain(inst.clients[0]) if o[0] == OP_OPEN]
        dirs_in_order = [o[1] for o in ops]
        # folder order is monotone: a folder never reappears once left
        seen = []
        for d in dirs_in_order:
            if not seen or seen[-1] != d:
                seen.append(d)
        assert len(seen) == len(set(seen))

    def test_meta_ratio_metadata_dominated(self):
        wl = NlpWorkload(1, n_folders=5, total_files=100)
        ops = drain(wl.materialize(seed=1).clients[0])
        assert meta_ratio(ops) >= 0.75


class TestWeb:
    def test_all_clients_replay_same_trace(self):
        wl = WebWorkload(2, total_files=200, n_requests=100)
        inst = wl.materialize(seed=1)
        a = [o for o in drain(inst.clients[0])]
        b = [o for o in drain(inst.clients[1])]
        assert a == b

    def test_trace_has_temporal_locality(self):
        wl = WebWorkload(1, total_files=500, n_requests=1000)
        inst = wl.materialize(seed=1)
        opens = [(o[1], o[2]) for o in drain(inst.clients[0]) if o[0] == OP_OPEN]
        # Zipfian popularity: the hottest file appears many times
        from collections import Counter
        top = Counter(opens).most_common(1)[0][1]
        assert top > 5

    def test_meta_ratio(self):
        wl = WebWorkload(1, total_files=200, n_requests=300)
        ops = drain(wl.materialize(seed=1).clients[0])
        assert meta_ratio(ops) == pytest.approx(0.572, abs=0.02)


class TestZipf:
    def test_private_dirs(self):
        wl = ZipfWorkload(3, files_per_dir=50, reads_per_client=100)
        inst = wl.materialize(seed=1)
        for i, c in enumerate(inst.clients):
            dirs = {o[1] for o in drain(c)}
            assert dirs == {inst.built.dirs[i]}

    def test_eighty_twenty_access(self):
        wl = ZipfWorkload(1, files_per_dir=1000, reads_per_client=5000)
        inst = wl.materialize(seed=1)
        idxs = [o[2] for o in drain(inst.clients[0])]
        from collections import Counter
        counts = np.array(sorted(Counter(idxs).values(), reverse=True))
        top20 = counts[: max(1, len(counts) // 5)].sum() / counts.sum()
        assert top20 > 0.45

    def test_meta_ratio_half(self):
        wl = ZipfWorkload(1, files_per_dir=50, reads_per_client=100)
        ops = drain(wl.materialize(seed=1).clients[0])
        assert meta_ratio(ops) == pytest.approx(0.5)


class TestMdtest:
    def test_all_creates(self):
        wl = MdtestWorkload(2, creates_per_client=50)
        inst = wl.materialize(seed=1)
        ops = drain(inst.clients[0])
        assert len(ops) == 50
        assert all(o[0] == OP_CREATE for o in ops)
        assert meta_ratio(ops) == 1.0

    def test_dirs_start_empty(self):
        wl = MdtestWorkload(2, creates_per_client=10)
        inst = wl.materialize(seed=1)
        assert inst.tree.total_files() == 0


class TestMixed:
    def _mixed(self):
        return MixedWorkload([
            CnnWorkload(2, n_dirs=5, files_per_dir=5),
            ZipfWorkload(2, files_per_dir=20, reads_per_client=30),
        ])

    def test_groups_share_one_tree(self):
        inst = self._mixed().materialize(seed=1)
        assert len(inst.clients) == 4
        groups = {c.group for c in inst.clients}
        assert groups == {"cnn", "zipf"}

    def test_client_ids_unique(self):
        inst = self._mixed().materialize(seed=1)
        cids = [c.cid for c in inst.clients]
        assert len(set(cids)) == len(cids)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MixedWorkload([])


class TestDeterminism:
    @pytest.mark.parametrize("factory", [
        lambda: CnnWorkload(2, n_dirs=5, files_per_dir=5),
        lambda: NlpWorkload(2, n_folders=4, total_files=50),
        lambda: WebWorkload(2, total_files=100, n_requests=60),
        lambda: ZipfWorkload(2, files_per_dir=30, reads_per_client=40),
        lambda: MdtestWorkload(2, creates_per_client=20),
    ])
    def test_same_seed_same_stream(self, factory):
        a = [drain(c) for c in factory().materialize(seed=9).clients]
        b = [drain(c) for c in factory().materialize(seed=9).clients]
        assert a == b

    def test_different_seed_differs(self):
        a = drain(ZipfWorkload(1, files_per_dir=100, reads_per_client=50)
                  .materialize(seed=1).clients[0])
        b = drain(ZipfWorkload(1, files_per_dir=100, reads_per_client=50)
                  .materialize(seed=2).clients[0])
        assert a != b


class TestJitter:
    def test_stall_probs_within_bound(self):
        wl = ZipfWorkload(10, files_per_dir=10, reads_per_client=5, jitter=0.2)
        inst = wl.materialize(seed=1)
        assert all(0.0 <= c.stall_prob < 0.2 for c in inst.clients)

    def test_rate_propagates(self):
        wl = ZipfWorkload(3, files_per_dir=10, reads_per_client=5, client_rate=4)
        inst = wl.materialize(seed=1)
        assert all(c.rate == 4 for c in inst.clients)
