"""Runtime lock sanitizer: positive and negative specimens.

These are the lock-order fixtures of the corpus (see
``tests/lint_fixtures/README.md``): lock-order inversion is a runtime
property, so the deliberately broken code lives here and the acceptance
criterion "the sanitizer provably fires" is pinned by
``test_lock_order_inversion_is_reported``.
"""

import threading

import pytest

from repro.serve import sanitizer
from repro.serve.sanitizer import (
    MonitoredLock,
    guard_writes,
    reports,
    reset,
    sanitize_lock,
)


@pytest.fixture
def sanitize_on(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    reset()
    yield
    reset()


@pytest.fixture
def sanitize_off(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    yield
    reset()


# ---------------------------------------------------------------- lock order
def test_lock_order_inversion_is_reported(sanitize_on):
    a = sanitize_lock(threading.Lock(), "A")
    b = sanitize_lock(threading.Lock(), "B")
    with a:
        with b:
            pass
    # the opposite nesting on the same thread: no deadlock actually
    # happens, but the order graph now has A->B and B->A
    with b:
        with a:
            pass
    found = [r for r in reports() if r.kind == "lock-order"]
    assert len(found) == 1
    assert "'A'" in found[0].message and "'B'" in found[0].message
    assert "deadlock" in found[0].message


def test_lock_order_inversion_through_a_chain(sanitize_on):
    a = sanitize_lock(threading.Lock(), "A")
    b = sanitize_lock(threading.Lock(), "B")
    c = sanitize_lock(threading.Lock(), "C")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    # C -> A closes the cycle A -> B -> C -> A
    with c:
        with a:
            pass
    found = [r for r in reports() if r.kind == "lock-order"]
    assert len(found) == 1
    assert "A -> B -> C" in found[0].message


def test_consistent_order_is_silent(sanitize_on):
    a = sanitize_lock(threading.Lock(), "A")
    b = sanitize_lock(threading.Lock(), "B")
    for _ in range(3):
        with a:
            with b:
                pass
    assert reports() == []


def test_reentrant_acquire_records_no_self_edge(sanitize_on):
    r = sanitize_lock(threading.RLock(), "R")
    with r:
        with r:
            pass
    assert reports() == []


def test_duplicate_inversions_reported_once_per_pair(sanitize_on):
    a = sanitize_lock(threading.Lock(), "A")
    b = sanitize_lock(threading.Lock(), "B")
    for _ in range(3):
        with a:
            with b:
                pass
        with b:
            with a:
                pass
    assert len([r for r in reports() if r.kind == "lock-order"]) == 1


# ------------------------------------------------------------ guarded writes
class _Box:
    def __init__(self):
        self.lock = None
        self.state = "created"
        self.count = 0


def test_unguarded_write_is_reported(sanitize_on):
    box = _Box()
    box.lock = sanitize_lock(threading.Lock(), "box.lock")
    guard_writes(box, box.lock, ("state", "count"))
    box.state = "oops"
    found = [r for r in reports() if r.kind == "unguarded-write"]
    assert len(found) == 1
    assert "_Box.state" in found[0].message
    assert "'box.lock'" in found[0].message


def test_guarded_write_is_silent(sanitize_on):
    box = _Box()
    box.lock = sanitize_lock(threading.Lock(), "box.lock")
    guard_writes(box, box.lock, ("state",))
    with box.lock:
        box.state = "fine"
    box.count = 1  # unregistered attr: always fine
    assert reports() == []


def test_unguarded_write_from_worker_thread_names_the_thread(sanitize_on):
    box = _Box()
    box.lock = sanitize_lock(threading.Lock(), "box.lock")
    guard_writes(box, box.lock, ("state",))

    def clobber():
        box.state = "raced"

    t = threading.Thread(target=clobber, name="clobberer")
    t.start()
    t.join()
    (found,) = [r for r in reports() if r.kind == "unguarded-write"]
    assert "'clobberer'" in found.message


def test_holding_lock_on_another_thread_does_not_cover_writer(sanitize_on):
    # held-lock state is per thread: main holding the lock must not
    # excuse a write from a worker that does not hold it
    box = _Box()
    box.lock = sanitize_lock(threading.Lock(), "box.lock")
    guard_writes(box, box.lock, ("state",))
    with box.lock:
        t = threading.Thread(target=lambda: setattr(box, "state", "raced"))
        t.start()
        t.join()
    assert [r.kind for r in reports()] == ["unguarded-write"]


def test_class_swap_is_idempotent_and_preserves_name(sanitize_on):
    box = _Box()
    box.lock = sanitize_lock(threading.Lock(), "box.lock")
    guard_writes(box, box.lock, ("state",))
    cls_after_first = type(box)
    guard_writes(box, box.lock, ("count",))
    assert type(box) is cls_after_first
    assert type(box).__name__ == "_Box"
    with box.lock:
        box.state = "ok"
        box.count = 2
    assert reports() == []


# ----------------------------------------------------------------- disabled
def test_disabled_sanitize_lock_is_identity(sanitize_off):
    raw = threading.Lock()
    assert sanitize_lock(raw, "X") is raw


def test_disabled_guard_writes_is_noop(sanitize_off):
    box = _Box()
    box.lock = sanitize_lock(threading.Lock(), "box.lock")
    guard_writes(box, box.lock, ("state",))
    assert type(box) is _Box
    box.state = "anything"
    assert reports() == []


def test_enabled_flag_reads_environment_per_call(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitizer.enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitizer.enabled()


def test_monitored_lock_tracks_holds_per_thread(sanitize_on):
    lock = sanitize_lock(threading.Lock(), "L")
    assert isinstance(lock, MonitoredLock)
    assert not lock.held_by_current_thread()
    with lock:
        assert lock.held_by_current_thread()
        seen = []
        t = threading.Thread(
            target=lambda: seen.append(lock.held_by_current_thread()))
        t.start()
        t.join()
        assert seen == [False]
    assert not lock.held_by_current_thread()
