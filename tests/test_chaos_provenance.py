"""Chaos provenance: fault -> abort causal chains and diff-vs-twin forks.

For every bundled scenario this pins the two observability promises the
chaos engine makes: ``repro explain`` terminates each
``migration_aborted(reason=mds_failed)`` chain at a ``fault_injected``
ancestor, and ``repro diff`` between a chaos run and its fault-free twin
(same workload, balancer, seed and cluster) reports the first divergence
in the first fault's epoch — the run forked exactly when the cluster got
hurt, not before.
"""

import pytest

from repro.chaos.schedule import bundled_scenarios
from repro.experiments.chaos import CHAOS_SIM_CONFIG, run_chaos
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_traced
from repro.obs.diff import diff_traces
from repro.obs.provenance import explain, format_event

SCENARIOS = sorted(bundled_scenarios())
SEED = 1


@pytest.fixture(scope="module")
def runs():
    """scenario -> (report, chaos sim, fault-free twin sim), one seed."""
    out = {}
    for name in SCENARIOS:
        report, _, sim = run_chaos(name, seed=SEED)
        cfg = ExperimentConfig(workload="mdtest", balancer="lunule",
                               n_clients=8, seed=SEED, scale=0.15,
                               sim=CHAOS_SIM_CONFIG.with_(seed=SEED))
        _, twin = run_traced(cfg)
        out[name] = (report, sim, twin)
    return out


def forced_aborts(sim):
    report = explain(list(sim.trace))
    return [m for b in report["epochs"] for m in b["migrations"]
            if m["outcome"] == "aborted" and m["reason"] == "mds_failed"]


class TestExplainChains:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_forced_abort_chains_end_at_fault(self, runs, name):
        _, sim, _ = runs[name]
        for m in forced_aborts(sim):
            assert m["cause"] is not None
            assert m["cause"]["e"] == "fault_injected"
            chain = [d["e"] for d in m["chain"]]
            assert chain[0] == "if_computed"
            assert chain[-1] == "migration_aborted"
            assert chain[-2] == "fault_injected"

    def test_fault_paths_actually_exercised(self, runs):
        # brownout only slows ranks (no aborts by design); every
        # fail-kind scenario must catch at least one export mid-flight,
        # otherwise the chain assertions above are vacuous
        exercised = [n for n in SCENARIOS
                     if n != "brownout" and forced_aborts(runs[n][1])]
        assert exercised, "no scenario produced a fault-caused abort"

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_twin_is_fault_free(self, runs, name):
        _, _, twin = runs[name]
        counts = twin.trace.counts()
        assert "fault_injected" not in counts
        assert "fault_cleared" not in counts

    def test_format_event_renders_fault_chain(self, runs):
        _, sim, _ = runs["flap"]
        aborts = forced_aborts(sim)
        assert aborts
        lines = [format_event(d) for d in aborts[0]["chain"]]
        assert any(l.startswith("fault_injected") for l in lines)
        assert any("cause=" in l for l in lines
                   if l.startswith("migration_aborted"))


class TestDiffVsTwin:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_first_divergence_is_first_fault(self, runs, name):
        report, sim, twin = runs[name]
        d = diff_traces(list(twin.trace), list(sim.trace))
        assert d["divergent"]
        first_fault = min(w["start_epoch"] for w in report["windows"])
        fd = d["first_divergence"]
        assert fd["epoch"] == first_fault
        # the divergent event on the chaos side is the injection itself
        assert fd["b"]["e"] == "fault_injected"

    def test_twin_agrees_with_itself(self, runs):
        _, _, twin = runs["flap"]
        d = diff_traces(list(twin.trace), list(twin.trace))
        assert not d["divergent"]
