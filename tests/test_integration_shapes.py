"""Integration tests asserting the paper's qualitative shapes at tiny scale.

These are the acceptance criteria from DESIGN.md §6, run on scaled-down
configurations so the whole file stays under ~30 seconds.
"""

import pytest

from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.core.balancer import LunuleBalancer
from repro.core.initiator import InitiatorConfig
from repro.workloads import CnnWorkload, MdtestWorkload, WebWorkload, ZipfWorkload

CFG = SimConfig(n_mds=5, mds_capacity=100, epoch_len=10, max_ticks=8000)


def run(workload_factory, balancer, cfg=CFG):
    from repro.experiments.validation import validate

    sim = Simulator(workload_factory().materialize(seed=7),
                    balancer if not isinstance(balancer, str)
                    else make_balancer(balancer), cfg)
    result = sim.run()
    validate(sim, result).raise_if_failed()
    return result


def cnn():
    return CnnWorkload(12, n_dirs=60, files_per_dir=25, jitter=0.05)


def zipf():
    return ZipfWorkload(16, files_per_dir=200, reads_per_client=2000)


class TestCnnShape:
    """Scan workload: Lunule > Lunule-Light > Vanilla (paper Fig. 6a/7a)."""

    @pytest.fixture(scope="class")
    def results(self):
        return {b: run(cnn, b) for b in
                ("nop", "vanilla", "lunule-light", "lunule")}

    def test_lunule_best_if(self, results):
        assert results["lunule"].mean_if(2) < results["lunule-light"].mean_if(2)
        assert results["lunule"].mean_if(2) < results["vanilla"].mean_if(2)

    def test_lunule_fastest(self, results):
        assert results["lunule"].finished_tick < results["vanilla"].finished_tick

    def test_nop_is_single_mds(self, results):
        assert results["nop"].peak_iops() <= 100 + 1e-9

    def test_vanilla_migrates_more_for_less(self, results):
        v, l = results["vanilla"], results["lunule"]
        assert v.migrated_series[-1] > l.migrated_series[-1]
        assert v.mean_if(2) > l.mean_if(2)


class TestZipfShape:
    """Recurrent workload: trigger/amount quality dominates (Fig. 6c)."""

    @pytest.fixture(scope="class")
    def results(self):
        return {b: run(zipf, b) for b in ("vanilla", "greedyspill", "lunule")}

    def test_greedyspill_worst(self, results):
        assert results["greedyspill"].mean_if(2) > results["lunule"].mean_if(2)
        assert results["greedyspill"].mean_if(2) > results["vanilla"].mean_if(2)

    def test_lunule_matches_vanilla_with_less_migration(self, results):
        # Zipf is the workload where heat == future load, so vanilla's
        # selection is fine; Lunule's edge is doing as well with far less
        # migration traffic (no over-migration / ping-pong).
        lun, van = results["lunule"], results["vanilla"]
        assert lun.mean_if(2) <= van.mean_if(2) * 1.3
        assert lun.finished_tick <= van.finished_tick * 1.1
        assert lun.migrated_series[-1] < van.migrated_series[-1]


class TestMdtestShape:
    def test_lunule_balances_creates(self):
        res = run(lambda: MdtestWorkload(12, creates_per_client=1500), "lunule")
        busy = sum(1 for s in res.served_per_mds if s > 0.05 * max(res.served_per_mds))
        assert busy >= 4  # creates spread across (nearly) the whole cluster

    def test_scaling_two_vs_five_mds(self):
        wl = lambda: MdtestWorkload(12, creates_per_client=1500)
        small = run(wl, "lunule", CFG.with_(n_mds=2))
        big = run(wl, "lunule", CFG.with_(n_mds=5))
        assert big.peak_iops() > 1.5 * small.peak_iops()


class TestUrgencyShape:
    """Benign imbalance must be tolerated (paper Fig. 12b observation)."""

    def _light(self, use_urgency):
        wl = lambda: ZipfWorkload(6, files_per_dir=100, reads_per_client=600,
                                  client_rate=3)
        bal = LunuleBalancer(InitiatorConfig(use_urgency=use_urgency))
        return run(wl, bal)

    def test_urgency_suppresses_light_load_migration(self):
        with_u = self._light(True)
        without_u = self._light(False)
        assert with_u.migrated_series[-1] < without_u.migrated_series[-1]

    def test_light_load_finishes_anyway(self):
        res = self._light(True)
        assert len(res.completion_ticks) == 6


class TestDirHashShape:
    """Fig. 13b/14: even inodes, uneven requests, more forwards."""

    @pytest.fixture(scope="class")
    def results(self):
        wl = lambda: WebWorkload(10, total_files=1500, n_requests=1500)
        return {b: run(wl, b) for b in ("vanilla", "dirhash", "lunule")}

    def test_dirhash_even_inodes(self, results):
        dist = results["dirhash"].inode_distribution
        assert max(dist) < 2.5 * max(1, min(dist))

    def test_dirhash_requests_less_even_than_inodes(self, results):
        res = results["dirhash"]
        inode = res.inode_distribution
        req = res.request_share()
        inode_ratio = max(inode) / max(1, min(inode))
        req_ratio = max(req) / max(1e-9, min(req))
        assert req_ratio > inode_ratio

    def test_dirhash_more_forwards_than_lunule(self, results):
        assert results["dirhash"].total_forwards > results["lunule"].total_forwards

    def test_lunule_not_slower_than_dirhash(self, results):
        lu = results["lunule"]
        dh = results["dirhash"]
        assert lu.finished_tick <= dh.finished_tick * 1.25


class TestMessagesOverhead:
    def test_initiator_bytes_small(self):
        bal = LunuleBalancer()
        sim = Simulator(zipf().materialize(seed=7), bal, CFG)
        res = sim.run()
        epochs = len(res.epoch_ticks)
        # paper §3.4: ~14.1 KB per epoch inbound at 16 MDSs; we have 5
        assert bal.initiator.bytes_received / max(1, epochs) < 1024
