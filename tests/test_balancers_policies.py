"""Baseline balancer policies: vanilla, GreedySpill, Dir-Hash, nop, factory."""

import pytest

from repro.balancers import make_balancer
from repro.balancers.dirhash import DirHashBalancer
from repro.balancers.greedyspill import GreedySpillBalancer
from repro.balancers.vanilla import VanillaBalancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.core.balancer import LunuleBalancer, LunuleLightBalancer
from repro.workloads import CnnWorkload, ZipfWorkload


def run(balancer, workload=None, **cfg):
    wl = workload or ZipfWorkload(6, files_per_dir=50, reads_per_client=400)
    config = SimConfig(n_mds=4, mds_capacity=50, epoch_len=5, max_ticks=3000,
                       migration_rate=100, **cfg)
    sim = Simulator(wl.materialize(seed=5), balancer, config)
    return sim, sim.run()


class TestFactory:
    def test_all_names_resolve(self):
        for name, cls in [("vanilla", VanillaBalancer),
                          ("greedyspill", GreedySpillBalancer),
                          ("dirhash", DirHashBalancer),
                          ("lunule", LunuleBalancer),
                          ("lunule-light", LunuleLightBalancer)]:
            assert isinstance(make_balancer(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_balancer("nope")


class TestVanilla:
    def test_exports_happen(self):
        _, res = run(VanillaBalancer())
        assert res.migrated_series[-1] > 0
        assert sum(1 for s in res.served_per_mds if s > 0) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            VanillaBalancer(decay=1.0)

    def test_queue_cap_respected(self):
        sim, _ = run(VanillaBalancer(max_queue=2))
        # the run finished, so queues drained; the cap is enforced per epoch
        for i in range(sim.n_mds):
            assert sim.migrator.queue_depth(i) <= 2 + 1

    def test_uses_popularity_view(self):
        b = VanillaBalancer()
        sim, _ = run(b)
        # popularity view must be expressed in heat units, not IOPS
        assert b.smoothed_loads().shape == (4,)


class TestGreedySpill:
    def test_spills_to_neighbor_first(self):
        _, res = run(GreedySpillBalancer())
        assert res.migrated_series[-1] > 0

    def test_stays_imbalanced_on_scans(self):
        wl = CnnWorkload(6, n_dirs=30, files_per_dir=15, jitter=0.05)
        _, greedy = run(GreedySpillBalancer(), workload=wl)
        wl = CnnWorkload(6, n_dirs=30, files_per_dir=15, jitter=0.05)
        _, lunule = run(LunuleBalancer(), workload=wl)
        assert greedy.mean_if(2) > lunule.mean_if(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            GreedySpillBalancer(idle_fraction=1.0)


class TestDirHash:
    def test_pins_at_setup(self):
        sim, res = run(DirHashBalancer())
        # every dir resolves to its own path hash (housekeeping may merge
        # roots whose pin coincides with the parent's — same resolution)
        from repro.util.rng import derive_seed

        for d in range(1, sim.tree.n_dirs):
            expected = derive_seed(0, "dirhash", sim.tree.path(d)) % sim.n_mds
            assert sim.authmap.resolve_dir(d)[0] == expected

    def test_even_inode_distribution(self):
        # needs a namespace with enough dirs for hashing to even out
        from repro.workloads import WebWorkload
        wl = WebWorkload(4, total_files=2000, n_requests=100)
        sim, res = run(DirHashBalancer(), workload=wl)
        dist = res.inode_distribution
        assert max(dist) < 2.5 * max(1, min(dist))

    def test_never_migrates(self):
        _, res = run(DirHashBalancer())
        assert res.migrated_series[-1] == 0

    def test_more_forwards_than_subtree_partitioning(self):
        # needs a namespace deep/wide enough that hashing breaks path
        # locality (the zipf tree is 3 levels with 8 dirs — too small)
        from repro.workloads import WebWorkload
        wl = lambda: WebWorkload(6, total_files=1500, n_requests=800)
        _, dh = run(DirHashBalancer(), workload=wl())
        _, lu = run(LunuleBalancer(), workload=wl())
        assert dh.total_forwards > lu.total_forwards

    def test_deterministic_pinning(self):
        s1, _ = run(DirHashBalancer())
        s2, _ = run(DirHashBalancer())
        assert s1.authmap.subtree_roots() == s2.authmap.subtree_roots()

    def test_validation(self):
        with pytest.raises(ValueError):
            DirHashBalancer(min_depth=0)


class TestNop:
    def test_everything_stays_home(self):
        _, res = run(make_balancer("nop"))
        assert res.served_per_mds[1] == 0
        assert res.migrated_series[-1] == 0


class TestLunuleVariants:
    def test_light_uses_heat_full_uses_mindex(self):
        full = LunuleBalancer()
        light = LunuleLightBalancer()
        sim, _ = run(full)
        sim_l, _ = run(light)
        assert full.per_dir_load.__func__ is not light.per_dir_load.__func__

    def test_initiator_attached_with_capacity(self):
        b = LunuleBalancer()
        sim, _ = run(b)
        assert b.initiator.capacity == sim.config.mds_capacity
        assert b.initiator.triggers > 0
