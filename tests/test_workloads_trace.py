"""Trace recording, persistence, replay and Apache log round trips."""

import numpy as np
import pytest

from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.namespace.builder import build_web
from repro.workloads import OP_OPEN, ZipfWorkload
from repro.workloads.trace import (
    Trace,
    TraceWorkload,
    format_apache_log,
    parse_apache_log,
    record_workload,
)


@pytest.fixture
def small_trace():
    return Trace.from_ops([(OP_OPEN, 2, 0, 100), (OP_OPEN, 2, 1, 0),
                           (OP_OPEN, 3, 5, 2048)])


class TestTrace:
    def test_from_ops_roundtrip(self, small_trace):
        assert len(small_trace) == 3
        assert list(small_trace)[0] == (OP_OPEN, 2, 0, 100)

    def test_empty_trace(self):
        t = Trace.from_ops([])
        assert len(t) == 0 and list(t) == []

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.zeros(2), np.zeros(2), np.zeros(2), np.zeros(3))

    def test_save_load(self, small_trace, tmp_path):
        p = tmp_path / "t.npz"
        small_trace.save(p)
        loaded = Trace.load(p)
        assert list(loaded) == list(small_trace)

    def test_slice(self, small_trace):
        assert list(small_trace.slice(1, 3)) == list(small_trace)[1:]

    def test_meta_ratio(self, small_trace):
        # 3 metadata ops, 2 with data payloads
        assert small_trace.meta_ratio() == pytest.approx(3 / 5)


class TestRecord:
    def test_record_zipf_client(self):
        wl = ZipfWorkload(2, files_per_dir=20, reads_per_client=30)
        trace, tree = record_workload(wl, client_index=0, seed=4)
        assert len(trace) == 30
        assert tree.total_files() == 40

    def test_record_is_deterministic(self):
        wl = lambda: ZipfWorkload(1, files_per_dir=20, reads_per_client=25)
        a, _ = record_workload(wl(), seed=4)
        b, _ = record_workload(wl(), seed=4)
        assert list(a) == list(b)


class TestReplay:
    def test_replay_runs_in_simulator(self):
        base = ZipfWorkload(2, files_per_dir=30, reads_per_client=50)
        inst = base.materialize(seed=3)
        trace, _ = record_workload(
            ZipfWorkload(2, files_per_dir=30, reads_per_client=50), seed=3)
        wl = TraceWorkload(3, trace, inst.built)
        sim = Simulator(wl.materialize(seed=1), make_balancer("lunule"),
                        SimConfig(n_mds=2, mds_capacity=50, epoch_len=5,
                                  max_ticks=2000))
        res = sim.run()
        assert sum(res.served_per_mds) == 3 * 50
        assert len(res.completion_ticks) == 3

    def test_replay_rejects_foreign_tree(self):
        from repro.namespace.tree import NamespaceTree

        inst = ZipfWorkload(1, files_per_dir=5, reads_per_client=5).materialize(seed=1)
        trace = Trace.from_ops([(OP_OPEN, 2, 0, 10)])
        wl = TraceWorkload(1, trace, inst.built)
        with pytest.raises(ValueError):
            wl.build_namespace(NamespaceTree(), seed=0)


class TestApacheLogs:
    def test_parse_basic_lines(self):
        built = build_web(2, 2, 100, seed=1)
        log = "\n".join([
            '1.2.3.4 - - [23/Aug/2013:06:00:01 -0400] "GET /a/b.html HTTP/1.1" 200 5120',
            '1.2.3.4 - - [23/Aug/2013:06:00:02 -0400] "POST /form HTTP/1.1" 200 100',
            '1.2.3.4 - - [23/Aug/2013:06:00:03 -0400] "GET /miss HTTP/1.1" 404 0',
            'garbage line',
            '1.2.3.4 - - [23/Aug/2013:06:00:04 -0400] "GET /a/b.html HTTP/1.1" 200 5120',
        ])
        trace = parse_apache_log(log, built)
        assert len(trace) == 2  # POST, 404 and garbage skipped
        ops = list(trace)
        assert ops[0] == ops[1]  # same path -> same inode

    def test_paths_map_stably_into_namespace(self):
        built = build_web(3, 3, 200, seed=2)
        log = '\n'.join(
            f'h - - [01/Jan/2014:00:00:00 +0000] "GET /p{i} HTTP/1.1" 200 100'
            for i in range(50))
        trace = parse_apache_log(log, built)
        assert len(trace) == 50
        for _, d, idx, _ in trace:
            di = built.dirs.index(d)
            assert 0 <= idx < built.files[di]

    def test_dash_size_uses_default(self):
        built = build_web(2, 2, 50, seed=1)
        log = 'h - - [01/Jan/2014:00:00:00 +0000] "GET /x HTTP/1.1" 200 -'
        trace = parse_apache_log(log, built, default_bytes=1234)
        assert list(trace)[0][3] == 1234

    def test_format_parse_roundtrip(self):
        built = build_web(2, 2, 100, seed=3)
        original = Trace.from_ops([
            (OP_OPEN, built.dirs[0], 1, 512),
            (OP_OPEN, built.dirs[1], 0, 2048),
        ])
        text = format_apache_log(original, built)
        back = parse_apache_log(text, built)
        # sizes survive exactly; inode mapping is by stable hash of the path
        assert [op[3] for op in back] == [512, 2048]
        assert len(back) == 2

    def test_empty_namespace_rejected(self):
        from repro.namespace.builder import BuiltNamespace
        from repro.namespace.tree import NamespaceTree

        empty = BuiltNamespace(NamespaceTree(), 0, [], [])
        with pytest.raises(ValueError):
            parse_apache_log("", empty)
