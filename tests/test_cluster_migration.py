"""Migrator: lag, commit, abort, pending accounting."""

import pytest

from repro.cluster.migration import ExportTask, Migrator
from repro.namespace.dirfrag import FragId


@pytest.fixture
def migrator(authmap):
    return Migrator(authmap, rate=2, penalty=0.1, commit_latency=1)


class TestExportTask:
    def test_rejects_self_export(self):
        with pytest.raises(ValueError):
            ExportTask(0, 0, 1, 10)

    def test_rejects_negative_inodes(self):
        with pytest.raises(ValueError):
            ExportTask(0, 1, 1, -1)

    def test_remaining_initialized(self):
        t = ExportTask(0, 1, 1, 10, latency=3)
        assert t.remaining == 10 and t.latency_left == 3


class TestSubmit:
    def test_submit_export_sizes_from_tree(self, migrator, authmap):
        # dir 2 subtree = dirs {2,3,4} (3 inodes) + files 2+4+0 = 9 inodes
        task = migrator.submit_export(0, 1, 2, load_estimate=5.0)
        assert task.inodes == 9

    def test_frag_task_counts_frag_files(self, migrator, authmap):
        authmap.split_dir(3, 1)
        task = migrator.submit_export(0, 1, FragId(3, 1, 0))
        assert task.inodes == 2  # 4 files split in half

    def test_queue_depth(self, migrator):
        migrator.submit_export(0, 1, 2)
        migrator.submit_export(0, 2, 1)
        assert migrator.queue_depth(0) == 2
        assert migrator.queue_depth(1) == 0


class TestTransfer:
    def test_lag_then_commit(self, migrator, authmap):
        migrator.submit_export(0, 1, 2)  # 9 inodes, rate 2, latency 1
        ticks = 0
        while authmap.resolve_dir(3)[0] == 0:
            migrator.tick()
            ticks += 1
            assert ticks < 50
        assert authmap.resolve_dir(3)[0] == 1
        # latency 1 + ceil(9/2) = 6 ticks
        assert ticks == 6
        assert migrator.migrated_inodes == 9
        assert migrator.committed_tasks == 1

    def test_busy_ranks_during_transfer(self, migrator):
        migrator.submit_export(0, 1, 2)
        migrator.tick()
        assert migrator.busy_ranks() == {0, 1}

    def test_concurrency_bounds_active_tasks(self, authmap):
        mig = Migrator(authmap, rate=1, commit_latency=5, concurrency=2)
        mig.submit_export(0, 1, 1)
        mig.submit_export(0, 2, 2)
        mig.submit_export(0, 1, 3)
        mig.tick()
        # two tasks run concurrently; the third waits in the queue
        assert mig.busy_ranks() == {0, 1, 2}
        assert mig.queue_depth(0) == 3  # 2 active + 1 queued

    def test_rejects_bad_concurrency(self, authmap):
        with pytest.raises(ValueError):
            Migrator(authmap, concurrency=0)

    def test_frag_commit_sets_owner(self, migrator, authmap):
        authmap.split_dir(3, 1)
        migrator.submit_export(0, 2, FragId(3, 1, 1))
        for _ in range(10):
            migrator.tick()
        assert authmap.resolve(3, 1) == 2


class TestAbort:
    def test_stale_task_aborted_at_start(self, migrator, authmap):
        migrator.submit_export(0, 1, 2)
        authmap.set_subtree_auth(2, 2)  # someone else took it meanwhile
        for _ in range(10):
            migrator.tick()
        assert migrator.committed_tasks == 0
        assert migrator.aborted_tasks == 1

    def test_resplit_covered_commit(self, migrator, authmap):
        authmap.split_dir(3, 1)
        migrator.submit_export(0, 1, FragId(3, 1, 1))
        authmap.split_dir(3, 2)  # re-split while queued
        for _ in range(10):
            migrator.tick()
        # both sub-frags of old frag 1 (i.e. 1 and 3) moved
        assert authmap.resolve(3, 1) == 1
        assert authmap.resolve(3, 3) == 1
        assert authmap.resolve(3, 0) == 0

    def test_vanished_split_aborts(self, migrator, authmap):
        authmap.split_dir(3, 1)
        task = ExportTask(0, 1, FragId(3, 1, 1), 2, latency=0)
        migrator.submit(task)
        authmap._frags.clear()  # simulate a merge-back
        authmap.version += 1
        for _ in range(5):
            migrator.tick()
        assert migrator.aborted_tasks == 1


class TestPendingLoads:
    def test_pending_export_load(self, migrator):
        migrator.submit_export(0, 1, 2, load_estimate=5.0)
        migrator.submit_export(0, 2, 1, load_estimate=3.0)
        assert migrator.pending_export_load(0) == pytest.approx(8.0)
        migrator.tick()  # first task becomes active; still pending
        assert migrator.pending_export_load(0) == pytest.approx(8.0)

    def test_pending_import_load(self, migrator):
        migrator.submit_export(0, 1, 2, load_estimate=5.0)
        assert migrator.pending_import_load(1) == pytest.approx(5.0)
        assert migrator.pending_import_load(2) == 0.0

    def test_pending_clears_after_commit(self, migrator):
        migrator.submit_export(0, 1, 1, load_estimate=5.0)
        for _ in range(20):
            migrator.tick()
        assert migrator.pending_export_load(0) == 0.0
        assert migrator.pending_import_load(1) == 0.0


class TestValidation:
    def test_bad_rate(self, authmap):
        with pytest.raises(ValueError):
            Migrator(authmap, rate=0)

    def test_bad_penalty(self, authmap):
        with pytest.raises(ValueError):
            Migrator(authmap, penalty=1.0)

    def test_bad_latency(self, authmap):
        with pytest.raises(ValueError):
            Migrator(authmap, commit_latency=-1)
