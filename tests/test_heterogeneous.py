"""Heterogeneous MDS capacities, end to end.

The paper assumes a homogeneous cluster; the reproduction generalises the
capacity model: ``SimConfig.mds_capacities`` sizes each rank, the
ClusterView carries per-rank capacities to the policy layer, and
Algorithm 1 scales its per-epoch migration cap per rank. The homogeneous
case must collapse to the original arithmetic exactly — that equality is
what keeps the golden traces byte-identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.balancers import make_balancer
from repro.cluster.simulator import SimConfig, Simulator
from repro.core.initiator import InitiatorConfig, MdsLoad, MigrationInitiator, decide_roles
from repro.workloads import ZipfWorkload


def make_sim(balancer="lunule", *, capacities=None, n_mds=3, **over):
    cfg = SimConfig(n_mds=n_mds, mds_capacity=60.0, epoch_len=5,
                    max_ticks=3000, migration_rate=50,
                    mds_capacities=capacities, **over)
    wl = ZipfWorkload(8, files_per_dir=60, reads_per_client=600)
    return Simulator(wl.materialize(seed=5), make_balancer(balancer), cfg)


class TestDecideRolesCaps:
    STATS = lambda self: [MdsLoad(0, 100.0, 100.0), MdsLoad(1, 10.0, 10.0),
                          MdsLoad(2, 10.0, 10.0)]

    def test_per_rank_cap_limits_the_big_exporter(self):
        uniform = decide_roles(self.STATS(), 0.01, 30.0)
        capped = decide_roles(self.STATS(), 0.01, 30.0, caps={0: 12.0})
        assert uniform[0].sum() == pytest.approx(30.0)
        assert capped[0].sum() == pytest.approx(12.0)

    def test_uniform_caps_dict_matches_scalar_cap(self):
        scalar = decide_roles(self.STATS(), 0.01, 30.0)
        explicit = decide_roles(self.STATS(), 0.01, 30.0,
                                caps={0: 30.0, 1: 30.0, 2: 30.0})
        np.testing.assert_array_equal(scalar, explicit)

    def test_importer_headroom_scales_with_its_cap(self):
        # with a tiny cap on importer 1, the export flow shifts toward 2
        capped = decide_roles(self.STATS(), 0.01, 30.0, caps={1: 5.0})
        assert capped[0, 1] <= 5.0 + 1e-9
        assert capped[0, 2] > capped[0, 1]


class TestInitiatorCapacities:
    def plan(self, capacities):
        init = MigrationInitiator(60.0, InitiatorConfig(if_threshold=0.05))
        loads = [90.0, 5.0, 5.0]
        hist = [[v] * 3 for v in loads]
        return init.plan(1, loads, hist, capacities=capacities)

    def test_homogeneous_capacities_reproduce_default_path(self):
        default = self.plan(None)
        explicit = self.plan([60.0, 60.0, 60.0])
        assert [(d.exporter, d.assignments) for d in default] == \
               [(d.exporter, d.assignments) for d in explicit]
        assert default, "scenario must actually trigger migration"

    def test_small_exporter_ships_less_per_epoch(self):
        big = self.plan([60.0, 60.0, 60.0])
        small = self.plan([20.0, 60.0, 60.0])  # rank 0 is the exporter
        total = lambda ds: sum(a for d in ds for a in d.assignments.values())
        assert total(small) < total(big)


class TestSimulatorWiring:
    def test_config_capacities_size_each_rank(self):
        sim = make_sim(capacities=(30.0, 60.0, 90.0))
        assert [m.capacity for m in sim.mdss] == [30.0, 60.0, 90.0]

    def test_capacities_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mds_capacities"):
            make_sim(capacities=(30.0, 60.0))

    def test_view_carries_per_rank_capacities(self):
        sim = make_sim(capacities=(30.0, 60.0, 90.0))
        assert sim.snapshot_view().capacities() == [30.0, 60.0, 90.0]

    def test_add_mds_explicit_capacity(self):
        sim = make_sim()
        sim.add_mds(capacity=17.0)
        assert sim.mdss[-1].capacity == 17.0

    def test_add_mds_defaults_from_config_capacities(self):
        # ranks within mds_capacities resume the configured ladder;
        # ranks beyond it fall back to the homogeneous default
        cfg = SimConfig(n_mds=2, mds_capacity=60.0, epoch_len=5,
                        max_ticks=100, mds_capacities=None)
        wl = ZipfWorkload(4, files_per_dir=20, reads_per_client=50)
        sim = Simulator(wl.materialize(seed=1), make_balancer("nop"), cfg)
        sim.add_mds()
        assert sim.mdss[-1].capacity == 60.0

        het = make_sim(capacities=(30.0, 60.0, 90.0))
        removed = het.mdss.pop()  # simulate a rank that never came up
        assert removed.rank == 2
        het.add_mds()
        assert het.mdss[-1].capacity == 90.0  # from mds_capacities[2]
        het.add_mds()
        assert het.mdss[-1].capacity == 60.0  # past the ladder: default


class TestEndToEnd:
    def test_heterogeneous_run_completes_and_balances(self):
        sim = make_sim(capacities=(120.0, 30.0, 30.0))
        res = sim.run()
        assert res.meta_ops > 0
        assert res.migrated_series[-1] > 0  # skew still gets corrected

    def test_homogeneous_explicit_equals_implicit(self):
        """mds_capacities=(c, c, c) is byte-for-byte the default run."""
        implicit = make_sim().run()
        explicit = make_sim(capacities=(60.0, 60.0, 60.0)).run()
        assert implicit.if_series == explicit.if_series
        assert implicit.migrated_series == explicit.migrated_series
        assert implicit.meta_ops == explicit.meta_ops

    @pytest.mark.parametrize("balancer", ["lunule", "vanilla", "greedyspill"])
    def test_all_plan_returning_balancers_accept_heterogeneity(self, balancer):
        sim = make_sim(balancer, capacities=(90.0, 45.0, 45.0))
        res = sim.run()
        assert res.meta_ops > 0
