"""The columnar per-epoch time-series store behind the flight recorder."""

from __future__ import annotations

import pytest

from repro.obs.timeseries import TimeSeriesStore


def filled() -> TimeSeriesStore:
    ts = TimeSeriesStore()
    ts.append({"epoch": 0, "if": 0.9, "load.0": 50.0})
    ts.append({"epoch": 1, "if": 0.4, "load.0": 30.0})
    ts.append({"epoch": 2, "if": 0.1, "load.0": 10.0})
    return ts


class TestAppendAndRead:
    def test_columns_sorted_and_series_come_back_whole(self):
        ts = filled()
        assert ts.columns() == ["epoch", "if", "load.0"]
        assert ts.column("if") == [0.9, 0.4, 0.1]
        assert len(ts) == 3

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            filled().column("load.9")

    def test_empty_record_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesStore().append({})

    def test_late_column_backfills_none(self):
        """A rank added mid-run (cluster growth) keeps the table rectangular."""
        ts = TimeSeriesStore()
        ts.append({"epoch": 0, "load.0": 5.0})
        ts.append({"epoch": 1, "load.0": 4.0, "load.1": 2.0})
        assert ts.column("load.1") == [None, 2.0]
        # and a column absent from a later record reads None there
        ts.append({"epoch": 2, "load.1": 3.0})
        assert ts.column("load.0") == [5.0, 4.0, None]

    def test_rows_omit_none_cells(self):
        ts = TimeSeriesStore()
        ts.append({"epoch": 0, "load.0": 5.0})
        ts.append({"epoch": 1, "load.1": 2.0})
        assert list(ts.rows()) == [{"epoch": 0, "load.0": 5.0},
                                   {"epoch": 1, "load.1": 2.0}]

    def test_last(self):
        ts = filled()
        assert ts.last("if") == 0.1
        assert ts.last("nope", default=-1) == -1


class TestRingBuffer:
    def test_capacity_keeps_most_recent_rows(self):
        ts = TimeSeriesStore(capacity=2)
        for epoch in range(5):
            ts.append({"epoch": epoch})
        assert ts.column("epoch") == [3, 4]
        assert ts.appended == 5
        assert ts.dropped == 3

    def test_late_column_in_a_full_ring_stays_aligned(self):
        ts = TimeSeriesStore(capacity=2)
        ts.append({"epoch": 0})
        ts.append({"epoch": 1})
        ts.append({"epoch": 2, "if": 0.5})
        assert ts.column("epoch") == [1, 2]
        assert ts.column("if") == [None, 0.5]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(capacity=0)


class TestSerialization:
    def test_snapshot_shape(self):
        snap = filled().snapshot()
        assert snap["columns"] == ["epoch", "if", "load.0"]
        assert snap["rows"][0] == [0, 0.9, 50.0]
        assert snap["appended"] == 3

    def test_csv_is_byte_stable_and_encodes_none_as_empty(self):
        ts = TimeSeriesStore()
        ts.append({"epoch": 0, "load.0": 5.0})
        ts.append({"epoch": 1, "load.1": 0.1})
        csv = ts.dumps_csv()
        assert csv == ts.dumps_csv()
        assert csv == ("epoch,load.0,load.1\n"
                       "0,5.0,\n"
                       "1,,0.1\n")

    def test_csv_floats_round_trip_exactly(self):
        ts = TimeSeriesStore()
        ts.append({"x": 0.1 + 0.2})
        value = ts.dumps_csv().splitlines()[1]
        assert float(value) == 0.1 + 0.2

    def test_jsonl_round_trip(self, tmp_path):
        ts = filled()
        path = tmp_path / "ts.jsonl"
        ts.dump_jsonl(path)
        back = TimeSeriesStore.load_jsonl(path)
        assert back.snapshot() == ts.snapshot()
        assert back.dumps_csv() == ts.dumps_csv()

    def test_dump_csv_writes_rows(self, tmp_path):
        path = tmp_path / "ts.csv"
        assert filled().dump_csv(path) == 3
        assert path.read_text(encoding="utf-8").count("\n") == 4
