"""Trace + metrics emission from real simulator runs (integration)."""

from __future__ import annotations

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    EpochStart,
    IfComputed,
    MdsFailed,
    MigrationPlanned,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracelog import TraceLog, filter_events, read_jsonl


class TestSimulatorEmission:
    def test_every_epoch_is_traced(self, make_sim):
        sim = make_sim("lunule")
        res = sim.run()
        starts = sim.trace.events("epoch_start")
        assert len(starts) == len(res.epoch_ticks)
        assert [e.epoch for e in starts] == list(range(len(starts)))
        assert [e.tick for e in starts] == res.epoch_ticks

    def test_reported_if_matches_result_series(self, make_sim):
        sim = make_sim("lunule")
        res = sim.run()
        traced = [e.value for e in sim.trace.events("if_computed")
                  if e.source == "simulator"]
        assert traced == res.if_series

    def test_lunule_pipeline_emits_decision_events(self, make_sim):
        sim = make_sim("lunule")
        sim.run()
        counts = sim.trace.counts()
        # a skewed zipf workload under lunule triggers the full pipeline
        for etype in ("role_assigned", "subtree_selected",
                      "migration_planned", "migration_committed"):
            assert counts.get(etype, 0) > 0, f"no {etype} events traced"

    def test_nop_balancer_traces_epochs_only(self, make_sim):
        sim = make_sim("nop")
        sim.run()
        counts = sim.trace.counts()
        assert counts["epoch_start"] > 0
        assert "role_assigned" not in counts
        assert "migration_planned" not in counts

    def test_fail_and_recover_are_traced(self, make_sim):
        sim = make_sim("lunule", schedule=[(10, lambda s: s.fail_mds(1)),
                                           (60, lambda s: s.recover_mds(1))])
        sim.run()
        fails = sim.trace.events("mds_failed")
        recovers = sim.trace.events("mds_recovered")
        assert [(e.tick, e.rank) for e in fails] == [(10, 1)]
        assert [(e.tick, e.rank) for e in recovers] == [(60, 1)]
        assert sim.metrics.get_value("sim.mds_failures") == 1.0

    def test_all_traced_types_are_registered(self, make_sim):
        sim = make_sim("lunule", schedule=[(10, lambda s: s.fail_mds(1)),
                                           (60, lambda s: s.recover_mds(1))])
        sim.run()
        assert set(sim.trace.counts()) <= set(EVENT_TYPES)


class TestSimulatorMetrics:
    def test_core_series_present_after_run(self, make_sim):
        sim = make_sim("lunule")
        res = sim.run()
        m = sim.metrics
        assert m.get_value("sim.epochs") == len(res.epoch_ticks)
        assert m.get_value("sim.ops_served") == pytest.approx(
            sum(sum(row) * sim.config.epoch_len for row in res.per_mds_iops))
        assert m.get_value("sim.imbalance_factor") == pytest.approx(
            res.if_series[-1])
        assert m.get_value("migration.committed") == res.committed_tasks
        for rank in range(sim.n_mds):
            assert m.get_value("mds.load", rank=rank) is not None

    def test_forwards_counted(self, make_sim):
        sim = make_sim("lunule")
        res = sim.run()
        assert sim.metrics.get_value("router.forwards") == res.total_forwards

    def test_snapshot_serializes(self, make_sim):
        sim = make_sim("lunule")
        sim.run()
        assert isinstance(sim.metrics.to_json(), str)


class TestRingBufferMode:
    def test_capacity_bounds_memory(self, make_sim):
        sim = make_sim("lunule", trace_capacity=16)
        sim.run()
        assert len(sim.trace) == 16
        assert sim.trace.emitted > 16
        assert sim.trace.dropped == sim.trace.emitted - 16

    def test_ring_keeps_the_most_recent_events(self, make_sim):
        full = make_sim("lunule")
        full.run()
        ring = make_sim("lunule", trace_capacity=16)
        ring.run()
        assert ring.trace.events() == full.trace.events()[-16:]

    def test_evictions_feed_the_drop_counter(self):
        reg = MetricsRegistry()
        log = TraceLog(capacity=2, drop_counter=reg.counter("trace.events_dropped"))
        for tick in range(5):
            log.emit(EpochStart(epoch=tick, tick=tick))
        assert reg.get_value("trace.events_dropped") == 3.0
        assert log.dropped == 3

    def test_unbounded_log_never_counts_drops(self):
        reg = MetricsRegistry()
        log = TraceLog(drop_counter=reg.counter("trace.events_dropped"))
        for tick in range(5):
            log.emit(EpochStart(epoch=tick, tick=tick))
        assert reg.get_value("trace.events_dropped") == 0.0

    def test_simulator_exposes_drops_as_a_metric(self, make_sim):
        sim = make_sim("lunule", trace_capacity=16)
        sim.run()
        assert sim.metrics.get_value("trace.events_dropped") == sim.trace.dropped
        # and the OpenMetrics exposition names it _total, counter-style
        from repro.obs.prom import render_openmetrics

        assert "trace_events_dropped_total" in render_openmetrics(sim.metrics)

    def test_full_log_exposes_zero_drops(self, make_sim):
        sim = make_sim("lunule")
        sim.run()
        assert sim.metrics.get_value("trace.events_dropped") == 0.0


class TestJsonlExport:
    def test_dump_and_read_round_trip(self, make_sim, tmp_path):
        sim = make_sim("lunule", schedule=[(10, lambda s: s.fail_mds(1)),
                                           (60, lambda s: s.recover_mds(1))])
        sim.run()
        path = tmp_path / "trace.jsonl"
        sim.trace.dump_jsonl(path)
        assert list(read_jsonl(path)) == sim.trace.events()

    def test_load_jsonl_rebuilds_the_log(self, make_sim, tmp_path):
        sim = make_sim("lunule")
        sim.run()
        path = tmp_path / "trace.jsonl"
        sim.trace.dump_jsonl(path)
        log = TraceLog.load_jsonl(path)
        assert log.dumps() == sim.trace.dumps()


class TestBalancerEmission:
    @pytest.mark.parametrize("balancer", ["vanilla", "greedyspill"])
    def test_baselines_emit_roles(self, make_sim, balancer):
        sim = make_sim(balancer)
        sim.run()
        roles = sim.trace.events("role_assigned")
        assert roles, f"{balancer} assigned no roles on a skewed workload"
        assert {e.role for e in roles} <= {"exporter", "importer"}

    def test_role_events_carry_the_epoch(self, make_sim):
        sim = make_sim("lunule")
        sim.run()
        epochs = {e.epoch for e in sim.trace.events("role_assigned")}
        traced = {e.epoch for e in sim.trace.events("epoch_start")}
        assert epochs <= traced


def test_trace_events_are_frozen(make_sim):
    sim = make_sim("lunule")
    sim.run()
    e = sim.trace.events("epoch_start")[0]
    assert isinstance(e, EpochStart)
    with pytest.raises(Exception):
        e.epoch = 99  # type: ignore[misc]


class TestFilterEvents:
    """Trace slicing behind ``repro trace --etype / --epoch-range``."""

    @staticmethod
    def sample_trace() -> list:
        return [
            EpochStart(epoch=0, tick=5),
            IfComputed(epoch=0, value=0.9, loads=(9.0, 1.0), source="simulator"),
            MigrationPlanned(tick=5, src=0, dst=1, unit=3, inodes=40, load=4.0),
            MigrationPlanned(tick=8, src=0, dst=1, unit=4, inodes=10, load=1.0),
            EpochStart(epoch=1, tick=10),
            IfComputed(epoch=1, value=0.2, loads=(5.0, 5.0), source="simulator"),
            MdsFailed(tick=12, rank=1),
        ]

    def test_etype_filter(self):
        kept = filter_events(self.sample_trace(), etypes=["epoch_start"])
        assert [e.epoch for e in kept] == [0, 1]

    def test_epoch_range_uses_the_event_epoch_when_present(self):
        kept = filter_events(self.sample_trace(), etypes=["if_computed"],
                             epoch_range=(1, 1))
        assert [e.value for e in kept] == [0.2]

    def test_tick_events_attributed_to_the_enclosing_epoch(self):
        # epoch 0 closes at tick 5: the plan at tick 5 belongs to epoch 0,
        # the one at tick 8 to epoch 1, the failure at tick 12 to epoch 2
        kept = filter_events(self.sample_trace(), epoch_range=(0, 0))
        assert [e.etype for e in kept] == \
            ["epoch_start", "if_computed", "migration_planned"]
        kept = filter_events(self.sample_trace(), epoch_range=(1, 1))
        assert [(e.etype, getattr(e, "unit", None)) for e in kept] == \
            [("migration_planned", 4), ("epoch_start", None),
             ("if_computed", None)]

    def test_events_past_the_last_boundary_belong_to_the_next_epoch(self):
        kept = filter_events(self.sample_trace(), epoch_range=(2, 99))
        assert [e.etype for e in kept] == ["mds_failed"]

    def test_attribution_survives_filtering_out_epoch_starts(self):
        kept = filter_events(self.sample_trace(), etypes=["migration_planned"],
                             epoch_range=(1, 1))
        assert [e.unit for e in kept] == [4]

    def test_no_boundaries_drops_tick_only_events(self):
        kept = filter_events([MdsFailed(tick=3, rank=0)], epoch_range=(0, 9))
        assert kept == []

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            filter_events(self.sample_trace(), epoch_range=(3, 1))

    def test_no_filters_is_identity(self):
        events = self.sample_trace()
        assert filter_events(events) == events

    def test_on_a_real_run_partitions_the_trace(self, make_sim):
        sim = make_sim("lunule")
        sim.run()
        events = sim.trace.events()
        n_epochs = len(sim.trace.events("epoch_start"))
        sliced = [filter_events(events, epoch_range=(k, k))
                  for k in range(n_epochs + 1)]
        assert sum(len(s) for s in sliced) == len(events)


def test_initiator_if_uses_same_loads_as_simulator(make_sim):
    """Per epoch, the initiator sees the loads the simulator reported."""
    sim = make_sim("lunule")
    sim.run()
    by_epoch: dict[int, dict[str, IfComputed]] = {}
    for e in sim.trace.events("if_computed"):
        by_epoch.setdefault(e.epoch, {})[e.source] = e
    paired = [pair for pair in by_epoch.values()
              if {"simulator", "initiator"} <= set(pair)]
    assert paired  # the trigger fired at least once
    for pair in paired:
        assert pair["initiator"].loads == pair["simulator"].loads
