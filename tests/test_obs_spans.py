"""The span profiler: nesting discipline, clocks, Perfetto export, merging."""

from __future__ import annotations

import json

import pytest

from repro.obs.spans import SpanProfiler, merge_span_events, totals_from_events


def profile_one_epoch(prof: SpanProfiler) -> None:
    with prof.span("epoch"):
        with prof.span("serve"):
            pass
        with prof.span("plan"):
            pass


class TestSpanDiscipline:
    def test_context_manager_pairs_b_and_e(self):
        prof = SpanProfiler()
        profile_one_epoch(prof)
        phs = [e["ph"] for e in prof.events()]
        names = [e["name"] for e in prof.events()]
        assert phs == ["B", "B", "E", "B", "E", "E"]
        assert names == ["epoch", "serve", "serve", "plan", "plan", "epoch"]

    def test_end_asserts_innermost_name(self):
        prof = SpanProfiler()
        prof.begin("outer")
        prof.begin("inner")
        with pytest.raises(RuntimeError, match="nesting"):
            prof.end("outer")

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            SpanProfiler().end()

    def test_export_with_open_spans_raises(self):
        prof = SpanProfiler()
        prof.begin("epoch")
        with pytest.raises(RuntimeError, match="open spans"):
            prof.events()

    def test_close_open_ends_everything_lifo(self):
        prof = SpanProfiler()
        prof.begin("epoch")
        prof.begin("serve")
        assert prof.close_open() == 2
        assert prof.depth == 0
        assert [e["name"] for e in prof.events() if e["ph"] == "E"] == \
            ["serve", "epoch"]


class TestClocks:
    def test_logical_clock_is_a_pure_function_of_control_flow(self):
        a, b = SpanProfiler(clock="logical"), SpanProfiler(clock="logical")
        profile_one_epoch(a)
        profile_one_epoch(b)
        assert a.dumps_perfetto() == b.dumps_perfetto()
        assert [e["ts"] for e in a.events()] == [1, 2, 3, 4, 5, 6]

    def test_wall_clock_is_monotone_microseconds(self):
        prof = SpanProfiler(clock="wall")
        profile_one_epoch(prof)
        stamps = [e["ts"] for e in prof.events()]
        assert stamps == sorted(stamps)
        assert all(isinstance(ts, int) for ts in stamps)

    def test_unknown_clock_rejected(self):
        with pytest.raises(ValueError):
            SpanProfiler(clock="sundial")

    def test_totals_count_closed_spans(self):
        prof = SpanProfiler()
        profile_one_epoch(prof)
        profile_one_epoch(prof)
        totals = prof.totals()
        assert totals["epoch"]["count"] == 2
        assert totals["serve"]["count"] == 2
        # inclusive: the epoch span covers its children
        assert totals["epoch"]["total"] > totals["serve"]["total"]


class TestPerfettoExport:
    def test_structure_loads_in_a_trace_viewer(self):
        prof = SpanProfiler()
        profile_one_epoch(prof)
        doc = json.loads(prof.dumps_perfetto())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for event in doc["traceEvents"]:
            assert {"ph", "name", "ts", "pid", "tid"} <= set(event)
            assert event["ph"] in ("B", "E")

    def test_dump_writes_canonical_json(self, tmp_path):
        prof = SpanProfiler()
        profile_one_epoch(prof)
        path = tmp_path / "trace.json"
        prof.dump_perfetto(path)
        assert path.read_text(encoding="utf-8") == prof.dumps_perfetto() + "\n"


class TestMergeAndReplay:
    def test_merge_restamps_pids_in_input_order(self):
        profs = [SpanProfiler(), SpanProfiler()]
        for p in profs:
            profile_one_epoch(p)
        merged = merge_span_events([p.events() for p in profs],
                                   labels=["run-a", "run-b"])
        meta = [e for e in merged if e["ph"] == "M"]
        assert [(e["pid"], e["args"]["name"]) for e in meta] == \
            [(0, "run-a"), (1, "run-b")]
        assert {e["pid"] for e in merged if e["ph"] != "M"} == {0, 1}

    def test_merge_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            merge_span_events([[]], labels=["a", "b"])

    def test_totals_from_events_matches_live_totals(self):
        prof = SpanProfiler()
        profile_one_epoch(prof)
        assert totals_from_events(prof.events()) == prof.totals()

    def test_totals_from_merged_stream_keeps_pids_apart(self):
        profs = [SpanProfiler(), SpanProfiler()]
        for p in profs:
            profile_one_epoch(p)
        merged = merge_span_events([p.events() for p in profs], labels=["a", "b"])
        totals = totals_from_events(merged)
        assert totals["epoch"]["count"] == 2

    def test_totals_rejects_unpaired_streams(self):
        with pytest.raises(ValueError, match="unpaired"):
            totals_from_events([{"ph": "E", "name": "x", "ts": 1,
                                 "pid": 0, "tid": 0}])
        with pytest.raises(ValueError, match="unpaired"):
            totals_from_events([{"ph": "B", "name": "x", "ts": 1,
                                 "pid": 0, "tid": 0}])
